"""Setup shim: enables legacy editable installs in offline environments
where the ``wheel`` package (required by PEP-517 editable builds) is not
available.  All metadata lives in ``pyproject.toml``."""

from setuptools import setup

setup()
