"""Deriving default navigations by inference over inclusion constraints.

Paper, Section 5: "We may think that the human designer examines the ADM
scheme and defines all default navigations ... As an alternative, by
inference over inclusion constraints, the system might be able to select
default navigations among all possible navigations in the scheme."

This module implements that alternative.  A navigation materializes the
*full extent* of a page-scheme only if every link step it follows is
*covering*:

* an entry point covers itself (its single page is the extent);
* a link ``L`` into page-scheme ``T`` is covering when every other link
  into ``T`` is ⊆ ``L`` under the declared inclusion constraints — then
  the set of ``L``'s values is the set of all reachable ``T`` pages, i.e.
  the extent (the model's standing assumption: pages outside every link
  are unreachable and hence not part of the instance);
* a chain covers ``T`` when it reaches ``T`` through a covering link from
  a page-scheme that is itself covered by the chain's prefix.

:func:`derive_navigations` returns all covering chains (shortest first);
:func:`derive_external_relation` packages the result as an
:class:`~repro.views.external.ExternalRelation` whose attributes live on
the target page.
"""

from __future__ import annotations


from repro.adm.constraints import AttrRef
from repro.adm.page_scheme import AttrPath
from repro.adm.scheme import WebScheme
from repro.algebra.ast import EntryPointScan, Expr
from repro.errors import SchemeError
from repro.views.external import DefaultNavigation, ExternalRelation

__all__ = [
    "covering_links",
    "derive_navigations",
    "derive_external_relation",
]


def covering_links(scheme: WebScheme, target: str) -> list[tuple]:
    """All ``(source_scheme, link_path)`` into ``target`` that dominate
    every other in-link under the inclusion constraints."""
    in_links = list(scheme.in_links(target))
    result = []
    for source, path in in_links:
        ref = AttrRef(source, path)
        if all(
            scheme.includes(AttrRef(other_source, other_path), ref)
            for other_source, other_path in in_links
            if (other_source, other_path) != (source, path)
        ):
            result.append((source, path))
    return result


def _extend_with_link(
    expr: Expr, scheme: WebScheme, source: str, link_path: AttrPath
) -> Expr:
    """Unnest down to the link's level and follow it.  The chain visits
    each page-scheme once, so attributes are qualified by the page-scheme
    name itself."""
    current = expr
    prefix: tuple = ()
    for step in link_path.steps[:-1]:
        prefix = prefix + (step,)
        current = current.unnest(f"{source}.{'.'.join(prefix)}")
    return current.follow(f"{source}.{link_path}")


def derive_navigations(
    scheme: WebScheme,
    target: str,
    max_depth: int = 6,
) -> list[Expr]:
    """All covering navigation chains for ``target``, shortest first.

    Chains never visit a page-scheme twice (the extent is reached without
    cycles on every scheme the paper considers); ``max_depth`` bounds the
    number of link steps.
    """
    scheme.page_scheme(target)  # validate

    def cover(page: str, visited: frozenset, depth: int) -> list[Expr]:
        chains: list[Expr] = []
        if scheme.is_entry_point(page):
            chains.append(EntryPointScan(page))
        if depth <= 0:
            return chains
        for source, link_path in covering_links(scheme, page):
            if source in visited or source == page:
                continue
            for prefix in cover(page=source,
                                visited=visited | {source},
                                depth=depth - 1):
                chains.append(
                    _extend_with_link(prefix, scheme, source, link_path)
                )
        return chains

    found = cover(target, frozenset({target}), max_depth)
    if not found:
        raise SchemeError(
            f"no covering navigation reaches {target!r}; declare more "
            "inclusion constraints or add an entry point"
        )
    found.sort(key=lambda e: len(str(e)))
    return found


def derive_external_relation(
    scheme: WebScheme,
    name: str,
    target: str,
    attrs: tuple,
    max_depth: int = 6,
) -> ExternalRelation:
    """Build an external relation over mono-valued attributes of ``target``
    with automatically derived default navigations."""
    ps = scheme.page_scheme(target)
    for attr in attrs:
        wtype = ps.attr_type(attr)
        if wtype.is_nested():
            raise SchemeError(
                f"{target}.{attr} is multi-valued; derived relations take "
                "mono-valued attributes only"
            )
    navigations = tuple(
        DefaultNavigation.of(
            body, {attr: f"{target}.{attr}" for attr in attrs}
        )
        for body in derive_navigations(scheme, target, max_depth)
    )
    return ExternalRelation(name=name, attrs=tuple(attrs),
                            navigations=navigations)
