"""Algorithm 1, step 1: conjunctive query → relational algebra.

Produces ``Project(Select?(join tree over ExternalRelScans))``: a left-deep
join tree driven by the query's cross-occurrence equalities (equalities
that cannot serve as join conditions — and all constant/membership
restrictions — become selection atoms above the joins; the optimizer pushes
them back down in step 5).
"""

from __future__ import annotations

from repro.algebra.ast import Expr, Join, Project, Select
from repro.algebra.predicates import AttrEq, Atom, Comparison, In, Predicate
from repro.errors import QueryError
from repro.views.conjunctive import ConjunctiveQuery
from repro.views.external import ExternalView

__all__ = ["translate"]


def _check_ref(ref: str, query: ConjunctiveQuery, view: ExternalView) -> None:
    alias, sep, attr = ref.partition(".")
    if not sep:
        raise QueryError(f"attribute reference {ref!r} must be alias.attr")
    alias_map = query.alias_map()
    if alias not in alias_map:
        raise QueryError(f"unknown alias {alias!r} in reference {ref!r}")
    relation = view.relation(alias_map[alias])
    if attr not in relation.attrs:
        raise QueryError(
            f"relation {relation.name!r} has no attribute {attr!r} "
            f"(reference {ref!r})"
        )


def translate(query: ConjunctiveQuery, view: ExternalView) -> Expr:
    """Build the algebra expression over external-relation scans."""
    for ref in query.refs():
        _check_ref(ref, query, view)

    scans = {
        occ.alias: view.relation(occ.relation).scan(occ.alias)
        for occ in query.occurrences
    }

    def alias_of(ref: str) -> str:
        return ref.partition(".")[0]

    # Build a left-deep join tree, consuming equalities greedily.
    remaining_eq = list(query.equalities)
    order = [occ.alias for occ in query.occurrences]
    joined_aliases = {order[0]}
    expr: Expr = scans[order[0]]
    pending = [a for a in order[1:]]
    def connected(alias: str) -> bool:
        for a, b in remaining_eq:
            aa, ab = alias_of(a), alias_of(b)
            if (aa == alias and ab in joined_aliases) or (
                ab == alias and aa in joined_aliases
            ):
                return True
        return False

    while pending:
        # prefer an alias connected to the joined part by some equality
        chosen = next((al for al in pending if connected(al)), pending[0])
        pending.remove(chosen)
        pairs = []
        rest = []
        for a, b in remaining_eq:
            aa, ab = alias_of(a), alias_of(b)
            if aa in joined_aliases and ab == chosen:
                pairs.append((a, b))
            elif ab in joined_aliases and aa == chosen:
                pairs.append((b, a))
            else:
                rest.append((a, b))
        remaining_eq = rest
        expr = Join(expr, scans[chosen], tuple(pairs))
        joined_aliases.add(chosen)

    atoms: list[Atom] = []
    for a, b in remaining_eq:
        atoms.append(AttrEq(a, b))
    for ref, value in query.constants:
        atoms.append(Comparison(ref, value))
    for ref, values in query.memberships:
        atoms.append(In(ref, tuple(values)))
    if atoms:
        expr = Select(expr, Predicate(atoms))
    return Project(expr, tuple(query.head))
