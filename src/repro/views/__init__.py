"""Relational views over web schemes (paper, Section 5).

* :mod:`repro.views.external` — external relations with their default
  navigations (computable NALG expressions materializing the extent);
* :mod:`repro.views.conjunctive` — conjunctive queries over the external
  view;
* :mod:`repro.views.sql` — a small SELECT/FROM/WHERE front-end for
  conjunctive queries;
* :mod:`repro.views.translate` — Algorithm 1 step 1: conjunctive query →
  relational algebra over external-relation scans.
"""

from repro.views.external import DefaultNavigation, ExternalRelation, ExternalView
from repro.views.derive import (
    covering_links,
    derive_external_relation,
    derive_navigations,
)
from repro.views.conjunctive import ConjunctiveQuery, RelOccurrence
from repro.views.translate import translate
from repro.views.sql import parse_query

__all__ = [
    "DefaultNavigation",
    "ExternalRelation",
    "ExternalView",
    "ConjunctiveQuery",
    "RelOccurrence",
    "translate",
    "parse_query",
    "covering_links",
    "derive_navigations",
    "derive_external_relation",
]
