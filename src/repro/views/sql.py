"""A small SELECT/FROM/WHERE front-end for conjunctive queries.

Grammar (case-insensitive keywords)::

    query   := SELECT cols FROM rels [WHERE conds]
    cols    := col ("," col)*
    col     := ref [AS name]
    rels    := rel ("," rel)*
    rel     := name [name]                      -- optional alias
    conds   := cond (AND cond)*
    cond    := ref "=" (ref | string)
             | ref IN "(" string ("," string)* ")"
    ref     := name "." name | name             -- bare names are resolved
                                                   when unambiguous
    string  := "'" chars "'"

This is deliberately the conjunctive fragment the paper scopes to
(Section 5); there is no OR, no comparison other than equality/IN, no
aggregation.
"""

from __future__ import annotations

import re
from typing import Optional

from repro.errors import ParseError
from repro.views.conjunctive import ConjunctiveQuery, RelOccurrence
from repro.views.external import ExternalView

__all__ = ["parse_query"]

_TOKEN = re.compile(
    r"\s*(?:(?P<string>'(?:[^']|'')*')"
    r"|(?P<name>[A-Za-z_][A-Za-z_0-9]*)"
    r"|(?P<punct>[.,()=*]))"
)

_KEYWORDS = {"select", "from", "where", "and", "as", "in"}


class _Tokens:
    def __init__(self, text: str):
        self.items: list[tuple[str, str]] = []
        pos = 0
        while pos < len(text):
            match = _TOKEN.match(text, pos)
            if match is None:
                if text[pos:].strip():
                    raise ParseError(
                        f"cannot tokenize query at: {text[pos:pos + 20]!r}"
                    )
                break
            pos = match.end()
            if match.lastgroup == "string":
                raw = match.group("string")[1:-1].replace("''", "'")
                self.items.append(("string", raw))
            elif match.lastgroup == "name":
                name = match.group("name")
                if name.lower() in _KEYWORDS:
                    self.items.append(("kw", name.lower()))
                else:
                    self.items.append(("name", name))
            else:
                self.items.append(("punct", match.group("punct")))
        self.pos = 0

    def peek(self) -> Optional[tuple[str, str]]:
        if self.pos < len(self.items):
            return self.items[self.pos]
        return None

    def next(self) -> tuple[str, str]:
        item = self.peek()
        if item is None:
            raise ParseError("unexpected end of query")
        self.pos += 1
        return item

    def expect(self, kind: str, value: Optional[str] = None) -> str:
        got_kind, got_value = self.next()
        if got_kind != kind or (value is not None and got_value != value):
            raise ParseError(
                f"expected {value or kind}, got {got_value!r}"
            )
        return got_value

    def accept(self, kind: str, value: Optional[str] = None) -> Optional[str]:
        item = self.peek()
        if item is None:
            return None
        got_kind, got_value = item
        if got_kind == kind and (value is None or got_value == value):
            self.pos += 1
            return got_value
        return None


def _parse_ref(tokens: _Tokens) -> tuple[Optional[str], str]:
    """Returns (alias_or_None, attr)."""
    first = tokens.expect("name")
    if tokens.accept("punct", "."):
        second = tokens.expect("name")
        return first, second
    return None, first


def parse_query(text: str, view: ExternalView) -> ConjunctiveQuery:
    """Parse ``text`` into a :class:`ConjunctiveQuery` against ``view``.

    Bare column names are resolved against the FROM relations; ambiguous or
    unknown names raise :class:`~repro.errors.ParseError`.
    """
    tokens = _Tokens(text)
    tokens.expect("kw", "select")

    star = False
    raw_cols: list[tuple[Optional[str], str, Optional[str]]] = []
    if tokens.accept("punct", "*"):
        star = True  # SELECT *: expanded once FROM is known
    else:
        while True:
            alias, attr = _parse_ref(tokens)
            out: Optional[str] = None
            if tokens.accept("kw", "as"):
                out = tokens.expect("name")
            raw_cols.append((alias, attr, out))
            if not tokens.accept("punct", ","):
                break

    tokens.expect("kw", "from")
    occurrences: list[RelOccurrence] = []
    while True:
        rel = tokens.expect("name")
        if rel not in view:
            raise ParseError(f"unknown relation {rel!r} in FROM")
        alias = tokens.accept("name") or rel
        occurrences.append(RelOccurrence(alias, rel))
        if not tokens.accept("punct", ","):
            break

    if star:
        raw_cols = [
            (occ.alias, attr, None)
            for occ in occurrences
            for attr in view.relation(occ.relation).attrs
        ]

    equalities: list[tuple[str, str]] = []
    constants: list[tuple[str, str]] = []
    memberships: list[tuple[str, tuple]] = []

    def resolve(alias: Optional[str], attr: str) -> str:
        if alias is not None:
            if alias not in {o.alias for o in occurrences}:
                raise ParseError(f"unknown alias {alias!r}")
            return f"{alias}.{attr}"
        owners = [
            o.alias
            for o in occurrences
            if attr in view.relation(o.relation).attrs
        ]
        if not owners:
            raise ParseError(f"no FROM relation has attribute {attr!r}")
        if len(owners) > 1:
            raise ParseError(
                f"ambiguous attribute {attr!r} (in {owners}); qualify it"
            )
        return f"{owners[0]}.{attr}"

    if tokens.accept("kw", "where"):
        while True:
            alias, attr = _parse_ref(tokens)
            left = resolve(alias, attr)
            if tokens.accept("kw", "in"):
                tokens.expect("punct", "(")
                values = [tokens.expect("string")]
                while tokens.accept("punct", ","):
                    values.append(tokens.expect("string"))
                tokens.expect("punct", ")")
                memberships.append((left, tuple(values)))
            else:
                tokens.expect("punct", "=")
                kind, value = tokens.next()
                if kind == "string":
                    constants.append((left, value))
                elif kind == "name":
                    if tokens.accept("punct", "."):
                        attr2 = tokens.expect("name")
                        right = resolve(value, attr2)
                    else:
                        right = resolve(None, value)
                    equalities.append((left, right))
                else:
                    raise ParseError(f"bad right-hand side {value!r}")
            if not tokens.accept("kw", "and"):
                break

    if tokens.peek() is not None:
        raise ParseError(f"trailing tokens at {tokens.peek()!r}")

    head = []
    used_names: set[str] = set()
    for alias, attr, out in raw_cols:
        ref = resolve(alias, attr)
        name = out or attr
        if name in used_names:
            name = ref  # disambiguate duplicate output names
        used_names.add(name)
        head.append((name, ref))

    return ConjunctiveQuery(
        head=tuple(head),
        occurrences=tuple(occurrences),
        equalities=tuple(equalities),
        constants=tuple(constants),
        memberships=tuple(memberships),
    )
