"""Conjunctive queries over the external view (paper, Section 5).

A conjunctive query names relation occurrences (with aliases), equates
attributes across occurrences, restricts attributes to constants (or to
small value sets, for the Introduction's "last three editions" query), and
projects a head.  Attribute references are written ``alias.attr``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.errors import QueryError

__all__ = ["RelOccurrence", "ConjunctiveQuery"]


@dataclass(frozen=True)
class RelOccurrence:
    """One use of an external relation, under an alias."""

    alias: str
    relation: str

    def __str__(self) -> str:
        if self.alias == self.relation:
            return self.relation
        return f"{self.relation} {self.alias}"


@dataclass(frozen=True)
class ConjunctiveQuery:
    """``π_head σ_conditions (occ1 × occ2 × ...)``.

    * ``head`` — ``(output_name, "alias.attr")`` pairs;
    * ``occurrences`` — the relation occurrences;
    * ``equalities`` — ``("alias.attr", "alias.attr")`` join conditions;
    * ``constants`` — ``("alias.attr", value)`` selections;
    * ``memberships`` — ``("alias.attr", (v1, ..., vk))`` IN-selections.
    """

    head: Tuple[Tuple[str, str], ...]
    occurrences: Tuple[RelOccurrence, ...]
    equalities: Tuple[Tuple[str, str], ...] = ()
    constants: Tuple[Tuple[str, str], ...] = ()
    memberships: Tuple[Tuple[str, Tuple[str, ...]], ...] = ()

    def __post_init__(self) -> None:
        if not self.head:
            raise QueryError("a query must project at least one column")
        if not self.occurrences:
            raise QueryError("a query must mention at least one relation")
        aliases = [o.alias for o in self.occurrences]
        if len(set(aliases)) != len(aliases):
            raise QueryError(f"duplicate aliases: {aliases}")

    def alias_map(self) -> dict:
        return {o.alias: o.relation for o in self.occurrences}

    def refs(self) -> list[str]:
        """Every ``alias.attr`` reference in the query."""
        result = [ref for _, ref in self.head]
        for a, b in self.equalities:
            result.extend((a, b))
        result.extend(ref for ref, _ in self.constants)
        result.extend(ref for ref, _ in self.memberships)
        return result

    def __str__(self) -> str:
        cols = ", ".join(
            ref if out == ref.split(".")[-1] else f"{ref} AS {out}"
            for out, ref in self.head
        )
        froms = ", ".join(str(o) for o in self.occurrences)
        conds = [f"{a} = {b}" for a, b in self.equalities]
        conds += [f"{ref} = '{v}'" for ref, v in self.constants]
        conds += [
            f"{ref} IN ({', '.join(repr(v) for v in vs)})"
            for ref, vs in self.memberships
        ]
        where = f" WHERE {' AND '.join(conds)}" if conds else ""
        return f"SELECT {cols} FROM {froms}{where}"
