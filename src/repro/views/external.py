"""External relations and their default navigations (paper, Section 5).

An external relation is what the user sees; its extent is not stored
anywhere — it is *built by navigating the site*.  Each relation therefore
carries one or more :class:`DefaultNavigation`\\ s: a computable NALG
*body* (a navigation chain without the final projection) plus a *mapping*
from external attribute names to the qualified attributes of the body that
realize them.

Keeping the body unprojected is what lets the optimizer work on pure
qualified-name expressions (Algorithm 1 pushes the final projection last);
``navigation_expr`` reconstructs the projected form when an extent is to be
materialized directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Tuple

from repro.adm.scheme import WebScheme
from repro.algebra.ast import (
    EntryPointScan,
    Expr,
    ExternalRelScan,
    FollowLink,
    Project,
    Select,
    Unnest,
)
from repro.algebra.computable import check_computable
from repro.errors import QueryError, SchemeError

__all__ = [
    "DefaultNavigation",
    "ExternalRelation",
    "ExternalView",
    "realias_navigation",
]


@dataclass(frozen=True)
class DefaultNavigation:
    """A computable body plus the external-attr → qualified-attr mapping."""

    body: Expr
    mapping: Tuple[Tuple[str, str], ...]  # (external attr, qualified attr)

    @classmethod
    def of(cls, body: Expr, mapping: dict) -> "DefaultNavigation":
        return cls(body=body, mapping=tuple(sorted(mapping.items())))

    def mapping_dict(self) -> dict:
        return dict(self.mapping)

    def validate(self, scheme: WebScheme, attrs: Tuple[str, ...]) -> None:
        check_computable(self.body, scheme)
        schema = self.body.output_schema(scheme)
        mapped = self.mapping_dict()
        for attr in attrs:
            if attr not in mapped:
                raise SchemeError(
                    f"default navigation does not map external attribute "
                    f"{attr!r}"
                )
            if mapped[attr] not in schema:
                raise SchemeError(
                    f"default navigation maps {attr!r} to {mapped[attr]!r}, "
                    f"which its body does not produce"
                )


@dataclass(frozen=True)
class ExternalRelation:
    """An external relation: name, attributes, default navigations."""

    name: str
    attrs: Tuple[str, ...]
    navigations: Tuple[DefaultNavigation, ...]

    def __post_init__(self) -> None:
        if not self.attrs:
            raise SchemeError(f"external relation {self.name!r} needs attributes")
        if not self.navigations:
            raise SchemeError(
                f"external relation {self.name!r} needs at least one "
                "default navigation"
            )

    def validate(self, scheme: WebScheme) -> None:
        for nav in self.navigations:
            nav.validate(scheme, self.attrs)

    def scan(self, alias: str | None = None) -> ExternalRelScan:
        return ExternalRelScan(self.name, self.attrs, alias)

    def navigation_expr(self, index: int = 0, alias: str | None = None) -> Expr:
        """The projected form of the ``index``-th default navigation (the
        expression whose execution materializes the extent)."""
        nav = self.navigations[index]
        qualifier = alias or self.name
        mapped = nav.mapping_dict()
        outputs = tuple(
            (f"{qualifier}.{attr}", mapped[attr]) for attr in self.attrs
        )
        return Project(nav.body, outputs)


def _rewrite_qualifier(attr: str, alias_map: dict) -> str:
    """Rewrite the leading alias segment of a qualified attribute."""
    head, sep, rest = attr.partition(".")
    if head in alias_map:
        return f"{alias_map[head]}{sep}{rest}"
    return attr


def realias_navigation(
    nav: DefaultNavigation, scheme: WebScheme, suffix: str
) -> DefaultNavigation:
    """A copy of ``nav`` whose page aliases carry ``@suffix``.

    When a query mentions the same external relation twice (a self-join),
    each occurrence's navigation must use distinct aliases — otherwise the
    two navigations would be indistinguishable and rule 4 would wrongly
    collapse them.  The suffix is appended to every entry-point alias and
    every follow-link target alias, and all structural attribute names are
    rewritten accordingly.
    """
    alias_map: dict[str, str] = {}

    def go(expr: Expr) -> Expr:
        if isinstance(expr, EntryPointScan):
            new_alias = f"{expr.name}@{suffix}"
            alias_map[expr.name] = new_alias
            return EntryPointScan(expr.page_scheme, new_alias)
        if isinstance(expr, Unnest):
            child = go(expr.child)
            return Unnest(child, _rewrite_qualifier(expr.attr, alias_map))
        if isinstance(expr, FollowLink):
            old_target = expr.target_alias(scheme)
            child = go(expr.child)
            new_target = f"{old_target}@{suffix}"
            alias_map[old_target] = new_target
            return FollowLink(
                child, _rewrite_qualifier(expr.link_attr, alias_map), new_target
            )
        if isinstance(expr, Select):
            child = go(expr.child)
            mapping = {
                a: _rewrite_qualifier(a, alias_map)
                for a in expr.predicate.attrs()
            }
            return Select(child, expr.predicate.rename(mapping))
        raise SchemeError(
            f"cannot realias navigation containing {type(expr).__name__}"
        )

    body = go(nav.body)
    mapping = {
        attr: _rewrite_qualifier(qualified, alias_map)
        for attr, qualified in nav.mapping
    }
    return DefaultNavigation.of(body, mapping)


class ExternalView:
    """The catalog of external relations offered to users."""

    def __init__(self, scheme: WebScheme, relations: Iterable[ExternalRelation] = ()):
        self.scheme = scheme
        self._relations: dict[str, ExternalRelation] = {}
        for rel in relations:
            self.add(rel)

    def add(self, relation: ExternalRelation) -> None:
        if relation.name in self._relations:
            raise SchemeError(f"duplicate external relation {relation.name!r}")
        relation.validate(self.scheme)
        self._relations[relation.name] = relation

    def relation(self, name: str) -> ExternalRelation:
        try:
            return self._relations[name]
        except KeyError:
            raise QueryError(f"unknown external relation {name!r}") from None

    def names(self) -> list[str]:
        return sorted(self._relations)

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __len__(self) -> int:
        return len(self._relations)
