"""repro — a reproduction of *Efficient Queries over Web Views*
(Mecca, Mendelzon, Merialdo; EDBT 1998 / RT-DIA-31-1998).

The library offers relational views over (simulated) web sites, translates
conjunctive queries into navigation plans over the hypertext, optimizes the
plans with constraint-driven rewrite rules under a network-access cost
model, and maintains materialized views lazily with light connections.

Quickstart::

    from repro import university

    env = university()
    result = env.query(
        "SELECT PName, email FROM Professor, ProfDept "
        "WHERE Professor.PName = ProfDept.PName "
        "AND ProfDept.DName = 'Computer Science'"
    )
    print(result.relation.to_table())
    print("pages downloaded:", result.pages)

See ``DESIGN.md`` for the architecture and ``EXPERIMENTS.md`` for the
reproduced results.
"""

from repro.adm import (
    SchemeBuilder,
    WebScheme,
    PageScheme,
    EntryPoint,
    LinkConstraint,
    InclusionConstraint,
    TEXT,
    IMAGE,
    link,
    list_of,
)
from repro.algebra import (
    EntryPointScan,
    ExternalRelScan,
    Select,
    Project,
    Join,
    Unnest,
    FollowLink,
    Predicate,
    Comparison,
    AttrEq,
    In,
    render_expr,
    render_plan_tree,
    is_computable,
    parse_navigation,
)
from repro.engine import RemoteExecutor, LocalExecutor, ExecutionResult
from repro.nested import Relation, RelationSchema, Field
from repro.optimizer import CostModel, Planner, PlannerResult
from repro.sitegen import (
    UniversityConfig,
    BibliographyConfig,
    build_university_site,
    build_bibliography_site,
    SiteMutator,
)
from repro.sites import (
    SiteEnv,
    university,
    bibliography,
    movies,
    university_view,
    bibliography_view,
    movie_view,
)
from repro.stats import SiteStatistics, exact_statistics, estimate_statistics
from repro.views import (
    ExternalView,
    ExternalRelation,
    DefaultNavigation,
    ConjunctiveQuery,
    RelOccurrence,
    parse_query,
    translate,
)
from repro.errors import (
    AdmissionRejected,
    FetchError,
    OptionsError,
    RetriesExhaustedError,
    TransientFetchError,
)
from repro.materialized import (
    AdvisorReport,
    MaterializedEngine,
    MaterializedStore,
    ShardedMaterializedStore,
    WorkloadQuery,
    advise,
    batch_refresh,
)
from repro.options import DEFAULT_OPTIONS, QueryOptions, QueryRequest
from repro.server import (
    QueryServer,
    ServerConfig,
    SharedNavigator,
    WarmupReport,
    warm_cache,
)
from repro.web import (
    ShardedPageCache,
    SimulatedWebServer,
    WebClient,
    AccessLog,
    CachePolicy,
    CostSummary,
    FaultPolicy,
    FetchConfig,
    FetchRecord,
    NetworkModel,
    PageCache,
    RetryPolicy,
)
from repro.wrapper import registry_for_scheme, WrapperRegistry

__version__ = "1.0.0"

__all__ = [
    # model
    "SchemeBuilder", "WebScheme", "PageScheme", "EntryPoint",
    "LinkConstraint", "InclusionConstraint", "TEXT", "IMAGE", "link",
    "list_of",
    # algebra
    "EntryPointScan", "ExternalRelScan", "Select", "Project", "Join",
    "Unnest", "FollowLink", "Predicate", "Comparison", "AttrEq", "In",
    "render_expr", "render_plan_tree", "is_computable", "parse_navigation",
    # engine
    "RemoteExecutor", "LocalExecutor", "ExecutionResult",
    # nested relations
    "Relation", "RelationSchema", "Field",
    # optimizer
    "CostModel", "Planner", "PlannerResult",
    # sites
    "UniversityConfig", "BibliographyConfig", "build_university_site",
    "build_bibliography_site", "SiteMutator", "SiteEnv", "university",
    "bibliography", "movies", "university_view", "bibliography_view",
    "movie_view",
    # stats
    "SiteStatistics", "exact_statistics", "estimate_statistics",
    # query options / server
    "QueryOptions", "QueryRequest", "DEFAULT_OPTIONS", "OptionsError",
    "QueryServer", "ServerConfig", "SharedNavigator", "AdmissionRejected",
    "WarmupReport", "warm_cache",
    # materialized views
    "MaterializedStore", "ShardedMaterializedStore", "MaterializedEngine",
    "batch_refresh", "advise", "WorkloadQuery", "AdvisorReport",
    # views
    "ExternalView", "ExternalRelation", "DefaultNavigation",
    "ConjunctiveQuery", "RelOccurrence", "parse_query", "translate",
    # web
    "SimulatedWebServer", "WebClient", "AccessLog", "NetworkModel",
    "CostSummary", "FaultPolicy", "FetchConfig", "FetchRecord",
    "RetryPolicy", "FetchError", "TransientFetchError",
    "RetriesExhaustedError", "PageCache", "ShardedPageCache", "CachePolicy",
    # wrappers
    "registry_for_scheme", "WrapperRegistry",
    "__version__",
]
