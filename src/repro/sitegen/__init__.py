"""Synthetic site generators.

The paper evaluated against real 1998 web sites (the Trier bibliography and
others) and against a fictional university site (Figure 1).  These
generators produce deterministic, parameterizable equivalents served by the
simulated web server:

* :mod:`repro.sitegen.university` — the paper's Figure 1 university site
  (eight page-schemes, link + inclusion constraints);
* :mod:`repro.sitegen.bibliography` — a DBLP-like bibliography site for the
  Introduction's "authors in the last three VLDBs" example;
* :mod:`repro.sitegen.mutations` — the autonomous site manager: update,
  insert and delete operations used by the Section 8 experiments, plus
  the seeded :func:`perturb_server` silent-edit hook the QA oracle uses;
* :mod:`repro.sitegen.fuzz` — seeded pseudo-random schemes and
  instances (varying fanout, optional links, list nesting) for the
  :mod:`repro.qa` conformance matrix;
* :mod:`repro.sitegen.naming` — deterministic fake names;
* :mod:`repro.sitegen.html_writer` — HTML emission following the wrapper
  conventions.
"""

from repro.sitegen.university import (
    UniversityConfig,
    UniversitySite,
    build_university_site,
)
from repro.sitegen.bibliography import (
    BibliographyConfig,
    BibliographySite,
    build_bibliography_site,
)
from repro.sitegen.movies import MovieConfig, MovieSite, build_movie_site
from repro.sitegen.mutations import SiteMutator, perturb_server
from repro.sitegen.fuzz import (
    FuzzConfig,
    FuzzedSite,
    build_fuzzed_site,
    fuzzed_view,
)

__all__ = [
    "FuzzConfig",
    "FuzzedSite",
    "build_fuzzed_site",
    "fuzzed_view",
    "perturb_server",
    "UniversityConfig",
    "UniversitySite",
    "build_university_site",
    "BibliographyConfig",
    "BibliographySite",
    "build_bibliography_site",
    "MovieConfig",
    "MovieSite",
    "build_movie_site",
    "SiteMutator",
]
