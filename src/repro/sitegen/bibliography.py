"""A DBLP-like bibliography site (the Introduction's running example).

The paper opens with the Trier Database and Logic Programming Bibliography:
"find all authors who had papers in the last three VLDB conferences" can be
answered by four navigation paths of wildly different costs.  This generator
builds a deterministic equivalent:

* ``BibHomePage`` (entry) links to the full conference list, the *smaller*
  database-conference list, directly to the VLDB page, and to the author
  list — exactly the four starting moves of the Introduction;
* ``ConfPage`` lists a conference's editions *with editors* — the paper's
  example of redundancy (the editors of VLDB'96 can be read off the VLDB
  page without visiting the edition page);
* ``EditionPage`` lists papers with their author names inline (nested list
  inside a list — depth-2 nesting), so an edition's authors can be
  extracted without visiting every paper page;
* ``AuthorPage`` lists an author's publications — the path-4 disaster:
  answering the VLDB query this way downloads every author page.

The first ``core_authors`` authors appear in paper 0 of *every* VLDB
edition, so the Introduction's intersection query has a non-empty,
predictable answer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.adm import SchemeBuilder, TEXT, link, list_of
from repro.adm.scheme import WebScheme
from repro.clock import SimClock
from repro.errors import SchemeError
from repro.sitegen import naming
from repro.sitegen.html_writer import render_page
from repro.web.server import SimulatedWebServer

__all__ = [
    "BibliographyConfig",
    "ConfRecord",
    "EditionRecord",
    "PaperRecord",
    "AuthorRecord",
    "BibliographySite",
    "build_bibliography_scheme",
    "build_bibliography_site",
]


@dataclass(frozen=True)
class BibliographyConfig:
    """Parameters of the generated bibliography.

    Real DBLP had over 16,000 authors in 1998; the default is far smaller so
    tests stay fast, but the Introduction benchmark raises ``n_authors`` to
    recover the orders-of-magnitude gap the paper reports.
    """

    n_conferences: int = 12
    n_db_conferences: int = 4
    first_year: int = 1988
    years_per_conf: int = 10
    papers_per_edition: int = 6
    authors_per_paper: int = 2
    n_authors: int = 300
    core_authors: int = 3
    base_url: str = "http://bib.example"

    def validate(self) -> None:
        if not (1 <= self.n_db_conferences <= self.n_conferences):
            raise SchemeError("need 1 <= n_db_conferences <= n_conferences")
        if self.years_per_conf < 1 or self.papers_per_edition < 1:
            raise SchemeError("editions and papers must be positive")
        if self.authors_per_paper < 1:
            raise SchemeError("authors_per_paper must be positive")
        if self.n_authors < self.authors_per_paper:
            raise SchemeError("need at least authors_per_paper authors")
        if not (0 <= self.core_authors <= self.n_authors):
            raise SchemeError("core_authors must be within [0, n_authors]")

    @property
    def last_year(self) -> int:
        return self.first_year + self.years_per_conf - 1


@dataclass
class AuthorRecord:
    uid: int
    name: str
    url: str
    papers: list = field(default_factory=list)  # PaperRecord refs


@dataclass
class PaperRecord:
    uid: int
    title: str
    conf_name: str
    year: int
    url: str
    authors: list = field(default_factory=list)  # AuthorRecord refs


@dataclass
class EditionRecord:
    conf_name: str
    year: int
    editors: str
    url: str
    papers: list = field(default_factory=list)  # PaperRecord refs


@dataclass
class ConfRecord:
    uid: int
    name: str
    is_db: bool
    url: str
    editions: list = field(default_factory=list)  # EditionRecord refs


def build_bibliography_scheme(base_url: str = "http://bib.example") -> WebScheme:
    """The ADM web scheme of the bibliography site."""
    b = SchemeBuilder("bibliography")

    b.page("BibHomePage").attr("ToConfList", link("ConfListPage")).attr(
        "ToDBConfList", link("DBConfListPage")
    ).attr("ToVLDB", link("ConfPage")).attr(
        "ToAuthorList", link("AuthorListPage")
    ).entry_point(f"{base_url}/index.html")

    b.page("ConfListPage").attr(
        "ConfList", list_of(("ConfName", TEXT), ("ToConf", link("ConfPage")))
    )

    b.page("DBConfListPage").attr(
        "ConfList", list_of(("ConfName", TEXT), ("ToConf", link("ConfPage")))
    )

    b.page("ConfPage").attr("ConfName", TEXT).attr(
        "EditionList",
        list_of(
            ("Year", TEXT),
            ("Editors", TEXT),
            ("ToEdition", link("EditionPage")),
        ),
    )

    b.page("EditionPage").attr("ConfName", TEXT).attr("Year", TEXT).attr(
        "Editors", TEXT
    ).attr(
        "PaperList",
        list_of(
            ("Title", TEXT),
            ("ToPaper", link("PaperPage")),
            (
                "AuthorList",
                list_of(("AName", TEXT), ("ToAuthor", link("AuthorPage"))),
            ),
        ),
    )

    b.page("AuthorListPage").attr(
        "AuthorList", list_of(("AName", TEXT), ("ToAuthor", link("AuthorPage")))
    )

    b.page("AuthorPage").attr("AName", TEXT).attr(
        "PubList",
        list_of(
            ("Title", TEXT),
            ("ConfName", TEXT),
            ("Year", TEXT),
            ("ToPaper", link("PaperPage")),
        ),
    )

    b.page("PaperPage").attr("Title", TEXT).attr("ConfName", TEXT).attr(
        "Year", TEXT
    ).attr(
        "AuthorList", list_of(("AName", TEXT), ("ToAuthor", link("AuthorPage")))
    )

    # link constraints
    b.link_constraint(
        "ConfListPage.ConfList.ToConf",
        "ConfListPage.ConfList.ConfName = ConfPage.ConfName",
    )
    b.link_constraint(
        "DBConfListPage.ConfList.ToConf",
        "DBConfListPage.ConfList.ConfName = ConfPage.ConfName",
    )
    b.link_constraint(
        "ConfPage.EditionList.ToEdition",
        "ConfPage.EditionList.Year = EditionPage.Year",
    )
    b.link_constraint(
        "ConfPage.EditionList.ToEdition",
        "ConfPage.EditionList.Editors = EditionPage.Editors",
    )
    b.link_constraint(
        "ConfPage.EditionList.ToEdition",
        "ConfPage.ConfName = EditionPage.ConfName",
    )
    b.link_constraint(
        "EditionPage.PaperList.ToPaper",
        "EditionPage.PaperList.Title = PaperPage.Title",
    )
    b.link_constraint(
        "EditionPage.PaperList.AuthorList.ToAuthor",
        "EditionPage.PaperList.AuthorList.AName = AuthorPage.AName",
    )
    b.link_constraint(
        "AuthorListPage.AuthorList.ToAuthor",
        "AuthorListPage.AuthorList.AName = AuthorPage.AName",
    )
    b.link_constraint(
        "AuthorPage.PubList.ToPaper",
        "AuthorPage.PubList.Title = PaperPage.Title",
    )
    b.link_constraint(
        "PaperPage.AuthorList.ToAuthor",
        "PaperPage.AuthorList.AName = AuthorPage.AName",
    )

    # inclusion constraints
    b.inclusion(
        "DBConfListPage.ConfList.ToConf <= ConfListPage.ConfList.ToConf"
    )
    b.inclusion(
        "EditionPage.PaperList.AuthorList.ToAuthor "
        "<= AuthorListPage.AuthorList.ToAuthor"
    )
    b.inclusion(
        "PaperPage.AuthorList.ToAuthor <= AuthorListPage.AuthorList.ToAuthor"
    )
    b.inclusion(
        "AuthorPage.PubList.ToPaper <= EditionPage.PaperList.ToPaper"
    )
    # the home page's direct VLDB shortcut points into the conference list
    # (certifying the full list as the covering path to ConfPage)
    b.inclusion("BibHomePage.ToVLDB <= ConfListPage.ConfList.ToConf")

    return b.build()


class BibliographySite:
    """A generated bibliography instance published on a simulated server."""

    def __init__(self, config: BibliographyConfig, server: SimulatedWebServer):
        config.validate()
        self.config = config
        self.server = server
        self.scheme = build_bibliography_scheme(config.base_url)
        self.confs: list[ConfRecord] = []
        self.authors: list[AuthorRecord] = []
        self.papers: list[PaperRecord] = []
        self._build_model()
        self.publish_all()

    # ------------------------------------------------------------------ #
    # model construction
    # ------------------------------------------------------------------ #

    def _build_model(self) -> None:
        cfg = self.config
        base = cfg.base_url
        for a in range(cfg.n_authors):
            name = naming.person_name(a)
            self.authors.append(
                AuthorRecord(
                    uid=a, name=name,
                    url=f"{base}/author/{naming.slug(name)}.html",
                )
            )
        paper_counter = 0
        for c in range(cfg.n_conferences):
            name = naming.conference_name(c)
            conf = ConfRecord(
                uid=c,
                name=name,
                is_db=c < cfg.n_db_conferences,
                url=f"{base}/conf/{naming.slug(name)}.html",
            )
            self.confs.append(conf)
            for y in range(cfg.years_per_conf):
                year = cfg.first_year + y
                editors = naming.person_name(
                    (c * cfg.years_per_conf + y) % cfg.n_authors
                )
                edition = EditionRecord(
                    conf_name=name,
                    year=year,
                    editors=editors,
                    url=f"{base}/conf/{naming.slug(name)}/{year}.html",
                )
                conf.editions.append(edition)
                for p in range(cfg.papers_per_edition):
                    title = naming.paper_title(paper_counter)
                    paper = PaperRecord(
                        uid=paper_counter,
                        title=title,
                        conf_name=name,
                        year=year,
                        url=f"{base}/paper/p{paper_counter}.html",
                    )
                    paper_counter += 1
                    for author in self._paper_authors(conf, p, paper.uid):
                        paper.authors.append(author)
                        author.papers.append(paper)
                    edition.papers.append(paper)
                    self.papers.append(paper)

    def _paper_authors(self, conf: ConfRecord, paper_slot: int, paper_uid: int):
        """Deterministic author assignment; paper 0 of every VLDB edition is
        written by the core authors, guaranteeing a non-empty intersection
        for the Introduction's query."""
        cfg = self.config
        chosen: list[AuthorRecord] = []
        if conf.uid == 0 and paper_slot == 0 and cfg.core_authors:
            # the core-author paper may exceed authors_per_paper
            chosen.extend(self.authors[: cfg.core_authors])
        k = 0
        while len(chosen) < cfg.authors_per_paper:
            index = (paper_uid * cfg.authors_per_paper + 7 * k) % cfg.n_authors
            candidate = self.authors[index]
            if candidate not in chosen:
                chosen.append(candidate)
            k += 1
        return chosen

    # ------------------------------------------------------------------ #
    # lookups
    # ------------------------------------------------------------------ #

    @property
    def vldb(self) -> ConfRecord:
        """The conference the home page links to directly (index 0)."""
        return self.confs[0]

    def conf_by_name(self, name: str) -> ConfRecord:
        for conf in self.confs:
            if conf.name == name:
                return conf
        raise KeyError(name)

    def expected_authors_in_last_editions(self, n_editions: int = 3) -> set:
        """Oracle: authors with a paper in each of the last ``n_editions``
        editions of the VLDB-like conference."""
        editions = self.vldb.editions[-n_editions:]
        per_edition = [
            {a.name for paper in ed.papers for a in paper.authors}
            for ed in editions
        ]
        result = per_edition[0]
        for names in per_edition[1:]:
            result = result & names
        return result

    # ------------------------------------------------------------------ #
    # tuple rendering
    # ------------------------------------------------------------------ #

    def entry_url(self, page_scheme: str) -> str:
        return self.scheme.entry_point(page_scheme).url

    def conf_list_url(self) -> str:
        return f"{self.config.base_url}/confs.html"

    def db_conf_list_url(self) -> str:
        return f"{self.config.base_url}/dbconfs.html"

    def author_list_url(self) -> str:
        return f"{self.config.base_url}/authors.html"

    def home_tuple(self) -> dict:
        return {
            "ToConfList": self.conf_list_url(),
            "ToDBConfList": self.db_conf_list_url(),
            "ToVLDB": self.vldb.url,
            "ToAuthorList": self.author_list_url(),
        }

    def conf_list_tuple(self, db_only: bool = False) -> dict:
        return {
            "ConfList": [
                {"ConfName": c.name, "ToConf": c.url}
                for c in self.confs
                if c.is_db or not db_only
            ]
        }

    def conf_tuple(self, conf: ConfRecord) -> dict:
        return {
            "ConfName": conf.name,
            "EditionList": [
                {
                    "Year": str(ed.year),
                    "Editors": ed.editors,
                    "ToEdition": ed.url,
                }
                for ed in conf.editions
            ],
        }

    def edition_tuple(self, edition: EditionRecord) -> dict:
        return {
            "ConfName": edition.conf_name,
            "Year": str(edition.year),
            "Editors": edition.editors,
            "PaperList": [
                {
                    "Title": paper.title,
                    "ToPaper": paper.url,
                    "AuthorList": [
                        {"AName": a.name, "ToAuthor": a.url}
                        for a in paper.authors
                    ],
                }
                for paper in edition.papers
            ],
        }

    def author_list_tuple(self) -> dict:
        return {
            "AuthorList": [
                {"AName": a.name, "ToAuthor": a.url} for a in self.authors
            ]
        }

    def author_tuple(self, author: AuthorRecord) -> dict:
        return {
            "AName": author.name,
            "PubList": [
                {
                    "Title": p.title,
                    "ConfName": p.conf_name,
                    "Year": str(p.year),
                    "ToPaper": p.url,
                }
                for p in author.papers
            ],
        }

    def paper_tuple(self, paper: PaperRecord) -> dict:
        return {
            "Title": paper.title,
            "ConfName": paper.conf_name,
            "Year": str(paper.year),
            "AuthorList": [
                {"AName": a.name, "ToAuthor": a.url} for a in paper.authors
            ],
        }

    # ------------------------------------------------------------------ #
    # publication
    # ------------------------------------------------------------------ #

    def _publish(self, page_scheme: str, url: str, row: dict, title: str) -> None:
        html = render_page(self.scheme.page_scheme(page_scheme), row, title)
        if self.server.exists(url):
            self.server.update(url, html)
        else:
            self.server.publish(url, html, page_scheme=page_scheme)

    def publish_all(self) -> None:
        self._publish("BibHomePage", self.entry_url("BibHomePage"),
                      self.home_tuple(), "The Bibliography")
        self._publish("ConfListPage", self.conf_list_url(),
                      self.conf_list_tuple(), "All Conferences")
        self._publish("DBConfListPage", self.db_conf_list_url(),
                      self.conf_list_tuple(db_only=True),
                      "Database Conferences")
        self._publish("AuthorListPage", self.author_list_url(),
                      self.author_list_tuple(), "All Authors")
        for conf in self.confs:
            self._publish("ConfPage", conf.url, self.conf_tuple(conf), conf.name)
            for edition in conf.editions:
                self._publish(
                    "EditionPage", edition.url, self.edition_tuple(edition),
                    f"{conf.name} {edition.year}",
                )
        for author in self.authors:
            self._publish("AuthorPage", author.url,
                          self.author_tuple(author), author.name)
        for paper in self.papers:
            self._publish("PaperPage", paper.url,
                          self.paper_tuple(paper), paper.title)

    def __repr__(self) -> str:
        return (
            f"BibliographySite({len(self.confs)} conferences, "
            f"{len(self.papers)} papers, {len(self.authors)} authors)"
        )


def build_bibliography_site(
    config: Optional[BibliographyConfig] = None,
    server: Optional[SimulatedWebServer] = None,
) -> BibliographySite:
    """Generate and publish a bibliography site; returns the site handle."""
    config = config or BibliographyConfig()
    server = server or SimulatedWebServer(SimClock())
    return BibliographySite(config, server)
