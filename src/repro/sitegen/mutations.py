"""The autonomous site manager (paper, Section 1 point 2 and Section 8).

"The site manager inserts, deletes and modifies pages without notifying
remote users of the updates."  :class:`SiteMutator` plays that role for a
generated :class:`~repro.sitegen.university.UniversitySite`: every operation
updates the model records, re-renders exactly the affected pages, and lets
the server stamp fresh modification dates.  Nothing tells the query system —
the Section 8 maintenance algorithms must discover changes through light
connections.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from repro.errors import MaterializationError
from repro.sitegen import naming
from repro.sitegen.university import CourseRecord, ProfRecord, UniversitySite
from repro.web.server import SimulatedWebServer

__all__ = ["SiteMutator", "perturb_server"]


def perturb_server(
    server: SimulatedWebServer,
    seed: int = 0,
    fraction: float = 0.5,
    page_schemes: Optional[Sequence[str]] = None,
) -> list[str]:
    """Touch a seeded pseudo-random subset of pages and return their URLs.

    Works on *any* site (generated or fuzzed): each selected page gets a
    fresh ``Last-Modified`` stamp while its content stays byte-identical —
    the site manager's "silent edit".  Cross-query caches must then
    re-download the touched pages (their revalidation fails) yet every
    query answer is unchanged, which is exactly the invariant the QA
    oracle's stale-cache matrix dimension asserts.  The selection is a
    pure function of ``(seed, fraction, current URL set)``.
    """
    if not 0.0 <= fraction <= 1.0:
        raise MaterializationError("fraction must be within [0, 1]")
    urls = [
        url
        for url in server.urls()
        if page_schemes is None
        or server.resource(url).page_scheme in page_schemes
    ]
    count = round(len(urls) * fraction)
    touched = sorted(random.Random(seed).sample(urls, count)) if count else []
    for url in touched:
        server.touch(url)
    return touched


class SiteMutator:
    """Mutation API over a university site; keeps model and pages in sync."""

    def __init__(self, site: UniversitySite):
        self.site = site

    # ------------------------------------------------------------------ #
    # content updates (page content changes, link structure intact)
    # ------------------------------------------------------------------ #

    def update_course_description(self, course: CourseRecord, text: str) -> None:
        """Edit one course page's description (single-page update)."""
        course.description = text
        self.site.publish_course(course)

    def update_course_type(self, course: CourseRecord, ctype: str) -> None:
        """Flip a course between Graduate/Undergraduate (single page)."""
        course.ctype = ctype
        self.site.publish_course(course)

    def update_prof_rank(self, prof: ProfRecord, rank: str) -> None:
        """Promote/demote a professor (single-page update)."""
        prof.rank = rank
        self.site.publish_prof(prof)

    def update_dept_address(self, dept_name: str, address: str) -> None:
        dept = self._dept_by_name(dept_name)
        dept.address = address
        self.site.publish_dept(dept)

    def revise_courses(self, fraction: float, revision: str = "rev") -> int:
        """Update the description of the first ``fraction`` of course pages;
        returns the number of pages touched.  Used by the Section 8 sweep
        over update rates."""
        if not (0.0 <= fraction <= 1.0):
            raise ValueError("fraction must be within [0, 1]")
        count = round(len(self.site.courses) * fraction)
        for course in self.site.courses[:count]:
            self.update_course_description(
                course, f"{course.description} ({revision})"
            )
        return count

    # ------------------------------------------------------------------ #
    # structural updates (links added/removed)
    # ------------------------------------------------------------------ #

    def add_course(
        self,
        prof: ProfRecord,
        name: Optional[str] = None,
        session: Optional[str] = None,
        ctype: Optional[str] = None,
    ) -> CourseRecord:
        """Create a new course taught by ``prof``.  Touches the new course
        page, the professor's page, and the session page."""
        cfg = self.site.config
        index = len(self.site.courses)
        if name is None:
            # after a removal, len(courses) can repeat an index whose
            # generated name (and URL) is still live — probe upward
            taken = {course.name for course in self.site.courses}
            while naming.course_name(1000 + index) in taken:
                index += 1
            name = naming.course_name(1000 + index)
        course = self.site.new_course(
            name,
            session or cfg.sessions[index % len(cfg.sessions)],
            ctype or cfg.course_types[index % len(cfg.course_types)],
            prof,
        )
        self.site.publish_course(course)
        self.site.publish_prof(prof)
        self.site.publish_session(course.session)
        return course

    def remove_course(self, course: CourseRecord) -> None:
        """Delete a course: its page disappears; the professor and session
        pages lose their links to it."""
        if course not in self.site.courses:
            raise MaterializationError("course is not part of the site")
        self.site.courses.remove(course)
        course.prof.courses.remove(course)
        self.site.server.delete(course.url)
        self.site.publish_prof(course.prof)
        self.site.publish_session(course.session)

    def move_course(self, course: CourseRecord, new_prof: ProfRecord) -> None:
        """Reassign a course to a different instructor.  Touches the course
        page and both professors' pages."""
        old_prof = course.prof
        if old_prof is new_prof:
            return
        old_prof.courses.remove(course)
        new_prof.courses.append(course)
        course.prof = new_prof
        self.site.publish_course(course)
        self.site.publish_prof(old_prof)
        self.site.publish_prof(new_prof)

    def add_prof(
        self,
        dept_name: str,
        name: Optional[str] = None,
        rank: Optional[str] = None,
    ) -> ProfRecord:
        """Hire a professor into a department.  Touches the new professor
        page, the department page, and the professor list."""
        cfg = self.site.config
        dept = self._dept_by_name(dept_name)
        index = len(self.site.profs)
        if name is None:
            # same index-reuse hazard as add_course: a fired professor
            # frees an index whose generated name may still be live
            taken = {prof.name for prof in self.site.profs}
            while naming.person_name(1000 + index) in taken:
                index += 1
            name = naming.person_name(1000 + index)
        prof = self.site.new_prof(
            name,
            rank or cfg.ranks[index % len(cfg.ranks)],
            dept,
        )
        self.site.publish_prof(prof)
        self.site.publish_dept(dept)
        self.site.publish_prof_list()
        return prof

    def remove_prof(self, prof: ProfRecord) -> None:
        """A professor leaves: their courses are removed too, and every page
        that linked to them is re-rendered."""
        if prof not in self.site.profs:
            raise MaterializationError("professor is not part of the site")
        for course in list(prof.courses):
            self.remove_course(course)
        self.site.profs.remove(prof)
        prof.dept.profs.remove(prof)
        self.site.server.delete(prof.url)
        self.site.publish_dept(prof.dept)
        self.site.publish_prof_list()

    # ------------------------------------------------------------------ #

    def _dept_by_name(self, name: str):
        for dept in self.site.depts:
            if dept.name == name:
                return dept
        raise MaterializationError(f"no department named {name!r}")
