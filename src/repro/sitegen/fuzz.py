"""Seeded site fuzzer: randomized web schemes, instances, views, queries.

The three hand-written generators (university, bibliography, movies) pin
the paper's worked examples, but they only exercise three fixed shapes.
The QA conformance harness (:mod:`repro.qa`) needs *many* shapes —
varying fanout, optional links, list nesting — so this module grows a
whole family of sites from a single integer seed:

* :func:`build_fuzzed_site` — a deterministic pseudo-random *catalog
  chain*: ``k`` entity classes, each with an entry list page and one
  detail page per entity, linked parent→child with seeded fanout.  The
  first parent/child pair is always *total* (every child carries its
  parent, giving the pair relation two complete default navigations —
  the rule-8/9 playground); later pairs may be *optional* (orphan
  children, an optional back link — the rule-5 guard);
* :func:`fuzzed_view` — the external relations over a fuzzed site, with
  one navigation per entity class and one or two per parent/child pair;
* :class:`FuzzedSite` — the handle: model records, oracle helpers
  (expected extents computed from the model, never from the engine),
  and a seeded conjunctive-query suite.

Everything is a pure function of :class:`FuzzConfig` — regenerating with
the same seed yields byte-identical pages, which the differential oracle
relies on to reproduce any failing matrix cell from its report line.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from repro.adm import SchemeBuilder, TEXT, link, list_of
from repro.adm.scheme import WebScheme
from repro.algebra.ast import EntryPointScan
from repro.clock import SimClock
from repro.errors import SchemeError
from repro.sitegen.html_writer import render_page
from repro.views.external import DefaultNavigation, ExternalRelation, ExternalView
from repro.web.server import SimulatedWebServer

__all__ = [
    "FuzzConfig",
    "FuzzedSite",
    "build_fuzzed_site",
    "fuzzed_view",
]

#: Entity-class name pool (class i is named CLASS_NAMES[i]).
CLASS_NAMES = ("Alpha", "Beta", "Gamma", "Delta", "Epsilon")

#: Word pool for Info attributes (values need not be unique).
_WORDS = (
    "amber", "basalt", "cobalt", "dune", "ember", "fjord", "garnet",
    "harbor", "indigo", "juniper", "krill", "lagoon", "meadow", "nimbus",
)

#: Marker text for an orphan child's parent-name attribute.
NO_PARENT = "(none)"


@dataclass(frozen=True)
class FuzzConfig:
    """Bounds for the seeded generator; the seed picks within them."""

    seed: int = 0
    min_classes: int = 2
    max_classes: int = 4
    min_entities: int = 3
    max_entities: int = 7
    max_info_attrs: int = 3
    #: chance that a non-first pair allows orphan children (optional link)
    optional_pair_chance: float = 0.5
    #: chance that a parent's member list nests a Tags sub-list
    nested_list_chance: float = 0.5

    def validate(self) -> None:
        if self.min_classes < 2 or self.max_classes > len(CLASS_NAMES):
            raise SchemeError(
                f"class count must be within [2, {len(CLASS_NAMES)}]"
            )
        if self.min_classes > self.max_classes:
            raise SchemeError("min_classes exceeds max_classes")
        if self.min_entities < 1 or self.min_entities > self.max_entities:
            raise SchemeError("bad entity bounds")

    @property
    def base_url(self) -> str:
        return f"http://fuzz{self.seed}.example"


@dataclass
class EntityRecord:
    """One instance of a fuzzed entity class."""

    cls: str
    uid: int
    name: str
    url: str
    infos: tuple
    parent: Optional["EntityRecord"] = None
    children: list = field(default_factory=list)
    tags: tuple = ()


@dataclass(frozen=True)
class _ClassShape:
    """Seeded structural choices for one entity class."""

    name: str
    n_info: int
    n_entities: int
    #: pair with the *previous* class: None for class 0
    pair_optional: Optional[bool] = None
    pair_nested: bool = False


class FuzzedSite:
    """A generated pseudo-random site: scheme + records + oracle helpers."""

    def __init__(self, config: FuzzConfig, server: SimulatedWebServer):
        config.validate()
        self.config = config
        self.server = server
        rng = random.Random(config.seed)
        self.shapes = self._draw_shapes(rng)
        self.scheme = self._build_scheme()
        self.entities: dict[str, list[EntityRecord]] = {}
        self._build_model(rng)
        self._rows: dict[str, tuple[str, dict]] = {}
        self.publish_all()

    # ------------------------------------------------------------------ #
    # seeded structure
    # ------------------------------------------------------------------ #

    def _draw_shapes(self, rng: random.Random) -> list[_ClassShape]:
        cfg = self.config
        n_classes = rng.randint(cfg.min_classes, cfg.max_classes)
        shapes = []
        for i in range(n_classes):
            optional = None
            nested = False
            if i > 0:
                # the first pair is always total so its pair relation gets
                # two complete default navigations (plan variety)
                optional = (
                    i > 1 and rng.random() < cfg.optional_pair_chance
                )
                nested = rng.random() < cfg.nested_list_chance
            shapes.append(
                _ClassShape(
                    name=CLASS_NAMES[i],
                    n_info=rng.randint(1, cfg.max_info_attrs),
                    n_entities=rng.randint(cfg.min_entities, cfg.max_entities),
                    pair_optional=optional,
                    pair_nested=nested,
                )
            )
        return shapes

    def _build_scheme(self) -> WebScheme:
        cfg = self.config
        b = SchemeBuilder(f"fuzz{cfg.seed}")
        for i, shape in enumerate(self.shapes):
            c = shape.name
            b.page(f"{c}ListPage").attr(
                "Items", list_of((f"{c}Name", TEXT), (f"To{c}", link(f"{c}Page")))
            ).entry_point(f"{cfg.base_url}/{c.lower()}s.html")
            page = b.page(f"{c}Page").attr(f"{c}Name", TEXT)
            for j in range(shape.n_info):
                page.attr(f"Info{j + 1}", TEXT)
            if i > 0:
                parent = self.shapes[i - 1].name
                page.attr(f"{parent}Name", TEXT)
                page.attr(
                    f"To{parent}",
                    link(f"{parent}Page", optional=bool(shape.pair_optional)),
                )
            if i + 1 < len(self.shapes):
                child = self.shapes[i + 1]
                fields = [
                    (f"{child.name}Name", TEXT),
                    (f"To{child.name}", link(f"{child.name}Page")),
                ]
                if child.pair_nested:
                    fields.append(("Tags", list_of(("Tag", TEXT))))
                page.attr(f"{child.name}Members", list_of(*fields))
        for i, shape in enumerate(self.shapes):
            c = shape.name
            b.link_constraint(
                f"{c}ListPage.Items.To{c}",
                f"{c}ListPage.Items.{c}Name = {c}Page.{c}Name",
            )
            if i > 0:
                parent = self.shapes[i - 1].name
                b.link_constraint(
                    f"{parent}Page.{c}Members.To{c}",
                    f"{parent}Page.{c}Members.{c}Name = {c}Page.{c}Name",
                )
                b.link_constraint(
                    f"{c}Page.To{parent}",
                    f"{c}Page.{parent}Name = {parent}Page.{parent}Name",
                )
                b.inclusion(
                    f"{parent}Page.{c}Members.To{c} <= {c}ListPage.Items.To{c}"
                )
                b.inclusion(
                    f"{c}Page.To{parent} <= {parent}ListPage.Items.To{parent}"
                )
        return b.build()

    def _build_model(self, rng: random.Random) -> None:
        cfg = self.config
        for i, shape in enumerate(self.shapes):
            c = shape.name
            records = []
            for uid in range(shape.n_entities):
                name = f"{c}-{uid:02d}"
                records.append(
                    EntityRecord(
                        cls=c,
                        uid=uid,
                        name=name,
                        url=f"{cfg.base_url}/{c.lower()}/{uid:02d}.html",
                        infos=tuple(
                            rng.choice(_WORDS) for _ in range(shape.n_info)
                        ),
                        tags=(
                            tuple(
                                rng.choice(_WORDS)
                                for _ in range(rng.randint(1, 2))
                            )
                            if shape.pair_nested
                            else ()
                        ),
                    )
                )
            self.entities[c] = records
            if i > 0:
                parents = self.entities[self.shapes[i - 1].name]
                for record in records:
                    if shape.pair_optional and rng.random() < 0.3:
                        continue  # orphan child
                    parent = rng.choice(parents)
                    record.parent = parent
                    parent.children.append(record)

    # ------------------------------------------------------------------ #
    # publication
    # ------------------------------------------------------------------ #

    def entry_url(self, page_scheme: str) -> str:
        return self.scheme.entry_point(page_scheme).url

    def list_tuple(self, cls: str) -> dict:
        return {
            "Items": [
                {f"{cls}Name": e.name, f"To{cls}": e.url}
                for e in self.entities[cls]
            ]
        }

    def entity_tuple(self, record: EntityRecord) -> dict:
        i = next(
            idx for idx, s in enumerate(self.shapes) if s.name == record.cls
        )
        shape = self.shapes[i]
        row: dict = {f"{record.cls}Name": record.name}
        for j, value in enumerate(record.infos):
            row[f"Info{j + 1}"] = value
        if i > 0:
            parent = self.shapes[i - 1].name
            row[f"{parent}Name"] = (
                record.parent.name if record.parent else NO_PARENT
            )
            row[f"To{parent}"] = record.parent.url if record.parent else None
        if i + 1 < len(self.shapes):
            child = self.shapes[i + 1]
            members = []
            for m in record.children:
                member = {f"{child.name}Name": m.name, f"To{child.name}": m.url}
                if child.pair_nested:
                    member["Tags"] = [{"Tag": t} for t in m.tags]
                members.append(member)
            row[f"{child.name}Members"] = members
        return row

    def publish_all(self) -> None:
        for shape in self.shapes:
            c = shape.name
            self._publish(
                f"{c}ListPage",
                self.entry_url(f"{c}ListPage"),
                self.list_tuple(c),
                f"All {c}s",
            )
            for record in self.entities[c]:
                self._publish(
                    f"{c}Page", record.url, self.entity_tuple(record), record.name
                )

    def _publish(self, page_scheme: str, url: str, row: dict, title: str) -> None:
        self._rows[url] = (page_scheme, row)
        html = render_page(self.scheme.page_scheme(page_scheme), row, title)
        if self.server.exists(url):
            self.server.update(url, html)
        else:
            self.server.publish(url, html, page_scheme=page_scheme)

    def published_row(self, url: str) -> tuple[str, dict]:
        """(page_scheme, model tuple) behind ``url`` — wrapper-roundtrip
        oracle for the tests."""
        return self._rows[url]

    # ------------------------------------------------------------------ #
    # two-phase skew: mutate the live site AFTER statistics were taken
    # ------------------------------------------------------------------ #

    def grow(
        self, cls: str, count: int, *, parent: Optional[str] = None
    ) -> list[EntityRecord]:
        """Add ``count`` fresh entities of class ``cls`` and republish.

        The skew half of the adaptive-execution experiments
        (``docs/ADAPTIVE.md``): callers build the environment first — so
        planner statistics reflect the *original* site — then ``grow`` the
        live site underneath it.  The planner's estimates are now stale,
        and the gap between modeled and observed fan-out is exactly what
        the adaptive executor's runtime decisions correct.

        With ``parent`` (an existing entity name of the previous class),
        every new entity becomes a member of that parent — its name is
        appended to the parent's member list and its own back link points
        at the parent, so both declared inclusions keep holding.  Without
        ``parent``, the new entities only appear on the class's list page
        (and as orphans they carry ``NO_PARENT``), which requires the pair
        to be optional.  Either way the mutated site stays a valid
        instance of the scheme: only the *statistics* are wrong, never the
        constraints.
        """
        i = next(
            idx for idx, s in enumerate(self.shapes) if s.name == cls
        )
        shape = self.shapes[i]
        parent_record: Optional[EntityRecord] = None
        if parent is not None:
            if i == 0:
                raise SchemeError(f"{cls} has no parent class")
            parent_cls = self.shapes[i - 1].name
            parent_record = next(
                (e for e in self.entities[parent_cls] if e.name == parent),
                None,
            )
            if parent_record is None:
                raise SchemeError(f"no {parent_cls} named {parent!r}")
        elif i > 0 and not shape.pair_optional:
            raise SchemeError(
                f"the {self.shapes[i - 1].name}/{cls} pair is total — "
                "orphan growth needs parent= or an optional pair"
            )
        rng = random.Random(
            f"{self.config.seed}:{cls}:{len(self.entities[cls])}"
        )
        added = []
        for offset in range(count):
            uid = len(self.entities[cls]) + offset
            record = EntityRecord(
                cls=cls,
                uid=uid,
                name=f"{cls}-{uid:02d}",
                url=f"{self.config.base_url}/{cls.lower()}/{uid:02d}.html",
                infos=tuple(
                    rng.choice(_WORDS) for _ in range(shape.n_info)
                ),
                parent=parent_record,
                tags=(
                    tuple(
                        rng.choice(_WORDS)
                        for _ in range(rng.randint(1, 2))
                    )
                    if shape.pair_nested
                    else ()
                ),
            )
            if parent_record is not None:
                parent_record.children.append(record)
            added.append(record)
        self.entities[cls].extend(added)
        self.publish_all()
        return added

    # ------------------------------------------------------------------ #
    # oracle helpers: ground truth from the model, not the engine
    # ------------------------------------------------------------------ #

    def pair_names(self) -> list[tuple[str, str]]:
        """(parent class, child class) for every adjacent pair."""
        return [
            (self.shapes[i - 1].name, self.shapes[i].name)
            for i in range(1, len(self.shapes))
        ]

    def pair_is_total(self, parent: str, child: str) -> bool:
        for i in range(1, len(self.shapes)):
            if (self.shapes[i - 1].name, self.shapes[i].name) == (parent, child):
                return not self.shapes[i].pair_optional
        raise SchemeError(f"no pair {parent}/{child}")

    def expected_entity(self, cls: str) -> set:
        """{(name, info1)} for the entity query over ``cls``."""
        return {(e.name, e.infos[0]) for e in self.entities[cls]}

    def expected_pair(self, parent: str, child: str) -> set:
        """{(parent name, child name)} memberships (orphans excluded)."""
        self.pair_is_total(parent, child)  # validates the pair exists
        return {
            (e.parent.name, e.name)
            for e in self.entities[child]
            if e.parent is not None
        }

    # ------------------------------------------------------------------ #
    # the seeded query suite
    # ------------------------------------------------------------------ #

    def queries(self) -> dict[str, str]:
        """Named conjunctive SQL queries for the differential oracle.

        Expected answers come from :meth:`expected_for`; both sides are
        pure functions of the seed."""
        suite: dict[str, str] = {}
        first = self.shapes[0].name
        suite[f"q_{first.lower()}"] = (
            f"SELECT {first}Name, Info1 FROM {first}"
        )
        for parent, child in self.pair_names():
            rel = f"{parent}{child}"
            suite[f"q_{rel.lower()}"] = (
                f"SELECT {rel}.{parent}Name, {rel}.{child}Name FROM {rel}"
            )
        # one three-way join over the (always total) first pair
        parent, child = self.pair_names()[0]
        rel = f"{parent}{child}"
        suite["q_join3"] = (
            f"SELECT {parent}.{parent}Name, {child}.{child}Name "
            f"FROM {parent}, {rel}, {child} "
            f"WHERE {parent}.{parent}Name = {rel}.{parent}Name "
            f"AND {rel}.{child}Name = {child}.{child}Name"
        )
        return suite

    def expected_for(self, query_id: str) -> Optional[set]:
        """Model-derived answer set for a query from :meth:`queries`."""
        first = self.shapes[0].name
        if query_id == f"q_{first.lower()}":
            return self.expected_entity(first)
        for parent, child in self.pair_names():
            if query_id == f"q_{parent.lower()}{child.lower()}":
                return self.expected_pair(parent, child)
        if query_id == "q_join3":
            parent, child = self.pair_names()[0]
            return self.expected_pair(parent, child)
        return None

    def __repr__(self) -> str:
        counts = ", ".join(
            f"{len(self.entities[s.name])} {s.name}" for s in self.shapes
        )
        return f"FuzzedSite(seed={self.config.seed}, {counts})"


def fuzzed_view(site: FuzzedSite) -> ExternalView:
    """External relations over a fuzzed site.

    One relation per entity class (via its list page); one per adjacent
    parent/child pair — with *two* default navigations when the pair is
    total (parent-side member list and child-side back reference, the
    ProfDept pattern), and the complete parent-side navigation only when
    orphans are allowed (the MovieDirector pattern)."""
    view = ExternalView(site.scheme)
    for shape in site.shapes:
        c = shape.name
        nav = (
            EntryPointScan(f"{c}ListPage")
            .unnest(f"{c}ListPage.Items")
            .follow(f"{c}ListPage.Items.To{c}")
        )
        mapping = {f"{c}Name": f"{c}Page.{c}Name"}
        for j in range(shape.n_info):
            mapping[f"Info{j + 1}"] = f"{c}Page.Info{j + 1}"
        view.add(
            ExternalRelation(
                name=c,
                attrs=tuple(mapping),
                navigations=(DefaultNavigation.of(nav, mapping),),
            )
        )
    for i in range(1, len(site.shapes)):
        parent = site.shapes[i - 1].name
        child_shape = site.shapes[i]
        child = child_shape.name
        parent_side = (
            EntryPointScan(f"{parent}ListPage")
            .unnest(f"{parent}ListPage.Items")
            .follow(f"{parent}ListPage.Items.To{parent}")
            .unnest(f"{parent}Page.{child}Members")
        )
        navigations = [
            DefaultNavigation.of(
                parent_side,
                {
                    f"{parent}Name": f"{parent}Page.{parent}Name",
                    f"{child}Name": f"{parent}Page.{child}Members.{child}Name",
                },
            )
        ]
        if not child_shape.pair_optional:
            child_side = (
                EntryPointScan(f"{child}ListPage")
                .unnest(f"{child}ListPage.Items")
                .follow(f"{child}ListPage.Items.To{child}")
            )
            navigations.append(
                DefaultNavigation.of(
                    child_side,
                    {
                        f"{parent}Name": f"{child}Page.{parent}Name",
                        f"{child}Name": f"{child}Page.{child}Name",
                    },
                )
            )
        view.add(
            ExternalRelation(
                name=f"{parent}{child}",
                attrs=(f"{parent}Name", f"{child}Name"),
                navigations=tuple(navigations),
            )
        )
    return view


def build_fuzzed_site(
    config: Optional[FuzzConfig] = None,
    server: Optional[SimulatedWebServer] = None,
) -> FuzzedSite:
    """Generate and publish a seeded pseudo-random site."""
    config = config or FuzzConfig()
    server = server or SimulatedWebServer(SimClock())
    return FuzzedSite(config, server)
