"""Deterministic fake-name pools for the site generators.

All functions are pure given their index arguments, so regenerating a site
with the same configuration yields byte-identical pages (the tests and the
materialized-view experiments depend on this).
"""

from __future__ import annotations

__all__ = [
    "dept_name",
    "person_name",
    "course_name",
    "street_address",
    "conference_name",
    "paper_title",
    "slug",
]

_DEPT_STEMS = [
    "Computer Science", "Mathematics", "Physics", "Chemistry", "Biology",
    "Economics", "History", "Philosophy", "Linguistics", "Statistics",
    "Astronomy", "Geology", "Psychology", "Sociology", "Engineering",
]

_FIRST_NAMES = [
    "Ada", "Alan", "Grace", "Edsger", "Donald", "Barbara", "John", "Tony",
    "Leslie", "Robin", "Edgar", "Jim", "Michael", "Pat", "David", "Hector",
    "Serge", "Moshe", "Jennifer", "Ronald", "Christos", "Rakesh", "Maria",
    "Stefano", "Paolo", "Alberto", "Giansalvatore", "Laura", "Carlo", "Anna",
]

_LAST_NAMES = [
    "Lovelace", "Turing", "Hopper", "Dijkstra", "Knuth", "Liskov", "Backus",
    "Hoare", "Lamport", "Milner", "Codd", "Gray", "Stonebraker", "Selinger",
    "Maier", "Garcia-Molina", "Abiteboul", "Vardi", "Widom", "Fagin",
    "Papadimitriou", "Agrawal", "Rossi", "Ceri", "Atzeni", "Mendelzon",
    "Mecca", "Haas", "Zaniolo", "Merialdo",
]

_COURSE_TOPICS = [
    "Databases", "Algorithms", "Operating Systems", "Compilers", "Networks",
    "Artificial Intelligence", "Graphics", "Logic", "Calculus", "Algebra",
    "Topology", "Mechanics", "Optics", "Thermodynamics", "Genetics",
    "Ecology", "Microeconomics", "Game Theory", "Ethics", "Syntax",
    "Semantics", "Probability", "Inference", "Cosmology", "Mineralogy",
]

_STREETS = [
    "Via della Tecnica", "College Street", "King's Road", "Oak Avenue",
    "Harbord Street", "Spadina Crescent", "Queen's Park", "Bloor Street",
    "St. George Street", "Huron Street",
]

_CONF_TOPICS = [
    "VLDB", "SIGMOD", "PODS", "ICDE", "EDBT", "ICDT",
    "STOC", "FOCS", "SODA", "ICALP", "LICS", "CAV",
    "ISCA", "MICRO", "ASPLOS", "HPCA", "PLDI", "POPL",
    "OOPSLA", "ICSE", "FSE", "CHI", "UIST", "SIGIR",
    "SIGCOMM", "INFOCOM", "MOBICOM", "NSDI", "OSDI", "SOSP",
    "USENIX", "CRYPTO", "EUROCRYPT", "AAAI", "IJCAI", "NIPS",
]

_TITLE_ADJECTIVES = [
    "Efficient", "Scalable", "Incremental", "Declarative", "Adaptive",
    "Distributed", "Parallel", "Optimal", "Approximate", "Robust",
]

_TITLE_NOUNS = [
    "Queries", "Views", "Joins", "Indexes", "Wrappers", "Schemas",
    "Transactions", "Caches", "Optimizers", "Constraints",
]

_TITLE_DOMAINS = [
    "Web Views", "Nested Relations", "Semistructured Data", "Hypertext",
    "Object Databases", "Deductive Databases", "Data Warehouses",
    "Mediators", "Digital Libraries", "Search Engines",
]


def dept_name(index: int) -> str:
    """Department name for index ``index`` (unique for any index)."""
    stem = _DEPT_STEMS[index % len(_DEPT_STEMS)]
    series = index // len(_DEPT_STEMS)
    return stem if series == 0 else f"{stem} {series + 1}"


def person_name(index: int) -> str:
    """Person name for index ``index`` (unique for any index)."""
    first = _FIRST_NAMES[index % len(_FIRST_NAMES)]
    last = _LAST_NAMES[(index // len(_FIRST_NAMES)) % len(_LAST_NAMES)]
    series = index // (len(_FIRST_NAMES) * len(_LAST_NAMES))
    suffix = "" if series == 0 else f" {_roman(series + 1)}"
    return f"{first} {last}{suffix}"


def course_name(index: int) -> str:
    """Course name for index ``index`` (unique for any index)."""
    topic = _COURSE_TOPICS[index % len(_COURSE_TOPICS)]
    level = 100 + 10 * (index // len(_COURSE_TOPICS))
    return f"{topic} {level}"


def street_address(index: int) -> str:
    street = _STREETS[index % len(_STREETS)]
    number = 1 + 2 * index
    return f"{number} {street}"


def conference_name(index: int) -> str:
    """Conference series name (unique for any index)."""
    stem = _CONF_TOPICS[index % len(_CONF_TOPICS)]
    series = index // len(_CONF_TOPICS)
    return stem if series == 0 else f"{stem}-{series + 1}"


def paper_title(index: int) -> str:
    """Paper title (unique for any index)."""
    adjective = _TITLE_ADJECTIVES[index % len(_TITLE_ADJECTIVES)]
    noun = _TITLE_NOUNS[(index // len(_TITLE_ADJECTIVES)) % len(_TITLE_NOUNS)]
    domain = _TITLE_DOMAINS[
        (index // (len(_TITLE_ADJECTIVES) * len(_TITLE_NOUNS))) % len(_TITLE_DOMAINS)
    ]
    series = index // (
        len(_TITLE_ADJECTIVES) * len(_TITLE_NOUNS) * len(_TITLE_DOMAINS)
    )
    suffix = "" if series == 0 else f" ({series + 1})"
    return f"{adjective} {noun} over {domain}{suffix}"


def slug(text: str) -> str:
    """URL-safe slug: lowercase, alnum and dashes only."""
    out = []
    for ch in text.lower():
        if ch.isalnum():
            out.append(ch)
        elif out and out[-1] != "-":
            out.append("-")
    return "".join(out).strip("-")


def _roman(number: int) -> str:
    numerals = [
        (1000, "M"), (900, "CM"), (500, "D"), (400, "CD"), (100, "C"),
        (90, "XC"), (50, "L"), (40, "XL"), (10, "X"), (9, "IX"),
        (5, "V"), (4, "IV"), (1, "I"),
    ]
    parts = []
    for value, numeral in numerals:
        while number >= value:
            parts.append(numeral)
            number -= value
    return "".join(parts)
