"""The paper's Figure 1 university web site, generated deterministically.

Eight page-schemes — ``HomePage``, ``DeptListPage``, ``DeptPage``,
``ProfListPage``, ``ProfPage``, ``SessionListPage``, ``SessionPage``,
``CoursePage`` — connected exactly as in the paper, with the link
constraints of Section 3.2 and the inclusion constraints of Sections 3.2/5.

The generator is driven by :class:`UniversityConfig` (number of
departments/professors/courses, the value pools for ``Session``, ``Rank``
and ``Type``); all assignments are round-robin, so instance statistics are
exactly predictable — which lets tests validate the paper's cost formulas
against both estimated and measured page accesses.

Model records reference each other directly (a course knows its professor
record, and so on); :class:`repro.sitegen.mutations.SiteMutator` exploits
this to keep the model consistent while it plays "autonomous site manager"
for the Section 8 experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.adm import SchemeBuilder, TEXT, link, list_of
from repro.adm.scheme import WebScheme
from repro.clock import SimClock
from repro.errors import SchemeError
from repro.sitegen import naming
from repro.sitegen.html_writer import render_page
from repro.web.server import SimulatedWebServer

__all__ = [
    "UniversityConfig",
    "DeptRecord",
    "ProfRecord",
    "CourseRecord",
    "UniversitySite",
    "build_university_scheme",
    "build_university_site",
]


@dataclass(frozen=True)
class UniversityConfig:
    """Parameters of the generated site.

    The defaults reproduce Example 7.2's cardinalities: 50 courses, 20
    professors, 3 departments.  ``idle_profs`` professors teach no courses
    (the paper notes such professors exist, which is why the inclusion
    ``CoursePage.ToProf ⊆ ProfListPage.ProfList.ToProf`` is strict).
    """

    n_depts: int = 3
    n_profs: int = 20
    n_courses: int = 50
    sessions: tuple = ("Fall", "Winter")
    ranks: tuple = ("Full", "Associate")
    course_types: tuple = ("Graduate", "Undergraduate")
    idle_profs: int = 0
    base_url: str = "http://univ.example"
    #: Seed for instructor/type assignment.  Departments, ranks and sessions
    #: stay round-robin (uniform sizes matter for the cost formulas), but a
    #: deterministic shuffle decorrelates instructor rank from course
    #: session/type — otherwise the paper's "equality only if all fall
    #: courses are taught by full professors" edge case holds by accident.
    seed: int = 7

    def validate(self) -> None:
        if self.n_depts < 1:
            raise SchemeError("need at least one department")
        if self.n_profs < 1:
            raise SchemeError("need at least one professor")
        if not (0 <= self.idle_profs < self.n_profs):
            raise SchemeError("idle_profs must be in [0, n_profs)")
        if self.n_courses < 0:
            raise SchemeError("n_courses must be non-negative")
        for pool_name in ("sessions", "ranks", "course_types"):
            if not getattr(self, pool_name):
                raise SchemeError(f"{pool_name} pool must be non-empty")

    @property
    def teaching_profs(self) -> int:
        return self.n_profs - self.idle_profs


@dataclass
class DeptRecord:
    uid: int
    name: str
    address: str
    url: str
    profs: list = field(default_factory=list)  # ProfRecord refs


@dataclass
class ProfRecord:
    uid: int
    name: str
    rank: str
    email: str
    dept: "DeptRecord" = None
    url: str = ""
    courses: list = field(default_factory=list)  # CourseRecord refs


@dataclass
class CourseRecord:
    uid: int
    name: str
    session: str
    description: str
    ctype: str
    prof: "ProfRecord" = None
    url: str = ""


def build_university_scheme(base_url: str = "http://univ.example") -> WebScheme:
    """The ADM web scheme of Figure 1 (page-schemes + constraints)."""
    b = SchemeBuilder("university")

    b.page("HomePage").attr("ToDeptList", link("DeptListPage")).attr(
        "ToProfList", link("ProfListPage")
    ).attr("ToSesList", link("SessionListPage")).entry_point(
        f"{base_url}/home.html"
    )

    b.page("DeptListPage").attr(
        "DeptList", list_of(("DName", TEXT), ("ToDept", link("DeptPage")))
    ).entry_point(f"{base_url}/depts.html")

    b.page("DeptPage").attr("DName", TEXT).attr("Address", TEXT).attr(
        "ProfList", list_of(("PName", TEXT), ("ToProf", link("ProfPage")))
    )

    b.page("ProfListPage").attr(
        "ProfList", list_of(("PName", TEXT), ("ToProf", link("ProfPage")))
    ).entry_point(f"{base_url}/profs.html")

    b.page("ProfPage").attr("PName", TEXT).attr("Rank", TEXT).attr(
        "email", TEXT
    ).attr("DName", TEXT).attr("ToDept", link("DeptPage")).attr(
        "CourseList", list_of(("CName", TEXT), ("ToCourse", link("CoursePage")))
    )

    b.page("SessionListPage").attr(
        "SesList", list_of(("Session", TEXT), ("ToSes", link("SessionPage")))
    ).entry_point(f"{base_url}/sessions.html")

    b.page("SessionPage").attr("Session", TEXT).attr(
        "CourseList", list_of(("CName", TEXT), ("ToCourse", link("CoursePage")))
    )

    b.page("CoursePage").attr("CName", TEXT).attr("Session", TEXT).attr(
        "Description", TEXT
    ).attr("Type", TEXT).attr("PName", TEXT).attr("ToProf", link("ProfPage"))

    # link constraints (Section 3.2)
    b.link_constraint(
        "DeptListPage.DeptList.ToDept",
        "DeptListPage.DeptList.DName = DeptPage.DName",
    )
    b.link_constraint(
        "DeptPage.ProfList.ToProf", "DeptPage.ProfList.PName = ProfPage.PName"
    )
    b.link_constraint(
        "ProfListPage.ProfList.ToProf",
        "ProfListPage.ProfList.PName = ProfPage.PName",
    )
    b.link_constraint("ProfPage.ToDept", "ProfPage.DName = DeptPage.DName")
    b.link_constraint(
        "ProfPage.CourseList.ToCourse",
        "ProfPage.CourseList.CName = CoursePage.CName",
    )
    b.link_constraint(
        "SessionListPage.SesList.ToSes",
        "SessionListPage.SesList.Session = SessionPage.Session",
    )
    b.link_constraint(
        "SessionPage.CourseList.ToCourse",
        "SessionPage.CourseList.CName = CoursePage.CName",
    )
    b.link_constraint(
        "SessionPage.CourseList.ToCourse",
        "SessionPage.Session = CoursePage.Session",
    )
    b.link_constraint("CoursePage.ToProf", "CoursePage.PName = ProfPage.PName")

    # inclusion constraints (Sections 3.2 and 5)
    b.inclusion("CoursePage.ToProf <= ProfListPage.ProfList.ToProf")
    b.inclusion("DeptPage.ProfList.ToProf <= ProfListPage.ProfList.ToProf")
    b.inclusion(
        "ProfPage.CourseList.ToCourse <= SessionPage.CourseList.ToCourse"
    )
    # every professor's department is on the global department list (this
    # also certifies DeptListPage.DeptList.ToDept as covering DeptPage for
    # navigation derivation)
    b.inclusion("ProfPage.ToDept <= DeptListPage.DeptList.ToDept")

    return b.build()


class UniversitySite:
    """A generated instance of the university scheme, published on a
    simulated server.

    Holds the model records (the ground truth the HTML was rendered from),
    which the tests use as an oracle and the mutation API uses to
    re-render pages after updates.
    """

    def __init__(self, config: UniversityConfig, server: SimulatedWebServer):
        config.validate()
        self.config = config
        self.server = server
        self.scheme = build_university_scheme(config.base_url)
        self.depts: list[DeptRecord] = []
        self.profs: list[ProfRecord] = []
        self.courses: list[CourseRecord] = []
        self._next_uid = 0
        self._build_model()
        self.publish_all()

    def _uid(self) -> int:
        self._next_uid += 1
        return self._next_uid

    # ------------------------------------------------------------------ #
    # model construction
    # ------------------------------------------------------------------ #

    def new_dept(self, name: str, address: Optional[str] = None) -> DeptRecord:
        dept = DeptRecord(
            uid=self._uid(),
            name=name,
            address=address or naming.street_address(self._next_uid),
            url=f"{self.config.base_url}/dept/{naming.slug(name)}.html",
        )
        self.depts.append(dept)
        return dept

    def new_prof(self, name: str, rank: str, dept: DeptRecord) -> ProfRecord:
        prof = ProfRecord(
            uid=self._uid(),
            name=name,
            rank=rank,
            email=f"{naming.slug(name)}@univ.example",
            dept=dept,
            url=f"{self.config.base_url}/prof/{naming.slug(name)}.html",
        )
        self.profs.append(prof)
        dept.profs.append(prof)
        return prof

    def new_course(
        self, name: str, session: str, ctype: str, prof: ProfRecord,
        description: Optional[str] = None,
    ) -> CourseRecord:
        course = CourseRecord(
            uid=self._uid(),
            name=name,
            session=session,
            description=description or f"An in-depth treatment of {name.lower()}.",
            ctype=ctype,
            prof=prof,
            url=f"{self.config.base_url}/course/{naming.slug(name)}.html",
        )
        self.courses.append(course)
        prof.courses.append(course)
        return course

    def _build_model(self) -> None:
        import random

        cfg = self.config
        rng = random.Random(cfg.seed)
        for d in range(cfg.n_depts):
            self.new_dept(naming.dept_name(d), naming.street_address(d))
        for p in range(cfg.n_profs):
            self.new_prof(
                naming.person_name(p),
                cfg.ranks[p % len(cfg.ranks)],
                self.depts[p % cfg.n_depts],
            )
        # courses are spread evenly over teaching professors and types, but
        # through seeded shuffles so rank/session/type are decorrelated
        prof_slots = [c % cfg.teaching_profs for c in range(cfg.n_courses)]
        type_slots = [
            cfg.course_types[c % len(cfg.course_types)]
            for c in range(cfg.n_courses)
        ]
        rng.shuffle(prof_slots)
        rng.shuffle(type_slots)
        for c in range(cfg.n_courses):
            self.new_course(
                naming.course_name(c),
                cfg.sessions[c % len(cfg.sessions)],
                type_slots[c],
                self.profs[prof_slots[c]],
            )

    # ------------------------------------------------------------------ #
    # tuple rendering (model → nested tuple)
    # ------------------------------------------------------------------ #

    def entry_url(self, page_scheme: str) -> str:
        return self.scheme.entry_point(page_scheme).url

    def home_tuple(self) -> dict:
        return {
            "ToDeptList": self.entry_url("DeptListPage"),
            "ToProfList": self.entry_url("ProfListPage"),
            "ToSesList": self.entry_url("SessionListPage"),
        }

    def dept_list_tuple(self) -> dict:
        return {
            "DeptList": [
                {"DName": d.name, "ToDept": d.url} for d in self.depts
            ]
        }

    def dept_tuple(self, dept: DeptRecord) -> dict:
        return {
            "DName": dept.name,
            "Address": dept.address,
            "ProfList": [
                {"PName": p.name, "ToProf": p.url} for p in dept.profs
            ],
        }

    def prof_list_tuple(self) -> dict:
        return {
            "ProfList": [
                {"PName": p.name, "ToProf": p.url} for p in self.profs
            ]
        }

    def prof_tuple(self, prof: ProfRecord) -> dict:
        return {
            "PName": prof.name,
            "Rank": prof.rank,
            "email": prof.email,
            "DName": prof.dept.name,
            "ToDept": prof.dept.url,
            "CourseList": [
                {"CName": c.name, "ToCourse": c.url} for c in prof.courses
            ],
        }

    def session_names(self) -> list[str]:
        return list(self.config.sessions)

    def session_url(self, session: str) -> str:
        return f"{self.config.base_url}/session/{naming.slug(session)}.html"

    def session_list_tuple(self) -> dict:
        return {
            "SesList": [
                {"Session": s, "ToSes": self.session_url(s)}
                for s in self.session_names()
            ]
        }

    def session_tuple(self, session: str) -> dict:
        return {
            "Session": session,
            "CourseList": [
                {"CName": c.name, "ToCourse": c.url}
                for c in self.courses
                if c.session == session
            ],
        }

    def course_tuple(self, course: CourseRecord) -> dict:
        return {
            "CName": course.name,
            "Session": course.session,
            "Description": course.description,
            "Type": course.ctype,
            "PName": course.prof.name,
            "ToProf": course.prof.url,
        }

    # ------------------------------------------------------------------ #
    # publication
    # ------------------------------------------------------------------ #

    def _publish(self, page_scheme: str, url: str, row: dict, title: str) -> None:
        html = render_page(self.scheme.page_scheme(page_scheme), row, title)
        if self.server.exists(url):
            self.server.update(url, html)
        else:
            self.server.publish(url, html, page_scheme=page_scheme)

    def publish_all(self) -> None:
        """Render and publish (or re-publish) every page of the site."""
        self._publish("HomePage", self.entry_url("HomePage"),
                      self.home_tuple(), "University Home")
        self.publish_dept_list()
        self.publish_prof_list()
        self.publish_session_list()
        for dept in self.depts:
            self.publish_dept(dept)
        for prof in self.profs:
            self.publish_prof(prof)
        for session in self.session_names():
            self.publish_session(session)
        for course in self.courses:
            self.publish_course(course)

    def publish_dept_list(self) -> None:
        self._publish("DeptListPage", self.entry_url("DeptListPage"),
                      self.dept_list_tuple(), "All Departments")

    def publish_prof_list(self) -> None:
        self._publish("ProfListPage", self.entry_url("ProfListPage"),
                      self.prof_list_tuple(), "All Professors")

    def publish_session_list(self) -> None:
        self._publish("SessionListPage", self.entry_url("SessionListPage"),
                      self.session_list_tuple(), "All Sessions")

    def publish_dept(self, dept: DeptRecord) -> None:
        self._publish("DeptPage", dept.url, self.dept_tuple(dept),
                      f"Department of {dept.name}")

    def publish_prof(self, prof: ProfRecord) -> None:
        self._publish("ProfPage", prof.url, self.prof_tuple(prof), prof.name)

    def publish_session(self, session: str) -> None:
        self._publish("SessionPage", self.session_url(session),
                      self.session_tuple(session), f"{session} Session")

    def publish_course(self, course: CourseRecord) -> None:
        self._publish("CoursePage", course.url, self.course_tuple(course),
                      course.name)

    # ------------------------------------------------------------------ #
    # oracle relations (ground truth for tests and examples)
    # ------------------------------------------------------------------ #

    def expected_dept(self) -> set:
        return {(d.name, d.address) for d in self.depts}

    def expected_professor(self) -> set:
        return {(p.name, p.rank, p.email) for p in self.profs}

    def expected_course(self) -> set:
        return {
            (c.name, c.session, c.description, c.ctype) for c in self.courses
        }

    def expected_course_instructor(self) -> set:
        return {(c.name, c.prof.name) for c in self.courses}

    def expected_prof_dept(self) -> set:
        return {(p.name, p.dept.name) for p in self.profs}

    def __repr__(self) -> str:
        return (
            f"UniversitySite({len(self.depts)} depts, "
            f"{len(self.profs)} profs, {len(self.courses)} courses)"
        )


def build_university_site(
    config: Optional[UniversityConfig] = None,
    server: Optional[SimulatedWebServer] = None,
) -> UniversitySite:
    """Generate and publish a university site; returns the site handle."""
    config = config or UniversityConfig()
    server = server or SimulatedWebServer(SimClock())
    return UniversitySite(config, server)
