"""HTML emission following the wrapper conventions.

:func:`render_page` serializes one nested tuple into an HTML page that
the conventional wrappers (:mod:`repro.wrapper.conventions`) can parse back
into the identical tuple.  The pages carry ordinary presentational markup —
headings, navigation chrome, decorative paragraphs — around the structured
content, so the wrapper genuinely has to *select*, not just read.
"""

from __future__ import annotations

from html import escape

from repro.adm.page_scheme import PageScheme, URL_ATTR
from repro.adm.webtypes import ImageType, LinkType, ListType, TextType, WebType
from repro.errors import WrapperError

__all__ = ["render_page"]


def _render_atom(name: str, wtype: WebType, value, out: list[str], indent: str) -> None:
    if value is None:
        # optional attribute with a null value: emit nothing
        return
    if isinstance(wtype, TextType):
        out.append(
            f'{indent}<span class="attr" data-attr="{escape(name)}">'
            f"{escape(str(value))}</span>"
        )
    elif isinstance(wtype, ImageType):
        out.append(
            f'{indent}<img class="attr" data-attr="{escape(name)}" '
            f'src="{escape(str(value), quote=True)}" alt="{escape(name)}">'
        )
    elif isinstance(wtype, LinkType):
        out.append(
            f'{indent}<a class="attr" data-attr="{escape(name)}" '
            f'href="{escape(str(value), quote=True)}">{escape(name)}</a>'
        )
    else:
        raise WrapperError(f"cannot render atom of type {wtype!r}")


def _render_list(
    name: str, wtype: ListType, rows: list, out: list[str], indent: str
) -> None:
    out.append(f'{indent}<ul class="attr-list" data-attr="{escape(name)}">')
    for row in rows:
        out.append(f'{indent}  <li class="item">')
        for fname, ftype in wtype.fields:
            value = row.get(fname)
            if isinstance(ftype, ListType):
                _render_list(fname, ftype, value or [], out, indent + "    ")
            else:
                _render_atom(fname, ftype, value, out, indent + "    ")
        out.append(f"{indent}  </li>")
    out.append(f"{indent}</ul>")


def render_page(page_scheme: PageScheme, row: dict, title: str = "") -> str:
    """Render the nested tuple ``row`` as a page of ``page_scheme``.

    ``row`` is keyed by plain attribute names; the implicit ``URL`` key is
    ignored if present.  Returns the full HTML document.
    """
    title = title or f"{page_scheme.name}"
    body: list[str] = []
    body.append(f'<div class="page" data-scheme="{escape(page_scheme.name)}">')
    body.append(f"  <h1>{escape(title)}</h1>")
    body.append(
        "  <p class=\"chrome\">Welcome! This page is part of our site; "
        "use the links below to browse.</p>"
    )
    for attr in page_scheme.attributes:
        if attr.name == URL_ATTR:
            continue
        if attr.name not in row:
            raise WrapperError(
                f"{page_scheme.name}: tuple lacks attribute {attr.name!r}"
            )
        value = row[attr.name]
        body.append(f"  <h2 class=\"chrome\">{escape(attr.name)}</h2>")
        if isinstance(attr.wtype, ListType):
            _render_list(attr.name, attr.wtype, value or [], body, "  ")
        else:
            _render_atom(attr.name, attr.wtype, value, body, "  ")
    body.append('  <p class="chrome">Maintained by the site manager. '
                "Last reviewed recently.</p>")
    body.append("</div>")
    inner = "\n".join(body)
    return (
        "<!DOCTYPE html>\n"
        "<html>\n"
        f"<head><title>{escape(title)}</title></head>\n"
        "<body>\n"
        '<div class="banner">A fine example of mid-nineties web design</div>\n'
        f"{inner}\n"
        "</body>\n"
        "</html>\n"
    )
