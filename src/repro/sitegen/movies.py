"""A movie-database site exercising optional attributes.

The paper experimented on several real sites beyond the bibliography; this
third generator focuses on the model feature the other two don't use:
**optional link attributes** (Section 3.1: "some attributes may be
optional; in this case, they may generate null values", and rule 5's
non-optional side condition).

Scheme:

* ``MovieListPage`` (entry) — all movies;
* ``MoviePage`` — title, year, genre, cast, and an *optional* director
  anchor + link (independent productions have no director page);
* ``DirectorListPage`` (entry) — all directors;
* ``DirectorPage`` — name plus filmography.

The optional ``ToDirector`` link means: navigations through it silently
drop undirected movies, rule 5 must never remove it, and the external
relation ``MovieDirector`` is only complete through the director-side
navigation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.adm import SchemeBuilder, TEXT, link, list_of
from repro.adm.scheme import WebScheme
from repro.clock import SimClock
from repro.errors import SchemeError
from repro.sitegen import naming
from repro.sitegen.html_writer import render_page
from repro.web.server import SimulatedWebServer

__all__ = [
    "MovieConfig",
    "MovieRecord",
    "DirectorRecord",
    "MovieSite",
    "build_movie_scheme",
    "build_movie_site",
]

_GENRES = ("Drama", "Comedy", "Noir", "Documentary")

_MOVIE_STEMS = [
    "The Long Goodbye", "Night Train", "Paper Moon", "The Big Sleep",
    "Quiet Days", "The Third Man", "Brief Encounter", "High Noon",
    "The Apartment", "Strangers", "The Searchers", "Out of the Past",
    "Notorious", "Laura", "Gilda", "The Killers", "Detour", "Pickup",
    "Crossfire", "The Set-Up",
]


def _movie_title(index: int) -> str:
    stem = _MOVIE_STEMS[index % len(_MOVIE_STEMS)]
    series = index // len(_MOVIE_STEMS)
    return stem if series == 0 else f"{stem} {series + 1}"


@dataclass(frozen=True)
class MovieConfig:
    """Parameters; ``undirected_every`` makes every n-th movie lack a
    director (null optional link)."""

    n_movies: int = 24
    n_directors: int = 6
    undirected_every: int = 4
    first_year: int = 1940
    cast_size: int = 3
    base_url: str = "http://movies.example"

    def validate(self) -> None:
        if self.n_movies < 1 or self.n_directors < 1:
            raise SchemeError("need at least one movie and one director")
        if self.undirected_every < 0:
            raise SchemeError("undirected_every must be non-negative")
        if self.cast_size < 0:
            raise SchemeError("cast_size must be non-negative")


@dataclass
class DirectorRecord:
    uid: int
    name: str
    url: str
    movies: list = field(default_factory=list)


@dataclass
class MovieRecord:
    uid: int
    title: str
    year: int
    genre: str
    cast: list = field(default_factory=list)
    director: Optional[DirectorRecord] = None
    url: str = ""


def build_movie_scheme(base_url: str = "http://movies.example") -> WebScheme:
    b = SchemeBuilder("movies")
    b.page("MovieListPage").attr(
        "Movies", list_of(("Title", TEXT), ("ToMovie", link("MoviePage")))
    ).entry_point(f"{base_url}/movies.html")
    b.page("DirectorListPage").attr(
        "Directors",
        list_of(("DName", TEXT), ("ToDirector", link("DirectorPage"))),
    ).entry_point(f"{base_url}/directors.html")
    b.page("MoviePage").attr("Title", TEXT).attr("Year", TEXT).attr(
        "Genre", TEXT
    ).attr("DirectorName", TEXT).attr(
        "ToDirector", link("DirectorPage", optional=True)
    ).attr("Cast", list_of(("Actor", TEXT)))
    b.page("DirectorPage").attr("DName", TEXT).attr(
        "Filmography",
        list_of(("Title", TEXT), ("ToMovie", link("MoviePage"))),
    )

    b.link_constraint(
        "MovieListPage.Movies.ToMovie",
        "MovieListPage.Movies.Title = MoviePage.Title",
    )
    b.link_constraint(
        "DirectorListPage.Directors.ToDirector",
        "DirectorListPage.Directors.DName = DirectorPage.DName",
    )
    b.link_constraint(
        "MoviePage.ToDirector", "MoviePage.DirectorName = DirectorPage.DName"
    )
    b.link_constraint(
        "DirectorPage.Filmography.ToMovie",
        "DirectorPage.Filmography.Title = MoviePage.Title",
    )

    b.inclusion(
        "DirectorPage.Filmography.ToMovie <= MovieListPage.Movies.ToMovie"
    )
    b.inclusion(
        "MoviePage.ToDirector <= DirectorListPage.Directors.ToDirector"
    )
    return b.build()


class MovieSite:
    """A generated movie site with some director-less movies."""

    def __init__(self, config: MovieConfig, server: SimulatedWebServer):
        config.validate()
        self.config = config
        self.server = server
        self.scheme = build_movie_scheme(config.base_url)
        self.directors: list[DirectorRecord] = []
        self.movies: list[MovieRecord] = []
        self._build_model()
        self.publish_all()

    def _build_model(self) -> None:
        cfg = self.config
        for d in range(cfg.n_directors):
            name = naming.person_name(100 + d)
            self.directors.append(
                DirectorRecord(
                    uid=d,
                    name=name,
                    url=f"{cfg.base_url}/director/{naming.slug(name)}.html",
                )
            )
        directed_count = 0
        for m in range(cfg.n_movies):
            title = _movie_title(m)
            undirected = (
                cfg.undirected_every > 0
                and m % cfg.undirected_every == cfg.undirected_every - 1
            )
            director = None
            if not undirected:
                director = self.directors[directed_count % cfg.n_directors]
                directed_count += 1
            movie = MovieRecord(
                uid=m,
                title=title,
                year=cfg.first_year + m % 20,
                genre=_GENRES[m % len(_GENRES)],
                cast=[naming.person_name(300 + m * cfg.cast_size + i)
                      for i in range(cfg.cast_size)],
                director=director,
                url=f"{cfg.base_url}/movie/{naming.slug(title)}.html",
            )
            self.movies.append(movie)
            if director is not None:
                director.movies.append(movie)

    # ------------------------------------------------------------------ #

    def entry_url(self, page_scheme: str) -> str:
        return self.scheme.entry_point(page_scheme).url

    def movie_list_tuple(self) -> dict:
        return {
            "Movies": [
                {"Title": m.title, "ToMovie": m.url} for m in self.movies
            ]
        }

    def director_list_tuple(self) -> dict:
        return {
            "Directors": [
                {"DName": d.name, "ToDirector": d.url}
                for d in self.directors
            ]
        }

    def movie_tuple(self, movie: MovieRecord) -> dict:
        return {
            "Title": movie.title,
            "Year": str(movie.year),
            "Genre": movie.genre,
            "DirectorName": (
                movie.director.name if movie.director else "(independent)"
            ),
            "ToDirector": movie.director.url if movie.director else None,
            "Cast": [{"Actor": actor} for actor in movie.cast],
        }

    def director_tuple(self, director: DirectorRecord) -> dict:
        return {
            "DName": director.name,
            "Filmography": [
                {"Title": m.title, "ToMovie": m.url}
                for m in director.movies
            ],
        }

    def publish_all(self) -> None:
        self._publish(
            "MovieListPage", self.entry_url("MovieListPage"),
            self.movie_list_tuple(), "All Movies",
        )
        self._publish(
            "DirectorListPage", self.entry_url("DirectorListPage"),
            self.director_list_tuple(), "All Directors",
        )
        for movie in self.movies:
            self._publish("MoviePage", movie.url, self.movie_tuple(movie),
                          movie.title)
        for director in self.directors:
            self._publish("DirectorPage", director.url,
                          self.director_tuple(director), director.name)

    def _publish(self, page_scheme: str, url: str, row: dict, title: str) -> None:
        html = render_page(self.scheme.page_scheme(page_scheme), row, title)
        if self.server.exists(url):
            self.server.update(url, html)
        else:
            self.server.publish(url, html, page_scheme=page_scheme)

    # oracle helpers ----------------------------------------------------- #

    def undirected_movies(self) -> list[MovieRecord]:
        return [m for m in self.movies if m.director is None]

    def expected_movie(self) -> set:
        return {(m.title, str(m.year), m.genre) for m in self.movies}

    def expected_movie_director(self) -> set:
        return {
            (m.title, m.director.name)
            for m in self.movies
            if m.director is not None
        }

    def __repr__(self) -> str:
        return (
            f"MovieSite({len(self.movies)} movies, "
            f"{len(self.directors)} directors, "
            f"{len(self.undirected_movies())} independent)"
        )


def build_movie_site(
    config: Optional[MovieConfig] = None,
    server: Optional[SimulatedWebServer] = None,
) -> MovieSite:
    """Generate and publish a movie site; returns the site handle."""
    config = config or MovieConfig()
    server = server or SimulatedWebServer(SimClock())
    return MovieSite(config, server)
