"""URL-hash sharding of the materialized store (ROADMAP item 5).

A :class:`ShardedMaterializedStore` partitions the stored pages across N
:class:`~repro.materialized.store.MaterializedStore` shards by
:func:`~repro.web.cache.shard_of` (CRC32 of the URL — deterministic across
processes, unlike ``hash()``).  The facade *is* a ``MaterializedStore`` —
it subclasses it and overrides only the storage primitives (``stored`` /
``_download`` / ``_remove``), so Function 2 (``URLCheck``), Algorithm 3
evaluation, ``populate``, and the maintenance routines all run unchanged
and route each URL to its shard.

What sharding buys is *refresh parallelism*: the batched revalidation in
:func:`repro.materialized.maintenance.batch_refresh` walks the store shard
by shard, HEAD-ing each shard's pages as one k-lane
:class:`~repro.clock.Timeline` batch and re-downloading its stale pages as
another, so refreshing a large fuzzed site overlaps on the simulated lanes
the way query fetch batches already do — while the per-shard freshness
laws (warm shard: one light connection per page, zero downloads; stale
shard: re-downloads exactly its touched pages) stay independently
assertable.

Query-visible state is shared, not sharded: the per-query ``status`` flag
map, the deferred ``check_missing`` queue, and the transient tuples of a
partial store are single objects aliased into every shard, because a
re-download in shard A must be able to flag link targets living in shard
B.  With ``shards=1`` the facade is bit-for-bit the unsharded store: same
crawl order, same log counters, same answer digests (the conformance tests
pin this).
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.errors import MaterializationError
from repro.materialized.store import MaterializedStore, Status, StoredPage
from repro.adm.scheme import WebScheme
from repro.web.cache import shard_of
from repro.web.client import WebClient
from repro.wrapper.wrapper import WrapperRegistry

__all__ = ["ShardedMaterializedStore"]


class ShardedMaterializedStore(MaterializedStore):
    """A :class:`MaterializedStore` partitioned by URL hash across shards."""

    def __init__(
        self,
        scheme: WebScheme,
        client: WebClient,
        registry: WrapperRegistry,
        shards: int = 2,
        retain_schemes: Optional[Iterable[str]] = None,
    ):
        if not isinstance(shards, int) or isinstance(shards, bool) or shards < 1:
            raise MaterializationError(
                f"shards must be a positive integer, got {shards!r}"
            )
        # deliberately not calling super().__init__: the facade keeps no
        # storage of its own — `pages` is a merged live view (property
        # below) and every URL-keyed structure lives in (or is aliased
        # into) the shards
        self.scheme = scheme
        self.client = client
        self.registry = registry
        self.shards = [
            MaterializedStore(
                scheme, client, registry, retain_schemes=retain_schemes
            )
            for _ in range(shards)
        ]
        self.retain_schemes = self.shards[0].retain_schemes
        # per-query state is global: a stale page in one shard may flag
        # link targets stored in another
        self.status: dict[str, Status] = {}
        self.check_missing: set[str] = set()
        self._transient: dict[str, dict] = {}
        for shard in self.shards:
            shard.status = self.status
            shard.check_missing = self.check_missing
            shard._transient = self._transient

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #

    def shard_index(self, url: str) -> int:
        return shard_of(url, len(self.shards))

    def shard_for(self, url: str) -> MaterializedStore:
        return self.shards[self.shard_index(url)]

    # ------------------------------------------------------------------ #
    # storage primitives, routed by URL (everything else — populate,
    # url_check, tuples_of, as_relation, export_flat — is inherited and
    # works through these plus the merged `pages` view)
    # ------------------------------------------------------------------ #

    @property
    def pages(self) -> dict[str, dict[str, StoredPage]]:
        """Merged live view of every shard's pages, per page-scheme.

        Iteration order is shard-index order, insertion order within a
        shard — for ``shards=1`` exactly the unsharded store's order."""
        merged: dict[str, dict[str, StoredPage]] = {
            name: {} for name in self.scheme.page_schemes
        }
        for shard in self.shards:
            for scheme_name, by_url in shard.pages.items():
                merged[scheme_name].update(by_url)
        return merged

    def page_count(self) -> int:
        return sum(shard.page_count() for shard in self.shards)

    def stored(self, url: str) -> Optional[StoredPage]:
        return self.shard_for(url).stored(url)

    def _download(
        self,
        page_scheme: str,
        url: str,
        previous: Optional[StoredPage] = None,
    ) -> Optional[StoredPage]:
        return self.shard_for(url)._download(page_scheme, url, previous=previous)

    def _ingest(self, page_scheme, url, resource, previous=None):
        return self.shard_for(url)._ingest(
            page_scheme, url, resource, previous=previous
        )

    def _remove(self, url: str) -> None:
        self.shard_for(url)._remove(url)

    def __repr__(self) -> str:
        sizes = "/".join(str(shard.page_count()) for shard in self.shards)
        return (
            f"ShardedMaterializedStore({self.page_count()} pages over "
            f"{len(self.shards)} shards [{sizes}], "
            f"{len(self.check_missing)} pending missing-checks)"
        )
