"""Workload-driven view selection for the materialized store.

The paper materializes the *whole* ADM scheme; which page-schemes are
actually worth storing depends on the workload.  Following the
storage-budgeted view selection of Goasdoué et al. ("View Selection in
Semantic Web Databases"), the advisor picks the set of page-schemes that
maximizes

    Σ_q  frequency(q) × (downloads q saves when the set is materialized)
  − Σ_P  |P| × (light_weight + mutation_rate)        for chosen schemes P

subject to  Σ_P |P| ≤ page_budget.

Both sides are priced by the existing cache-aware
:class:`~repro.optimizer.cost.CostModel`:

* the *benefit* of materializing scheme P for plan E is the drop in C(E)
  when P's accesses become local — ``cost(E) - cost(E | hit_rate(P)=1)``
  with a :class:`~repro.optimizer.cost.CacheEstimate` of
  ``{P: 1.0}, light_weight=0``.  Because the model charges each access a
  per-scheme factor, these per-scheme savings are *additive*: summing
  them over any set S gives exactly the cost drop of materializing S,
  which is what makes the budgeted selection a 0/1 knapsack solvable
  exactly;
* the *upkeep* of keeping P fresh for one maintenance round is one light
  connection per stored page (priced at ``light_weight`` pages each, the
  Section 8 "light connections are quite fast" knob made explicit) plus
  ``mutation_rate × |P|`` full re-downloads (the sitegen mutation stream's
  touch fraction).

``benchmarks/bench_advisor.py`` replays a mutation stream against the
advisor's choice, all-views, no-views, and a random set, and asserts the
advisor's total measured cost beats both all and none.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.algebra.ast import Expr
from repro.errors import MaterializationError, StatisticsError
from repro.obs.metrics import METRICS
from repro.optimizer.cost import CacheEstimate, CostModel
from repro.options import QueryRequest

__all__ = [
    "WorkloadQuery",
    "ViewCandidate",
    "AdvisorReport",
    "advise",
    "scheme_download_profile",
    "random_view_set",
]


@dataclass(frozen=True)
class WorkloadQuery:
    """One workload entry: a request and how often it runs per round.

    ``frequency`` is the expected number of executions between two
    maintenance rounds — the unit the upkeep term is charged in."""

    request: QueryRequest
    frequency: float = 1.0

    def __post_init__(self) -> None:
        if not isinstance(self.request, QueryRequest):
            raise MaterializationError(
                f"request must be a QueryRequest, got {self.request!r}"
            )
        if self.frequency < 0:
            raise MaterializationError(
                f"frequency must be non-negative, got {self.frequency!r}"
            )


@dataclass(frozen=True)
class ViewCandidate:
    """One page-scheme's costed case for materialization."""

    scheme: str
    #: stored pages the scheme would occupy (|P| from site statistics)
    pages: int
    #: workload downloads avoided per round when materialized
    downloads_saved: float
    #: revalidation upkeep per round (lights at light_weight + mutations)
    upkeep: float

    @property
    def net_benefit(self) -> float:
        return self.downloads_saved - self.upkeep


@dataclass
class AdvisorReport:
    """The advisor's decision and the numbers behind it."""

    candidates: list = field(default_factory=list)
    chosen: tuple = ()
    page_budget: Optional[int] = None
    mutation_rate: float = 0.0
    light_weight: float = 0.0
    #: modeled per-round workload cost (downloads + weighted lights +
    #: upkeep) under three policies, for the report table
    estimates: dict = field(default_factory=dict)

    @property
    def chosen_pages(self) -> int:
        by_name = {c.scheme: c for c in self.candidates}
        return sum(by_name[name].pages for name in self.chosen)

    def materialize_set(self) -> frozenset:
        """The chosen page-schemes, ready for ``retain_schemes=``."""
        return frozenset(self.chosen)

    def __repr__(self) -> str:
        return (
            f"AdvisorReport(chosen={sorted(self.chosen)}, "
            f"{self.chosen_pages} pages"
            + (f"/{self.page_budget} budget" if self.page_budget else "")
            + f", est {self.estimates.get('chosen', 0.0):.1f} vs "
            f"none {self.estimates.get('none', 0.0):.1f})"
        )


def scheme_download_profile(
    cost_model: CostModel, plan: Expr
) -> dict[str, float]:
    """Per-page-scheme expected downloads of one execution of ``plan``.

    Computed through the cache-aware model itself: the scheme's share is
    the drop in C(E) when that scheme alone is fully cached for free.
    The shares sum to the cold C(E) (the model's per-access factors are
    linear per scheme), so this is an exact decomposition, not a
    heuristic attribution."""
    cold_model = cost_model.with_cache(None)
    cold = cold_model.cost(plan)
    profile: dict[str, float] = {}
    for scheme_name in cost_model.scheme.page_schemes:
        covered = cost_model.with_cache(
            CacheEstimate({scheme_name: 1.0}, light_weight=0.0)
        )
        share = cold - covered.cost(plan)
        if share > 1e-12:
            profile[scheme_name] = share
    return profile


def _resolve_plan(env, request: QueryRequest) -> Expr:
    if request.plan is not None:
        return request.plan
    return env.plan(request.query).best.expr


def _choose(
    candidates: Sequence[ViewCandidate], page_budget: Optional[int]
) -> tuple[str, ...]:
    """Pick the net-benefit-maximizing set under the page budget.

    Net benefits are additive across schemes, so this is a 0/1 knapsack:
    solved exactly by DP over the budget when it is tractable, greedily by
    benefit density otherwise (only reachable with budgets in the
    millions of pages).  Without a budget, every positive-net candidate
    is taken — the unconstrained optimum."""
    profitable = [c for c in candidates if c.net_benefit > 0 and c.pages >= 0]
    if page_budget is None:
        return tuple(sorted(c.scheme for c in profitable))
    if page_budget <= 0:
        return ()
    profitable = [c for c in profitable if c.pages <= page_budget]
    if not profitable:
        return ()
    if page_budget * len(profitable) <= 2_000_000:
        # exact DP: best[w] = (value, chosen) at weight exactly <= w
        best: list[tuple[float, tuple[str, ...]]] = [
            (0.0, ()) for _ in range(page_budget + 1)
        ]
        for cand in profitable:
            for w in range(page_budget, cand.pages - 1, -1):
                value, names = best[w - cand.pages]
                candidate_value = value + cand.net_benefit
                if candidate_value > best[w][0] + 1e-12:
                    best[w] = (candidate_value, names + (cand.scheme,))
        return tuple(sorted(max(best)[1]))
    chosen: list[str] = []
    remaining = page_budget
    for cand in sorted(
        profitable,
        key=lambda c: (-(c.net_benefit / max(c.pages, 1)), c.scheme),
    ):
        if cand.pages <= remaining:
            chosen.append(cand.scheme)
            remaining -= cand.pages
    return tuple(sorted(chosen))


def advise(
    env,
    workload: Sequence[WorkloadQuery],
    *,
    mutation_rate: float,
    page_budget: Optional[int] = None,
    light_weight: float = 0.25,
) -> AdvisorReport:
    """Choose which page-schemes to materialize for ``workload``.

    ``env`` is a :class:`~repro.sites.SiteEnv`; plans come from each
    request's pre-chosen ``plan`` or the environment's planner.
    ``mutation_rate`` is the fraction of pages the sitegen mutation stream
    touches per maintenance round (``perturb_server``'s ``fraction``);
    ``page_budget`` caps the stored pages (None: unlimited);
    ``light_weight`` prices one light connection in page units, shared by
    the benefit and upkeep sides (and by the benchmark's total-cost
    metric).

    Returns an :class:`AdvisorReport`; feed ``report.materialize_set()``
    to ``retain_schemes=`` of a (sharded) store, or let
    :meth:`QueryServer.warm_up <repro.server.service.QueryServer.warm_up>`
    act on it."""
    if not 0.0 <= mutation_rate <= 1.0:
        raise MaterializationError(
            f"mutation_rate must be in [0, 1], got {mutation_rate!r}"
        )
    if not workload:
        raise MaterializationError("advise() needs a non-empty workload")
    entries = []
    for item in workload:
        if not isinstance(item, WorkloadQuery):
            raise MaterializationError(
                f"workload entries must be WorkloadQuery, got {item!r}"
            )
        entries.append((item.frequency, _resolve_plan(env, item.request)))

    # workload downloads saved per scheme, additively decomposed via the
    # cache-aware cost model
    saved: dict[str, float] = {}
    for frequency, plan in entries:
        for scheme_name, share in scheme_download_profile(
            env.cost_model, plan
        ).items():
            saved[scheme_name] = saved.get(scheme_name, 0.0) + frequency * share

    candidates: list[ViewCandidate] = []
    for scheme_name in env.scheme.page_schemes:
        try:
            pages = int(env.stats.card(scheme_name))
        except StatisticsError:
            continue  # no cardinality: cannot budget it, skip
        candidates.append(
            ViewCandidate(
                scheme=scheme_name,
                pages=pages,
                downloads_saved=saved.get(scheme_name, 0.0),
                upkeep=pages * (light_weight + mutation_rate),
            )
        )
    chosen = _choose(candidates, page_budget)

    def estimate_for(selected: frozenset) -> float:
        """Modeled per-round cost of running the workload with ``selected``
        materialized: un-covered downloads at full price, covered accesses
        at light_weight (the max_age-trusting engine pays the refresh
        instead), plus the refresh upkeep of the selected schemes."""
        est = CacheEstimate(
            {name: 1.0 for name in selected}, light_weight=0.0
        )
        model = env.cost_model.with_cache(est if selected else None)
        query_cost = sum(f * model.cost(plan) for f, plan in entries)
        upkeep = sum(c.upkeep for c in candidates if c.scheme in selected)
        return query_cost + upkeep

    report = AdvisorReport(
        candidates=candidates,
        chosen=chosen,
        page_budget=page_budget,
        mutation_rate=mutation_rate,
        light_weight=light_weight,
        estimates={
            "chosen": estimate_for(frozenset(chosen)),
            "all": estimate_for(frozenset(c.scheme for c in candidates)),
            "none": estimate_for(frozenset()),
        },
    )
    METRICS.counter(
        "repro_advisor_runs_total", "advisor decisions by chosen-set size"
    ).inc(chosen=len(chosen))
    return report


def random_view_set(
    candidates: Sequence[ViewCandidate],
    page_budget: Optional[int],
    seed: int = 0,
) -> tuple[str, ...]:
    """A seeded random baseline under the same budget (benchmark control:
    what workload-blind selection costs)."""
    rng = random.Random(seed)
    names = [c.scheme for c in candidates]
    rng.shuffle(names)
    by_name = {c.scheme: c for c in candidates}
    chosen: list[str] = []
    used = 0
    for name in names:
        pages = by_name[name].pages
        if page_budget is not None and used + pages > page_budget:
            continue
        if rng.random() < 0.5:
            chosen.append(name)
            used += pages
    return tuple(sorted(chosen))
