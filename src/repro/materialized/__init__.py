"""Materialized views with lazy incremental maintenance (paper, Section 8).

The ADM representation of the site is materialized locally: the whole site
is crawled once, pages are wrapped, and tuples are stored per page-scheme
with their access dates.  Queries are then answered from the store — but
before a tuple is used, a *light connection* (HEAD) verifies its page has
not changed; stale pages are re-downloaded on the spot.  Answering queries
thereby also maintains the view, touching only the minimal set of pages the
chosen plan needs.

* :mod:`repro.materialized.store` — the store + Function 2 (``URLCheck``);
* :mod:`repro.materialized.evaluate` — Algorithm 3 (query evaluation with
  lazy maintenance) via the local executor;
* :mod:`repro.materialized.maintenance` — deferred ``CheckMissing``
  processing, full refresh, batched shard-parallel refresh, and
  consistency reporting;
* :mod:`repro.materialized.sharded` — the store partitioned by URL hash
  across N shards (same contract, per-shard refresh batches);
* :mod:`repro.materialized.advisor` — workload-driven selection of *which*
  page-schemes to materialize under a page budget.
"""

from repro.materialized.store import MaterializedStore, StoredPage, Status
from repro.materialized.sharded import ShardedMaterializedStore
from repro.materialized.evaluate import MaterializedEngine, MaterializedResult
from repro.materialized.maintenance import (
    process_check_missing,
    full_refresh,
    batch_refresh,
    consistency_report,
    RefreshReport,
    ShardRefresh,
)
from repro.materialized.advisor import (
    AdvisorReport,
    ViewCandidate,
    WorkloadQuery,
    advise,
    random_view_set,
    scheme_download_profile,
)

__all__ = [
    "MaterializedStore",
    "ShardedMaterializedStore",
    "StoredPage",
    "Status",
    "MaterializedEngine",
    "MaterializedResult",
    "process_check_missing",
    "full_refresh",
    "batch_refresh",
    "consistency_report",
    "RefreshReport",
    "ShardRefresh",
    "AdvisorReport",
    "ViewCandidate",
    "WorkloadQuery",
    "advise",
    "random_view_set",
    "scheme_download_profile",
]
