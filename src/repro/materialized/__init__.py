"""Materialized views with lazy incremental maintenance (paper, Section 8).

The ADM representation of the site is materialized locally: the whole site
is crawled once, pages are wrapped, and tuples are stored per page-scheme
with their access dates.  Queries are then answered from the store — but
before a tuple is used, a *light connection* (HEAD) verifies its page has
not changed; stale pages are re-downloaded on the spot.  Answering queries
thereby also maintains the view, touching only the minimal set of pages the
chosen plan needs.

* :mod:`repro.materialized.store` — the store + Function 2 (``URLCheck``);
* :mod:`repro.materialized.evaluate` — Algorithm 3 (query evaluation with
  lazy maintenance) via the local executor;
* :mod:`repro.materialized.maintenance` — deferred ``CheckMissing``
  processing, full refresh, and consistency reporting.
"""

from repro.materialized.store import MaterializedStore, StoredPage, Status
from repro.materialized.evaluate import MaterializedEngine, MaterializedResult
from repro.materialized.maintenance import (
    process_check_missing,
    full_refresh,
    consistency_report,
)

__all__ = [
    "MaterializedStore",
    "StoredPage",
    "Status",
    "MaterializedEngine",
    "MaterializedResult",
    "process_check_missing",
    "full_refresh",
    "consistency_report",
]
