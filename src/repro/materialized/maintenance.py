"""Off-line maintenance (paper, Section 8, final paragraphs).

URLs flagged ``missing`` during query evaluation "may correspond to deleted
pages ... we decide to defer this check, and do it periodically off-line":
:func:`process_check_missing` drains the deferred queue with light
connections, dropping tuples whose pages are really gone.

"To guarantee the overall consistency, it is still possible to periodically
check the whole view and maintain it where necessary":
:func:`full_refresh` URL-checks every stored page and re-crawls from the
entry points to pick up pages no stored link reaches yet.
:func:`consistency_report` measures how inconsistent a store has become
(dangling stored links, stale pages) without repairing anything.

:func:`batch_refresh` is the sharded, batched variant of the periodic
check: it walks the store shard by shard (one "shard" for a plain store),
revalidates each shard's pages as one k-lane ``head_batch`` and
re-downloads its stale pages as one k-lane ``get_batch``, so the refresh
of a large site overlaps on the simulated :class:`~repro.clock.Timeline`
the way query traffic does.  Its :class:`RefreshReport` carries per-shard
light-connection and download counts — the freshness laws (warm shard:
one light per page, zero downloads; stale shard: re-downloads exactly its
touched pages) are asserted per shard in ``benchmarks/bench_advisor.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.adm.links import outlink_set
from repro.materialized.store import MaterializedStore, Status
from repro.obs.metrics import METRICS
from repro.obs.trace import NULL_TRACER
from repro.web.cache import Freshness, check_freshness, freshness_from_head
from repro.web.client import FetchConfig

__all__ = ["process_check_missing", "full_refresh", "batch_refresh",
           "consistency_report", "ConsistencyReport", "RefreshReport",
           "ShardRefresh"]


def process_check_missing(store: MaterializedStore) -> dict:
    """Drain the CheckMissing queue.  Returns counts:
    ``{"checked": n, "deleted": n, "still_alive": n}``."""
    checked = deleted = alive = 0
    queue = sorted(store.check_missing)
    store.check_missing.clear()
    for url in queue:
        checked += 1
        head = store.client.head(url)
        if head.ok:
            alive += 1
            continue
        deleted += 1
        page = store.stored(url)
        if page is not None:
            store._remove(url)
    return {"checked": checked, "deleted": deleted, "still_alive": alive}


def full_refresh(store: MaterializedStore) -> dict:
    """Check every stored page and re-crawl from the entry points.

    Returns ``{"checked": n, "redownloaded": n, "added": n, "removed": n}``.
    """
    store.reset_status()
    before_downloads = store.client.log.page_downloads
    before_count = store.page_count()

    # check every stored page (light connection each; downloads when stale)
    stored_urls = [
        (page.page_scheme, url)
        for by_url in store.pages.values()
        for url, page in list(by_url.items())
    ]
    for page_scheme, url in stored_urls:
        store.url_check(page_scheme, url)

    # discover pages no stored page linked to before the refresh
    frontier = [
        (ep.scheme, ep.url) for ep in store.scheme.entry_points.values()
    ]
    visited: set[str] = set()
    while frontier:
        page_scheme, url = frontier.pop()
        if url in visited:
            continue
        visited.add(url)
        plain = store.url_check(page_scheme, url)
        if plain is None:
            continue
        for link_url, target in outlink_set(store.scheme, page_scheme, plain):
            if link_url not in visited:
                frontier.append((target, link_url))

    result = process_check_missing(store)
    return {
        "checked": len(visited),
        "redownloaded": store.client.log.page_downloads - before_downloads,
        "added": max(0, store.page_count() - before_count),
        "removed": result["deleted"],
    }


@dataclass
class ConsistencyReport:
    """How far the store has drifted from the live site."""

    stored_pages: int = 0
    stale_pages: int = 0
    dangling_links: list = field(default_factory=list)
    unstored_link_targets: list = field(default_factory=list)

    @property
    def is_consistent(self) -> bool:
        return (
            not self.stale_pages
            and not self.dangling_links
            and not self.unstored_link_targets
        )


@dataclass
class ShardRefresh:
    """Measured refresh outcome of one shard (store index order).

    ``light_connections`` / ``downloads`` / ``seconds`` are exact log
    deltas of the shard's phase, so the per-shard freshness laws can be
    asserted directly: a warm shard shows ``light_connections == pages``
    and ``downloads == 0``; after a mutation touching ``t`` of the
    shard's pages it shows ``redownloaded == downloads == t``."""

    shard: int
    pages: int
    fresh: int
    redownloaded: int
    removed: int
    light_connections: int
    downloads: int
    seconds: float


@dataclass
class RefreshReport:
    """Aggregate of one :func:`batch_refresh` run."""

    shards: list = field(default_factory=list)
    #: pages discovered through new links and added to the store
    added: int = 0
    added_downloads: int = 0
    #: deferred ``check_missing`` entries confirmed deleted at the end
    deferred_deleted: int = 0

    @property
    def checked(self) -> int:
        return sum(row.pages for row in self.shards)

    @property
    def redownloaded(self) -> int:
        return sum(row.redownloaded for row in self.shards)

    @property
    def removed(self) -> int:
        return sum(row.removed for row in self.shards) + self.deferred_deleted

    @property
    def light_connections(self) -> int:
        return sum(row.light_connections for row in self.shards)

    @property
    def downloads(self) -> int:
        return sum(row.downloads for row in self.shards) + self.added_downloads

    @property
    def seconds(self) -> float:
        return sum(row.seconds for row in self.shards)

    def __repr__(self) -> str:
        return (
            f"RefreshReport({len(self.shards)} shards, {self.checked} checked, "
            f"{self.redownloaded} re-downloaded, {self.added} added, "
            f"{self.removed} removed, {self.light_connections} light)"
        )


def _refresh_shard(
    store: MaterializedStore,
    shard: MaterializedStore,
    index: int,
    workers: int,
    tracer,
) -> ShardRefresh:
    """Revalidate one shard: one HEAD batch, one GET batch for the stale."""
    client = store.client
    before = client.log.snapshot()
    entries = [
        (page.page_scheme, url, page)
        for by_url in shard.pages.values()
        for url, page in list(by_url.items())
    ]
    with tracer.span(
        "refresh_shard", kind="maintenance", shard=index, pages=len(entries)
    ):
        heads = client.head_batch(
            [url for _, url, _ in entries], workers=workers
        )
        now = client.server.clock.now()
        fresh = 0
        stale: list = []
        missing: list = []
        for page_scheme, url, page in entries:
            outcome = freshness_from_head(heads[url], page.modified)
            if outcome is Freshness.FRESH:
                fresh += 1
                page.access_date = now
                store.status[url] = Status.CHECKED
            elif outcome is Freshness.STALE:
                stale.append((page_scheme, url, page))
            else:
                missing.append(url)
        removed = 0
        for url in missing:
            shard._remove(url)
            removed += 1
        resources = (
            client.get_batch(
                [url for _, url, _ in stale],
                config=FetchConfig(max_workers=workers),
            )
            if stale
            else {}
        )
        redownloaded = 0
        for page_scheme, url, page in stale:
            resource = resources.get(url)
            if resource is None:
                # vanished between the HEAD and the GET: treat as deleted
                shard._remove(url)
                store.check_missing.add(url)
                removed += 1
                continue
            shard._ingest(page_scheme, url, resource, previous=page)
            store.status[url] = Status.CHECKED
            redownloaded += 1
        delta = client.log.delta(before)
    pages_total = METRICS.counter(
        "repro_store_refresh_pages_total",
        "store-refresh page outcomes by shard",
    )
    pages_total.inc(fresh, shard=str(index), outcome="fresh")
    pages_total.inc(redownloaded, shard=str(index), outcome="stale")
    pages_total.inc(removed, shard=str(index), outcome="removed")
    METRICS.histogram(
        "repro_store_refresh_seconds",
        "simulated seconds per shard-refresh phase",
    ).observe(delta.simulated_seconds, shard=str(index))
    return ShardRefresh(
        shard=index,
        pages=len(entries),
        fresh=fresh,
        redownloaded=redownloaded,
        removed=removed,
        light_connections=delta.light_connections,
        downloads=delta.page_downloads,
        seconds=delta.simulated_seconds,
    )


def _fetch_new_targets(store: MaterializedStore, workers: int) -> tuple[int, int]:
    """Download link targets flagged ``new`` by the shard re-downloads.

    Waves of k-lane batches until no retained ``new`` target remains
    unstored (bounded — each wave either stores or terminally flags every
    URL it fetches)."""
    client = store.client
    before = client.log.snapshot()
    added = 0
    while True:
        wave: dict[str, str] = {}
        for scheme_name, by_url in store.pages.items():
            for url, page in by_url.items():
                for link_url, target in outlink_set(
                    store.scheme, scheme_name, page.plain
                ):
                    if (
                        store.status_of(link_url) is Status.NEW
                        and store.stored(link_url) is None
                        and store._retains(target)
                    ):
                        wave.setdefault(link_url, target)
        if not wave:
            break
        resources = client.get_batch(
            sorted(wave), config=FetchConfig(max_workers=workers)
        )
        for url in sorted(wave):
            resource = resources.get(url)
            if resource is None:
                store.status[url] = Status.MISSING
                store.check_missing.add(url)
                continue
            store._ingest(wave[url], url, resource)
            store.status[url] = Status.CHECKED
            added += 1
    delta = client.log.delta(before)
    return added, delta.page_downloads


def batch_refresh(
    store: MaterializedStore,
    workers: int = 1,
    tracer=None,
) -> RefreshReport:
    """Refresh the whole store with batched, shard-parallel revalidation.

    For each shard (a plain store is one shard) the stored pages are
    HEAD-ed as one ``workers``-lane batch and the stale ones re-downloaded
    as another, so the refresh traffic of a large site overlaps on the
    simulated :class:`~repro.clock.Timeline` exactly like a query's fetch
    batches; pages that vanished are dropped.  Link targets that appeared
    on re-downloaded pages are then fetched in follow-up batches, and the
    deferred ``check_missing`` queue is drained last (as in
    :func:`full_refresh`).  With ``workers=1`` the page/light counts *and*
    the simulated time are bit-for-bit the serial loop's.

    Returns a :class:`RefreshReport` with exact per-shard log deltas."""
    tracer = tracer if tracer is not None else NULL_TRACER
    shards = getattr(store, "shards", None) or [store]
    store.reset_status()
    report = RefreshReport()
    with tracer.span(
        "store_refresh",
        kind="maintenance",
        shards=len(shards),
        workers=workers,
    ):
        for index, shard in enumerate(shards):
            report.shards.append(
                _refresh_shard(store, shard, index, workers, tracer)
            )
        report.added, report.added_downloads = _fetch_new_targets(
            store, workers
        )
        report.deferred_deleted = process_check_missing(store)["deleted"]
    return report


def consistency_report(store: MaterializedStore) -> ConsistencyReport:
    """Measure store/site drift using only light connections."""
    report = ConsistencyReport(stored_pages=store.page_count())
    stored_urls = set()
    for by_url in store.pages.values():
        stored_urls.update(by_url)
    for scheme_name, by_url in store.pages.items():
        for url, page in by_url.items():
            if check_freshness(store.client, url, page.modified) is not Freshness.FRESH:
                report.stale_pages += 1
            for link_url, _target in outlink_set(
                store.scheme, scheme_name, page.plain
            ):
                if link_url in stored_urls:
                    continue
                if store.client.head(link_url).ok:
                    report.unstored_link_targets.append((url, link_url))
                else:
                    report.dangling_links.append((url, link_url))
    return report
