"""Off-line maintenance (paper, Section 8, final paragraphs).

URLs flagged ``missing`` during query evaluation "may correspond to deleted
pages ... we decide to defer this check, and do it periodically off-line":
:func:`process_check_missing` drains the deferred queue with light
connections, dropping tuples whose pages are really gone.

"To guarantee the overall consistency, it is still possible to periodically
check the whole view and maintain it where necessary":
:func:`full_refresh` URL-checks every stored page and re-crawls from the
entry points to pick up pages no stored link reaches yet.
:func:`consistency_report` measures how inconsistent a store has become
(dangling stored links, stale pages) without repairing anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.adm.links import outlink_set
from repro.materialized.store import MaterializedStore
from repro.web.cache import Freshness, check_freshness

__all__ = ["process_check_missing", "full_refresh", "consistency_report",
           "ConsistencyReport"]


def process_check_missing(store: MaterializedStore) -> dict:
    """Drain the CheckMissing queue.  Returns counts:
    ``{"checked": n, "deleted": n, "still_alive": n}``."""
    checked = deleted = alive = 0
    queue = sorted(store.check_missing)
    store.check_missing.clear()
    for url in queue:
        checked += 1
        head = store.client.head(url)
        if head.ok:
            alive += 1
            continue
        deleted += 1
        page = store.stored(url)
        if page is not None:
            store._remove(url)
    return {"checked": checked, "deleted": deleted, "still_alive": alive}


def full_refresh(store: MaterializedStore) -> dict:
    """Check every stored page and re-crawl from the entry points.

    Returns ``{"checked": n, "redownloaded": n, "added": n, "removed": n}``.
    """
    store.reset_status()
    before_downloads = store.client.log.page_downloads
    before_count = store.page_count()

    # check every stored page (light connection each; downloads when stale)
    stored_urls = [
        (page.page_scheme, url)
        for by_url in store.pages.values()
        for url, page in list(by_url.items())
    ]
    for page_scheme, url in stored_urls:
        store.url_check(page_scheme, url)

    # discover pages no stored page linked to before the refresh
    frontier = [
        (ep.scheme, ep.url) for ep in store.scheme.entry_points.values()
    ]
    visited: set[str] = set()
    while frontier:
        page_scheme, url = frontier.pop()
        if url in visited:
            continue
        visited.add(url)
        plain = store.url_check(page_scheme, url)
        if plain is None:
            continue
        for link_url, target in outlink_set(store.scheme, page_scheme, plain):
            if link_url not in visited:
                frontier.append((target, link_url))

    result = process_check_missing(store)
    return {
        "checked": len(visited),
        "redownloaded": store.client.log.page_downloads - before_downloads,
        "added": max(0, store.page_count() - before_count),
        "removed": result["deleted"],
    }


@dataclass
class ConsistencyReport:
    """How far the store has drifted from the live site."""

    stored_pages: int = 0
    stale_pages: int = 0
    dangling_links: list = field(default_factory=list)
    unstored_link_targets: list = field(default_factory=list)

    @property
    def is_consistent(self) -> bool:
        return (
            not self.stale_pages
            and not self.dangling_links
            and not self.unstored_link_targets
        )


def consistency_report(store: MaterializedStore) -> ConsistencyReport:
    """Measure store/site drift using only light connections."""
    report = ConsistencyReport(stored_pages=store.page_count())
    stored_urls = set()
    for by_url in store.pages.values():
        stored_urls.update(by_url)
    for scheme_name, by_url in store.pages.items():
        for url, page in by_url.items():
            if check_freshness(store.client, url, page.modified) is not Freshness.FRESH:
                report.stale_pages += 1
            for link_url, _target in outlink_set(
                store.scheme, scheme_name, page.plain
            ):
                if link_url in stored_urls:
                    continue
                if store.client.head(link_url).ok:
                    report.unstored_link_targets.append((url, link_url))
                else:
                    report.dangling_links.append((url, link_url))
    return report
