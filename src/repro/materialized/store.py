"""The materialized ADM store and Function 2 (URLCheck).

Each stored page keeps its wrapped tuple, the logical date it was accessed,
and the ``Last-Modified`` date observed at that access.  URL status flags
(``none`` / ``checked`` / ``new`` / ``missing``) are per-query state, reset
by :meth:`MaterializedStore.reset_status` (the paper: "when a query is
evaluated, all flags are initialized to none").

``URLCheck`` follows the paper's Function 2:

1. a URL flagged ``new`` is downloaded unconditionally (we have no tuple);
2. otherwise a light connection compares modification dates (through
   :func:`repro.web.cache.check_freshness`, the same code path the
   client's cross-query page cache revalidates with — so every light
   connection is counted once, in :meth:`WebClient.head
   <repro.web.client.WebClient.head>`); only a stale page is re-downloaded;
3. after a re-download, outgoing links that appeared are flagged ``new``
   and links that disappeared are flagged ``missing``;
4. the URL itself is flagged ``checked`` so later navigations in the same
   query trust it without another connection.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.adm.links import outlink_set
from repro.adm.scheme import WebScheme
from repro.errors import MaterializationError, ResourceNotFound
from repro.web.cache import Freshness, check_freshness
from repro.web.client import WebClient
from repro.web.resources import WebResource
from repro.wrapper.wrapper import WrapperRegistry

__all__ = ["Status", "StoredPage", "MaterializedStore"]


class Status(enum.Enum):
    """Per-query URL flags (paper, Section 8)."""

    NONE = "none"
    CHECKED = "checked"
    NEW = "new"
    MISSING = "missing"


@dataclass
class StoredPage:
    """One materialized page: tuple + freshness metadata."""

    page_scheme: str
    url: str
    plain: dict
    access_date: int
    modified: int


class MaterializedStore:
    """Locally materialized page-relations over a live site.

    ``retain_schemes`` enables *partial* materialization (the advisor's
    output, :mod:`repro.materialized.advisor`): only pages of the listed
    page-schemes are kept in the store; pages of other schemes are still
    downloaded and wrapped when a query navigates through them, but the
    tuple lives only for the current query (``_transient``, cleared with
    the status flags) — the store pays nothing to keep them fresh.  None
    (the default) retains everything, the paper's Section 8 behaviour.
    """

    def __init__(
        self,
        scheme: WebScheme,
        client: WebClient,
        registry: WrapperRegistry,
        retain_schemes: Optional[Iterable[str]] = None,
    ):
        self.scheme = scheme
        self.client = client
        self.registry = registry
        if retain_schemes is None:
            self.retain_schemes: Optional[frozenset[str]] = None
        else:
            self.retain_schemes = frozenset(retain_schemes)
            unknown = self.retain_schemes - set(scheme.page_schemes)
            if unknown:
                raise MaterializationError(
                    f"unknown page-scheme(s) in retain_schemes: "
                    f"{sorted(unknown)}"
                )
        self.pages: dict[str, dict[str, StoredPage]] = {
            name: {} for name in scheme.page_schemes
        }
        self.status: dict[str, Status] = {}
        self.check_missing: set[str] = set()
        self._scheme_of_url: dict[str, str] = {}
        #: per-query tuples of non-retained pages (partial stores only)
        self._transient: dict[str, dict] = {}

    def _retains(self, page_scheme: str) -> bool:
        return self.retain_schemes is None or page_scheme in self.retain_schemes

    # ------------------------------------------------------------------ #
    # initial materialization
    # ------------------------------------------------------------------ #

    def populate(self) -> int:
        """Crawl the whole site once from the entry points and store every
        page (the paper: "we navigate the whole site once, wrap pages, and
        store them locally").  Returns the number of pages stored."""
        frontier = [
            (ep.scheme, ep.url) for ep in self.scheme.entry_points.values()
        ]
        visited: set[str] = set()
        while frontier:
            page_scheme, url = frontier.pop()
            if url in visited:
                continue
            visited.add(url)
            page = self._download(page_scheme, url)
            if page is None:
                continue
            for target_scheme, target_url in (
                (t, u) for u, t in outlink_set(self.scheme, page_scheme, page.plain)
            ):
                if target_url not in visited:
                    frontier.append((target_scheme, target_url))
        self.reset_status()
        return self.page_count()

    # ------------------------------------------------------------------ #
    # store access
    # ------------------------------------------------------------------ #

    def page_count(self) -> int:
        return sum(len(d) for d in self.pages.values())

    def stored(self, url: str) -> Optional[StoredPage]:
        scheme_name = self._scheme_of_url.get(url)
        if scheme_name is None:
            return None
        return self.pages[scheme_name].get(url)

    def tuples_of(self, page_scheme: str) -> dict[str, dict]:
        """All stored tuples of one page-scheme, keyed by URL (no checks)."""
        if page_scheme not in self.pages:
            raise MaterializationError(f"unknown page-scheme {page_scheme!r}")
        return {url: p.plain for url, p in self.pages[page_scheme].items()}

    def as_relation(self, page_scheme: str, alias: Optional[str] = None):
        """The materialized page-relation of ``page_scheme`` as a qualified
        nested :class:`~repro.nested.relation.Relation` — "the ADM scheme is
        itself a view over the site, a complex-object one" (Section 8)."""
        from repro.algebra.ast import page_relation_schema
        from repro.engine.local import qualify_row
        from repro.nested.relation import Relation

        schema = page_relation_schema(self.scheme, page_scheme, alias)
        rows = [
            qualify_row(schema, page.plain)
            for page in self.pages[page_scheme].values()
        ]
        return Relation(schema, rows)

    def export_flat(self) -> dict:
        """Decompose every materialized page-relation into flat relations
        (Section 8: PNF nested relations "can be easily decomposed in flat
        relations and stored in a relational DBMS").  Returns
        ``{flat_name: Relation}`` across all page-schemes."""
        from repro.nested.decompose import decompose

        result: dict = {}
        for page_scheme in self.pages:
            relation = self.as_relation(page_scheme)
            result.update(decompose(relation, page_scheme))
        return result

    def reset_status(self) -> None:
        """Start a new query: all flags back to ``none`` (and drop any
        transient tuples of non-retained pages — they live one query)."""
        self.status.clear()
        self._transient.clear()

    def status_of(self, url: str) -> Status:
        return self.status.get(url, Status.NONE)

    # ------------------------------------------------------------------ #
    # Function 2: URLCheck
    # ------------------------------------------------------------------ #

    def url_check(
        self,
        page_scheme: str,
        url: str,
        max_age: Optional[int] = None,
    ) -> Optional[dict]:
        """Check (and lazily maintain) one page; returns its fresh tuple,
        or None when the page no longer exists.

        ``max_age`` enables the paper's "controlled level of obsolescence":
        a stored tuple accessed within the last ``max_age`` clock ticks is
        trusted without even a light connection.
        """
        status = self.status_of(url)
        if status is Status.CHECKED:
            page = self.stored(url)
            if page is not None:
                return page.plain
            # partial stores: a checked page of a non-retained scheme was
            # kept for this query only
            return self._transient.get(url)

        page = self.stored(url)
        if (
            max_age is not None
            and page is not None
            and status is Status.NONE
            and self.client.server.clock.now() - page.access_date <= max_age
        ):
            return page.plain  # tolerated obsolescence: no connection at all
        if status is Status.NEW or page is None:
            fresh = self._download(page_scheme, url, previous=page)
            if fresh is None:
                self.status[url] = Status.MISSING
                self.check_missing.add(url)
                return None
            self.status[url] = Status.CHECKED
            return fresh.plain

        freshness = check_freshness(self.client, url, page.modified)
        if freshness is Freshness.MISSING:
            # the page was deleted behind our back
            self._remove(url)
            self.status[url] = Status.MISSING
            self.check_missing.add(url)
            return None
        if freshness is Freshness.STALE:
            fresh = self._download(page_scheme, url, previous=page)
            self.status[url] = Status.CHECKED
            return fresh.plain if fresh is not None else None
        # verified fresh: restart the obsolescence window
        page.access_date = self.client.server.clock.now()
        self.status[url] = Status.CHECKED
        return page.plain

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #

    def _download(
        self,
        page_scheme: str,
        url: str,
        previous: Optional[StoredPage] = None,
    ) -> Optional[StoredPage]:
        """Download + wrap + store one page; diffs outlinks against the
        previous version to flag new/missing link targets."""
        try:
            resource = self.client.get(url)
        except ResourceNotFound:
            if previous is not None:
                self._remove(url)
                self.check_missing.add(url)
            return None
        return self._ingest(page_scheme, url, resource, previous=previous)

    def _ingest(
        self,
        page_scheme: str,
        url: str,
        resource: WebResource,
        previous: Optional[StoredPage] = None,
    ) -> StoredPage:
        """Wrap + store one already-fetched page (the storage half of
        :meth:`_download`, shared with the batched refresh which fetches
        a whole shard through ``get_batch`` first)."""
        plain = self.registry.wrap(page_scheme, url, resource.html)
        page = StoredPage(
            page_scheme=page_scheme,
            url=url,
            plain=plain,
            access_date=self.client.server.clock.now(),
            modified=resource.last_modified,
        )
        if self._retains(page_scheme):
            self.pages[page_scheme][url] = page
            self._scheme_of_url[url] = page_scheme
        else:
            self._transient[url] = plain

        # Function 2 diffs outlinks only when replacing a stale version:
        # links that appeared are flagged new, links that vanished missing.
        if previous is not None:
            new_links = outlink_set(self.scheme, page_scheme, plain)
            old_links = outlink_set(self.scheme, page_scheme, previous.plain)
            for out_url, _target in new_links - old_links:
                if self.status_of(out_url) is not Status.CHECKED:
                    self.status[out_url] = Status.NEW
            for out_url, _target in old_links - new_links:
                if self.status_of(out_url) is not Status.CHECKED:
                    self.status[out_url] = Status.MISSING
        return page

    def _remove(self, url: str) -> None:
        scheme_name = self._scheme_of_url.pop(url, None)
        if scheme_name is not None:
            self.pages[scheme_name].pop(url, None)

    def __repr__(self) -> str:
        return (
            f"MaterializedStore({self.page_count()} pages, "
            f"{len(self.check_missing)} pending missing-checks)"
        )
