"""Algorithm 3: query evaluation over materialized views.

A query plan (selected by Algorithm 1) is evaluated on the *local*
page-relations; navigations become joins over URLs.  Before a page's tuple
is used, :meth:`~repro.materialized.store.MaterializedStore.url_check`
verifies freshness with a light connection, re-downloading only changed
pages — "while answering queries, we also maintain the view".

The measured cost of a query is therefore: about C(E) light connections
plus one full download per page that actually changed since the last
access — which the Section 8 benchmark sweeps over update rates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.algebra.ast import Expr
from repro.engine.local import LocalExecutor
from repro.errors import OptionsError
from repro.materialized.store import MaterializedStore, Status
from repro.nested.relation import Relation
from repro.optimizer.planner import Planner
from repro.options import QueryOptions
from repro.views.conjunctive import ConjunctiveQuery
from repro.web.client import AccessLog, CostSummary

__all__ = ["MaterializedResult", "MaterializedEngine"]


@dataclass
class MaterializedResult:
    """Answer + the network cost of producing it from the store."""

    relation: Relation
    log: AccessLog

    @property
    def light_connections(self) -> int:
        return self.log.light_connections

    @property
    def pages(self) -> int:
        """Pages actually (re-)downloaded during maintenance."""
        return self.log.page_downloads

    @property
    def cache_hits(self) -> int:
        """Accesses served from the client's page cache (if attached)."""
        return self.log.cache_hits

    @property
    def revalidations(self) -> int:
        """Cached pages confirmed fresh by the client's page cache."""
        return self.log.revalidations

    @property
    def pages_saved(self) -> int:
        """Full downloads avoided by the client's page cache."""
        return self.log.pages_saved

    @property
    def cost(self) -> CostSummary:
        """Measured cost in the shared summary shape."""
        return CostSummary.from_log(self.log)

    def __repr__(self) -> str:
        return (
            f"MaterializedResult({len(self.relation)} rows, "
            f"{self.light_connections} light connections, "
            f"{self.pages} downloads)"
        )


class _CheckingProvider:
    """PageRelationProvider running Algorithm 3's per-URL checks."""

    def __init__(self, store: MaterializedStore, max_age: Optional[int] = None):
        self.store = store
        self.max_age = max_age

    def entry_tuple(self, page_scheme: str) -> Optional[dict]:
        url = self.store.scheme.entry_point(page_scheme).url
        return self.store.url_check(page_scheme, url, max_age=self.max_age)

    def entry_tuples(self, page_schemes: Sequence[str]) -> dict[str, dict]:
        result = {}
        for page_scheme in page_schemes:
            plain = self.entry_tuple(page_scheme)
            if plain is not None:
                result[page_scheme] = plain
        return result

    def target_tuples(
        self, page_scheme: str, urls: Sequence[str]
    ) -> dict[str, dict]:
        result = {}
        for url in urls:
            status = self.store.status_of(url)
            if status is Status.MISSING:
                # deferred: the page is probably deleted; check off-line
                self.store.check_missing.add(url)
                continue
            plain = self.store.url_check(
                page_scheme, url, max_age=self.max_age
            )
            if plain is not None:
                result[url] = plain
        return result


class _TrustingProvider:
    """Provider that serves stored tuples without any checking (the
    "tolerate obsolescence" mode the paper contrasts against)."""

    def __init__(self, store: MaterializedStore):
        self.store = store

    def entry_tuple(self, page_scheme: str) -> Optional[dict]:
        url = self.store.scheme.entry_point(page_scheme).url
        page = self.store.stored(url)
        return page.plain if page is not None else None

    def entry_tuples(self, page_schemes: Sequence[str]) -> dict[str, dict]:
        result = {}
        for page_scheme in page_schemes:
            plain = self.entry_tuple(page_scheme)
            if plain is not None:
                result[page_scheme] = plain
        return result

    def target_tuples(
        self, page_scheme: str, urls: Sequence[str]
    ) -> dict[str, dict]:
        tuples = self.store.tuples_of(page_scheme)
        return {url: tuples[url] for url in urls if url in tuples}


class MaterializedEngine:
    """Evaluates plans on the materialized store (Algorithm 3)."""

    def __init__(self, store: MaterializedStore, planner: Optional[Planner] = None):
        self.store = store
        self.planner = planner

    @staticmethod
    def _check_options(
        options: Optional[QueryOptions],
    ) -> Optional[QueryOptions]:
        """Validate an ``options=`` bundle for the materialized path.

        The store evaluates locally through its own client, so only
        ``QueryOptions.tracer`` applies; every other field set away from
        its default — the network-execution knobs *and* the event journal
        — is a caller error, rejected loudly (naming the fields exactly
        as they appear on :class:`~repro.options.QueryOptions`) rather
        than silently ignored."""
        if options is None:
            return None
        if not isinstance(options, QueryOptions):
            raise OptionsError(
                f"options must be a QueryOptions, got {options!r}"
            )
        inapplicable = [
            f"QueryOptions.{name}"
            for name, value in (
                ("cache", options.cache),
                ("fetch", options.fetch),
                ("retry", options.retry),
                ("pipeline", options.pipeline),
                ("journal", options.journal),
            )
            if value is not None
        ]
        if options.execution != "staged":
            inapplicable.append("QueryOptions.execution")
        if inapplicable:
            raise OptionsError(
                f"{sorted(inapplicable)} do not apply to materialized "
                "evaluation (Algorithm 3 runs locally through the store's "
                "client; only QueryOptions.tracer applies)"
            )
        return options

    def execute(
        self,
        expr: Expr,
        check: bool = True,
        max_age: Optional[int] = None,
        *,
        options: Optional[QueryOptions] = None,
    ) -> MaterializedResult:
        """Evaluate one plan.  ``check=True`` runs Algorithm 3 (lazy
        maintenance); ``check=False`` trusts the store blindly (possibly
        stale answers, zero network cost).  ``max_age`` tolerates a
        controlled level of obsolescence: tuples verified within the last
        ``max_age`` clock ticks are used without any connection.
        ``options`` accepts the unified :class:`~repro.options.
        QueryOptions` bundle; only its ``tracer`` applies here (operator
        spans), any network-execution field raises
        :class:`~repro.errors.OptionsError`."""
        opts = self._check_options(options)
        self.store.reset_status()
        provider = (
            _CheckingProvider(self.store, max_age=max_age)
            if check
            else _TrustingProvider(self.store)
        )
        executor = LocalExecutor(
            self.store.scheme,
            provider,
            tracer=opts.tracer if opts is not None else None,
        )
        before = self.store.client.log.snapshot()
        relation = executor.evaluate(expr)
        return MaterializedResult(
            relation, self.store.client.log.delta(before)
        )

    def query(
        self,
        query: ConjunctiveQuery,
        check: bool = True,
        max_age: Optional[int] = None,
        *,
        options: Optional[QueryOptions] = None,
    ) -> MaterializedResult:
        """Optimize with Algorithm 1, then evaluate with Algorithm 3."""
        if self.planner is None:
            raise ValueError("MaterializedEngine was built without a planner")
        plan = self.planner.plan_query(query)
        return self.execute(
            plan.best.expr, check=check, max_age=max_age, options=options
        )
