"""``python -m repro`` — a one-minute demonstration.

Builds the paper's university site, runs three representative queries
through the full pipeline, and prints the plans the optimizer chose with
their estimated and measured network costs.
"""

from repro import university

QUERIES = [
    "SELECT DName FROM Dept",
    "SELECT Professor.PName, email FROM Professor, ProfDept "
    "WHERE Professor.PName = ProfDept.PName "
    "AND ProfDept.DName = 'Computer Science'",
    "SELECT Professor.PName, email FROM Course, CourseInstructor, "
    "Professor, ProfDept WHERE Course.CName = CourseInstructor.CName "
    "AND CourseInstructor.PName = Professor.PName "
    "AND Professor.PName = ProfDept.PName "
    "AND ProfDept.DName = 'Computer Science' AND Type = 'Graduate'",
]


def main() -> None:
    env = university()
    print(__doc__.strip().splitlines()[0])
    print(f"\nSite: {env.site} — {len(env.site.server)} pages\n")
    for sql in QUERIES:
        print("=" * 72)
        print("SQL:", sql)
        planned = env.plan(sql)
        result = env.execute(planned.best.expr)
        print(
            f"chosen plan ({planned.best.cost:.1f} pages estimated, "
            f"{result.pages} measured, {len(result.relation)} rows):"
        )
        print(" ", planned.best.render(scheme=env.scheme))
        print()


if __name__ == "__main__":
    main()
