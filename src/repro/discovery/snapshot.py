"""Site snapshots: crawled, wrapped page tuples organized by page-scheme.

A snapshot is the working set for constraint verification and mining.  It
also exposes *link occurrences*: for a given link attribute path, every
place a link value appears, together with the attribute values visible at
that nesting level (what a link constraint may reference).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.adm.links import iter_outlinks
from repro.adm.page_scheme import AttrPath
from repro.adm.scheme import WebScheme
from repro.errors import ResourceNotFound, SchemeError, WrapperError
from repro.web.client import WebClient
from repro.wrapper.wrapper import WrapperRegistry

__all__ = ["LinkOccurrence", "SiteSnapshot", "crawl_snapshot"]


@dataclass(frozen=True)
class LinkOccurrence:
    """One occurrence of a link value in a page tuple.

    ``page`` is the whole page tuple; ``level`` is the row at the link's
    nesting level (the page itself for top-level links, the list item for
    nested ones).  Attribute lookup resolves link-level attributes first,
    then enclosing page-level ones — mirroring which attributes a link
    constraint may reference.
    """

    page: dict
    level: dict
    value: Optional[str]

    def attr(self, path: AttrPath) -> Optional[str]:
        if path.parent is None:
            # a top-level attribute of the page
            if path.leaf in self.level:
                return self.level.get(path.leaf)
            return self.page.get(path.leaf)
        return self.level.get(path.leaf)


class SiteSnapshot:
    """Wrapped tuples per page-scheme, keyed by URL."""

    def __init__(self, scheme: WebScheme):
        self.scheme = scheme
        self.pages: dict[str, dict[str, dict]] = {
            name: {} for name in scheme.page_schemes
        }

    def add(self, page_scheme: str, url: str, plain: dict) -> None:
        if page_scheme not in self.pages:
            raise SchemeError(f"unknown page-scheme {page_scheme!r}")
        self.pages[page_scheme][url] = plain

    def tuples(self, page_scheme: str) -> dict[str, dict]:
        try:
            return self.pages[page_scheme]
        except KeyError:
            raise SchemeError(f"unknown page-scheme {page_scheme!r}") from None

    def page_count(self) -> int:
        return sum(len(d) for d in self.pages.values())

    # ------------------------------------------------------------------ #
    # link occurrences
    # ------------------------------------------------------------------ #

    def link_occurrences(
        self, page_scheme: str, link_path: AttrPath | str
    ) -> Iterator[LinkOccurrence]:
        """Every occurrence of the link attribute over the snapshot."""
        if isinstance(link_path, str):
            link_path = AttrPath.parse(link_path)
        # validate it is a link
        self.scheme.link_target(page_scheme, link_path)

        def rows_at(level_row: dict, steps: tuple) -> Iterator[dict]:
            if len(steps) == 1:
                yield level_row
                return
            for item in level_row.get(steps[0]) or []:
                yield from rows_at(item, steps[1:])

        for plain in self.tuples(page_scheme).values():
            for level in rows_at(plain, link_path.steps):
                yield LinkOccurrence(
                    page=plain, level=level, value=level.get(link_path.leaf)
                )

    def link_values(
        self, page_scheme: str, link_path: AttrPath | str
    ) -> set:
        """The set of non-null values of a link attribute."""
        return {
            occ.value
            for occ in self.link_occurrences(page_scheme, link_path)
            if occ.value is not None
        }

    def all_link_paths(self) -> list[tuple]:
        """Every ``(page_scheme, link_path, target_scheme)`` in the scheme."""
        result = []
        for name, ps in self.scheme.page_schemes.items():
            for path, lt in ps.link_paths():
                result.append((name, path, lt.target))
        return result

    def __repr__(self) -> str:
        return f"SiteSnapshot({self.page_count()} pages)"


def crawl_snapshot(
    scheme: WebScheme,
    client: WebClient,
    registry: WrapperRegistry,
    max_pages: Optional[int] = None,
) -> SiteSnapshot:
    """BFS-crawl the site from its entry points into a snapshot."""
    snapshot = SiteSnapshot(scheme)
    queue: deque = deque(
        (ep.scheme, ep.url) for ep in scheme.entry_points.values()
    )
    visited: set[str] = set()
    while queue:
        if max_pages is not None and len(visited) >= max_pages:
            break
        page_scheme, url = queue.popleft()
        if url in visited:
            continue
        visited.add(url)
        try:
            resource = client.get(url)
            plain = registry.wrap(page_scheme, url, resource.html)
        except (ResourceNotFound, WrapperError):
            continue
        snapshot.add(page_scheme, url, plain)
        for target_scheme, target_url in iter_outlinks(
            scheme, page_scheme, plain
        ):
            if target_url not in visited:
                queue.append((target_scheme, target_url))
    return snapshot
