"""Constraint mining: find the constraints that hold on a snapshot.

This is the semi-automatic reverse-engineering step of the paper's footnote
2: propose link constraints (redundant attributes across links) and
inclusion constraints (containments between navigation paths) for the
designer to confirm.  Constraints that hold on one snapshot are only
*candidates* — a later instance may break them — which is exactly how the
paper treats them (documented knowledge, re-checked as the site evolves).
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.adm.constraints import AttrRef, InclusionConstraint, LinkConstraint
from repro.adm.page_scheme import AttrPath
from repro.adm.webtypes import LinkType, ListType
from repro.discovery.snapshot import SiteSnapshot
from repro.discovery.verify import verify_link_constraint

__all__ = ["discover_inclusions", "discover_link_constraints"]


def discover_inclusions(
    snapshot: SiteSnapshot, min_subset_size: int = 1
) -> list[InclusionConstraint]:
    """All inclusions ``P1.L1 ⊆ P2.L2`` (distinct link paths, same target)
    whose subset side has at least ``min_subset_size`` values.

    Trivially-empty subsets are excluded by default: an empty link set is
    contained in everything and tells the designer nothing.
    """
    paths = snapshot.all_link_paths()
    values = {
        (scheme, str(path)): snapshot.link_values(scheme, path)
        for scheme, path, _ in paths
    }
    found = []
    for sub_scheme, sub_path, sub_target in paths:
        sub_values = values[(sub_scheme, str(sub_path))]
        if len(sub_values) < min_subset_size:
            continue
        for sup_scheme, sup_path, sup_target in paths:
            if sub_target != sup_target:
                continue
            if (sub_scheme, str(sub_path)) == (sup_scheme, str(sup_path)):
                continue
            if sub_values <= values[(sup_scheme, str(sup_path))]:
                found.append(
                    InclusionConstraint(
                        AttrRef(sub_scheme, sub_path),
                        AttrRef(sup_scheme, sup_path),
                    )
                )
    return found


def _candidate_source_attrs(
    snapshot: SiteSnapshot, page_scheme: str, link_path: AttrPath
) -> Iterator[AttrPath]:
    """Mono-valued attributes visible at the link's level: siblings inside
    the same list, or top-level attributes of the page."""
    ps = snapshot.scheme.page_scheme(page_scheme)
    parent = link_path.parent
    if parent is not None:
        list_type = ps.attr_type(parent)
        assert isinstance(list_type, ListType)
        for fname, ftype in list_type.fields:
            if ftype.is_mono_valued() and not isinstance(ftype, LinkType):
                yield parent.child(fname)
    for attr in ps.attributes:
        if attr.wtype.is_mono_valued() and not isinstance(
            attr.wtype, LinkType
        ):
            yield AttrPath((attr.name,))


def discover_link_constraints(
    snapshot: SiteSnapshot,
    page_scheme: Optional[str] = None,
) -> list[LinkConstraint]:
    """All link constraints that hold on the snapshot (optionally limited
    to links of one source page-scheme).

    For every link, every visible mono-valued source attribute is paired
    with every mono-valued target attribute; the pair becomes a candidate
    when the iff condition holds over the whole snapshot (checked by
    :func:`~repro.discovery.verify.verify_link_constraint`).  Links with no
    occurrences yield nothing — there is no evidence.
    """
    found = []
    for src_scheme, link_path, target in snapshot.all_link_paths():
        if page_scheme is not None and src_scheme != page_scheme:
            continue
        occurrences = list(
            snapshot.link_occurrences(src_scheme, link_path)
        )
        if not any(occ.value is not None for occ in occurrences):
            continue
        target_ps = snapshot.scheme.page_scheme(target)
        target_attrs = [
            AttrPath((a.name,))
            for a in target_ps.attributes
            if a.wtype.is_mono_valued() and not isinstance(a.wtype, LinkType)
        ]
        for source_attr in _candidate_source_attrs(
            snapshot, src_scheme, link_path
        ):
            for target_attr in target_attrs:
                candidate = LinkConstraint(
                    source=src_scheme,
                    link_path=link_path,
                    source_attr=source_attr,
                    target=target,
                    target_attr=target_attr,
                )
                report = verify_link_constraint(snapshot, candidate)
                if report.holds and report.checked and not report.dangling:
                    found.append(candidate)
    return found
