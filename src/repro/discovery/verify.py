"""Verification of declared constraints against a site snapshot.

A link constraint ``R1.A = R2.B`` on link ``L`` holds when, for every pair
of tuples, ``t1.L = t2.URL ⟺ t1.A = t2.B`` (paper, Section 3.2).  Both
directions are checked:

* (⇒) the linked page's B equals the source's A;
* (⇐) no *other* page of the target scheme has that B value (otherwise a
  pair with equal A/B but unequal link/URL would exist).

An inclusion constraint holds when every value of the subset link attribute
appears among the superset's values.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.adm.constraints import InclusionConstraint, LinkConstraint
from repro.adm.scheme import WebScheme
from repro.discovery.snapshot import SiteSnapshot

__all__ = [
    "ConstraintReport",
    "verify_link_constraint",
    "verify_inclusion_constraint",
    "verify_scheme",
]


@dataclass
class ConstraintReport:
    """The outcome of checking one constraint on one snapshot."""

    constraint: object
    checked: int = 0
    violations: list = field(default_factory=list)
    dangling: list = field(default_factory=list)

    @property
    def holds(self) -> bool:
        return not self.violations

    def __repr__(self) -> str:
        status = "holds" if self.holds else f"{len(self.violations)} violations"
        return f"ConstraintReport({self.constraint}: {status}, checked={self.checked})"


def verify_link_constraint(
    snapshot: SiteSnapshot, constraint: LinkConstraint
) -> ConstraintReport:
    """Check a link constraint; violations carry (source URL, reason).

    Granularity follows the constraint's shape.  When the source attribute
    sits at the link's own nesting level (``DeptList.DName`` for
    ``DeptList.ToDept``), each occurrence is a pair: its link must point at
    exactly the target pages sharing the attribute value — one per value.
    When the source attribute encloses a nested link (``Session`` for
    ``CourseList.ToCourse``), the link is set-valued at page granularity:
    the page must link exactly the target pages whose B equals its A (the
    fall session page links all and only the fall courses).
    """
    constraint.validate(snapshot.scheme.page_schemes)
    report = ConstraintReport(constraint)
    targets = snapshot.tuples(constraint.target)

    # index: B value -> set of target URLs carrying it
    b_leaf = constraint.target_attr.leaf
    by_value: dict = {}
    for url, plain in targets.items():
        value = plain.get(b_leaf)
        if value is not None:
            by_value.setdefault(value, set()).add(url)

    enclosing = (
        constraint.source_attr.parent is None
        and constraint.link_path.parent is not None
    )
    if enclosing:
        _verify_page_granularity(
            snapshot, constraint, targets, by_value, b_leaf, report
        )
    else:
        _verify_occurrence_granularity(
            snapshot, constraint, targets, by_value, b_leaf, report
        )
    return report


def _verify_occurrence_granularity(
    snapshot, constraint, targets, by_value, b_leaf, report
) -> None:
    for occ in snapshot.link_occurrences(
        constraint.source, constraint.link_path
    ):
        report.checked += 1
        source_value = occ.attr(constraint.source_attr)
        if occ.value is None:
            # a null link with a non-null source value violates (⇐) when
            # some target page carries that value
            if source_value is not None and by_value.get(source_value):
                report.violations.append(
                    (occ.page.get("URL"), "null link but matching target exists")
                )
            continue
        target = targets.get(occ.value)
        if target is None:
            report.dangling.append((occ.page.get("URL"), occ.value))
            continue
        if target.get(b_leaf) != source_value:
            report.violations.append(
                (
                    occ.page.get("URL"),
                    f"linked page has {b_leaf}={target.get(b_leaf)!r}, "
                    f"source says {source_value!r}",
                )
            )
            continue
        matching = by_value.get(source_value, set())
        if matching != {occ.value}:
            others = sorted(matching - {occ.value})
            report.violations.append(
                (
                    occ.page.get("URL"),
                    f"other target pages share {b_leaf}={source_value!r}: "
                    f"{others}",
                )
            )


def _verify_page_granularity(
    snapshot, constraint, targets, by_value, b_leaf, report
) -> None:
    # group occurrences by source page
    links_per_page: dict[str, set] = {}
    value_per_page: dict[str, object] = {}
    for occ in snapshot.link_occurrences(
        constraint.source, constraint.link_path
    ):
        url = occ.page.get("URL")
        value_per_page[url] = occ.attr(constraint.source_attr)
        if occ.value is not None:
            links_per_page.setdefault(url, set()).add(occ.value)
    # pages with empty link lists still participate
    for plain in snapshot.tuples(constraint.source).values():
        url = plain.get("URL")
        value_per_page.setdefault(
            url, plain.get(constraint.source_attr.leaf)
        )
        links_per_page.setdefault(url, set())

    for url, linked in sorted(links_per_page.items()):
        report.checked += 1
        source_value = value_per_page.get(url)
        live = {u for u in linked if u in targets}
        for dangle in sorted(linked - live):
            report.dangling.append((url, dangle))
        expected = by_value.get(source_value, set())
        if live - expected:
            extra = sorted(live - expected)
            report.violations.append(
                (url, f"links target pages with {b_leaf} ≠ "
                      f"{source_value!r}: {extra}")
            )
        if expected - live:
            missing = sorted(expected - live)
            report.violations.append(
                (url, f"misses target pages with {b_leaf} = "
                      f"{source_value!r}: {missing}")
            )


def verify_inclusion_constraint(
    snapshot: SiteSnapshot, constraint: InclusionConstraint
) -> ConstraintReport:
    """Check an inclusion constraint; violations list the missing URLs."""
    constraint.validate(snapshot.scheme.page_schemes)
    report = ConstraintReport(constraint)
    subset = snapshot.link_values(
        constraint.subset.scheme, constraint.subset.path
    )
    superset = snapshot.link_values(
        constraint.superset.scheme, constraint.superset.path
    )
    report.checked = len(subset)
    for url in sorted(subset - superset):
        report.violations.append((url, "not reachable via the superset path"))
    return report


def verify_scheme(snapshot: SiteSnapshot) -> dict:
    """Check every declared constraint of the snapshot's scheme.

    Returns ``{"link": [reports...], "inclusion": [reports...]}``; the site
    designer reads this after a re-crawl to learn whether the documented
    redundancies still hold.
    """
    scheme: WebScheme = snapshot.scheme
    return {
        "link": [
            verify_link_constraint(snapshot, lc)
            for lc in scheme.link_constraints
        ],
        "inclusion": [
            verify_inclusion_constraint(snapshot, ic)
            for ic in scheme.inclusion_constraints
        ],
    }
