"""Constraint verification and discovery by site exploration.

The paper's schemes are "the product of a reverse engineering phase ...
conducted by a human designer, with the help of a number of tools which
semi-automatically analyze the Web" (Section 3, footnote 2), and suggests
using a WebSQL-like tool "to verify different paths leading to the same
page-scheme and check inclusions between sets of links" (Section 3.2).

This package plays that role:

* :mod:`repro.discovery.snapshot` — crawl a site into an in-memory
  snapshot of wrapped tuples (the raw material for verification);
* :mod:`repro.discovery.verify` — check declared link and inclusion
  constraints against a snapshot, reporting violations;
* :mod:`repro.discovery.mine` — discover the link and inclusion
  constraints that *hold* on a snapshot (candidates for the designer).
"""

from repro.discovery.snapshot import SiteSnapshot, crawl_snapshot
from repro.discovery.verify import (
    ConstraintReport,
    verify_link_constraint,
    verify_inclusion_constraint,
    verify_scheme,
)
from repro.discovery.mine import discover_inclusions, discover_link_constraints

__all__ = [
    "SiteSnapshot",
    "crawl_snapshot",
    "ConstraintReport",
    "verify_link_constraint",
    "verify_inclusion_constraint",
    "verify_scheme",
    "discover_inclusions",
    "discover_link_constraints",
]
