"""One-call environments: site + scheme + view + statistics + planner.

These are the entry points most users (and all examples/benchmarks) start
from:

* :func:`university` — the paper's Figure 1 site with the Section 5
  external view (``Dept``, ``Professor``, ``Course``, ``CourseInstructor``,
  ``ProfDept``);
* :func:`bibliography` — the Introduction's DBLP-like site with a
  publication-centric view whose two default navigations are exactly the
  "via conferences" and "via authors" access paths the paper contrasts;
* :func:`movies` — a site with optional links (independent movies without
  a director page), exercising null-value semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as _dc_replace
from typing import Optional, Union

from repro.adm.scheme import WebScheme
from repro.algebra.ast import EntryPointScan, Expr
from repro.engine.pipeline import PipelineConfig
from repro.engine.remote import ExecutionResult, RemoteExecutor
from repro.errors import OptionsError
from repro.options import QueryOptions, coerce_options
from repro.optimizer.cost import CacheEstimate, CostModel
from repro.optimizer.planner import Planner, PlannerResult
from repro.sitegen.bibliography import BibliographyConfig, build_bibliography_site
from repro.sitegen.fuzz import FuzzConfig, build_fuzzed_site, fuzzed_view
from repro.sitegen.movies import MovieConfig, build_movie_site
from repro.sitegen.university import UniversityConfig, build_university_site
from repro.stats.exact import exact_statistics
from repro.stats.statistics import SiteStatistics
from repro.views.conjunctive import ConjunctiveQuery
from repro.views.external import DefaultNavigation, ExternalRelation, ExternalView
from repro.views.sql import parse_query
from repro.web.cache import NO_CACHE, CachePolicy, PageCache, ShardedPageCache
from repro.web.client import FetchConfig, RetryPolicy, WebClient
from repro.wrapper.conventions import registry_for_scheme
from repro.wrapper.wrapper import WrapperRegistry

__all__ = [
    "SiteEnv",
    "site_env",
    "university",
    "bibliography",
    "movies",
    "fuzzed",
    "university_view",
    "bibliography_view",
    "movie_view",
]


@dataclass
class SiteEnv:
    """Everything needed to pose queries against a generated site."""

    scheme: WebScheme
    view: ExternalView
    client: WebClient
    registry: WrapperRegistry
    stats: SiteStatistics
    cost_model: CostModel
    planner: Planner
    executor: RemoteExecutor
    site: object  # UniversitySite or BibliographySite
    page_cache: Optional[PageCache] = None

    # ------------------------------------------------------------------ #
    # the end-to-end user API
    # ------------------------------------------------------------------ #

    def sql(self, text: str) -> ConjunctiveQuery:
        """Parse a conjunctive SQL query against this view."""
        return parse_query(text, self.view)

    def enable_cache(
        self,
        capacity: int = 256,
        policy: Union[CachePolicy, str] = CachePolicy.CROSS_QUERY,
        shards: int = 1,
    ) -> PageCache:
        """Attach a page cache to this environment and return it.

        Subsequent :meth:`plan` / :meth:`execute` / :meth:`query` calls use
        it by default; pass ``cache="off"`` per call to bypass it.
        ``shards > 1`` builds a :class:`~repro.web.cache.ShardedPageCache`
        (URL-hash partitioned LRUs, per-shard locking — the cross-query
        cache counterpart of the sharded materialized store)."""
        if shards > 1:
            self.page_cache = ShardedPageCache(
                capacity=capacity,
                policy=CachePolicy.coerce(policy),
                shards=shards,
            )
        else:
            self.page_cache = PageCache(
                capacity=capacity, policy=CachePolicy.coerce(policy)
            )
        return self.page_cache

    def _resolve_cache(
        self, cache: Union[PageCache, CachePolicy, str, None]
    ) -> Optional[PageCache]:
        """Normalize a per-call ``cache`` argument.

        ``None`` means the environment default (``page_cache``, possibly
        none at all); a :class:`PageCache` is used as-is; a policy (or its
        string name) selects that policy on the environment cache,
        creating it on first use — except ``"off"``, which bypasses any
        cache for this call."""
        if cache is None:
            return self.page_cache
        if isinstance(cache, PageCache):
            return cache
        policy = CachePolicy.coerce(cache)
        if policy is CachePolicy.OFF:
            return NO_CACHE
        if self.page_cache is None:
            return self.enable_cache(policy=policy)
        self.page_cache.policy = policy
        return self.page_cache

    def _coerce_options(
        self,
        options: Optional[QueryOptions],
        *,
        fetch_config: Optional[FetchConfig] = None,
        retry_policy: Optional[RetryPolicy] = None,
        cache: Union[PageCache, CachePolicy, str, None] = None,
        tracer: object = None,
        execution: Optional[str] = None,
        pipeline: Optional[PipelineConfig] = None,
    ) -> QueryOptions:
        """The environment's single option-coercion point: apply the
        legacy-kwargs shim (:func:`repro.options.coerce_options`) and
        resolve the cache spec against the environment cache *exactly
        once*, so the resolved :class:`PageCache` (or None) threads
        through planning and execution unchanged."""
        opts = coerce_options(
            options,
            fetch_config=fetch_config,
            retry_policy=retry_policy,
            cache=cache,
            tracer=tracer,
            execution=execution,
            pipeline=pipeline,
            stacklevel=4,  # user → query/execute/explain → here → warn
        )
        return opts.with_cache(self._resolve_cache(opts.cache))

    def cache_estimate(
        self,
        cache: Union[PageCache, CachePolicy, str, None] = None,
        light_weight: float = 0.0,
    ) -> Optional[CacheEstimate]:
        """Per-page-scheme hit rates from the current cache contents, or
        None when no (active, non-empty) cache applies."""
        resolved = self._resolve_cache(cache)
        if (
            resolved is None
            or resolved.policy is CachePolicy.OFF
            or len(resolved) == 0
        ):
            return None
        return CacheEstimate.from_cache(
            resolved, self.stats, light_weight=light_weight
        )

    def enumerate_plans(
        self,
        query: ConjunctiveQuery | str,
        *,
        cache: Union[PageCache, CachePolicy, str, None] = None,
        limit: Optional[int] = None,
    ) -> list:
        """All valid candidate plans for ``query``, cheapest first.

        The full plan space of Algorithm 1 (not just the winner), for
        tools — like the :mod:`repro.qa` differential oracle — that
        execute every candidate and compare the answers."""
        if isinstance(query, str):
            query = self.sql(query)
        return self.planner.enumerate_plans(
            query, cache_estimate=self.cache_estimate(cache), limit=limit
        )

    def plan(
        self,
        query: ConjunctiveQuery | str,
        *,
        cache: Union[PageCache, CachePolicy, str, None] = None,
    ) -> PlannerResult:
        """Optimize a query (Algorithm 1).

        When a cache applies (the environment cache, or ``cache=``), the
        planner costs candidates with hit rates derived from the actual
        cache contents, so a warm cache can flip the chosen plan."""
        if isinstance(query, str):
            query = self.sql(query)
        return self.planner.plan_query(
            query, cache_estimate=self.cache_estimate(cache)
        )

    def execute(
        self,
        plan: Expr,
        *,
        options: Optional[QueryOptions] = None,
        fetch_config: Optional[FetchConfig] = None,
        retry_policy: Optional[RetryPolicy] = None,
        cache: Union[PageCache, CachePolicy, str, None] = None,
        tracer: object = None,
        execution: Optional[str] = None,
        pipeline: Optional[PipelineConfig] = None,
    ) -> ExecutionResult:
        """Execute one plan against the live site.

        ``options`` (a :class:`~repro.options.QueryOptions`) bundles the
        fetch pool, retry policy, cache spec, execution mode
        (``"staged"`` / ``"pipelined"`` / ``"columnar"`` /
        ``"columnar_pipelined"``), pipeline tuning, and tracer;
        see that class for field semantics.  Defaults preserve the
        client's behaviour (serial fetching under the 1998 network model,
        default retries).  The cache spec is resolved against the
        environment cache exactly once (see :meth:`_resolve_cache`).

        The individual keyword arguments are the deprecated pre-1.1
        surface: honoured via the :func:`~repro.options.coerce_options`
        shim (one :class:`DeprecationWarning` per call), but they cannot
        be mixed with ``options=``.
        """
        opts = self._coerce_options(
            options,
            fetch_config=fetch_config,
            retry_policy=retry_policy,
            cache=cache,
            tracer=tracer,
            execution=execution,
            pipeline=pipeline,
        )
        return self.executor.execute(plan, options=opts)

    def query(
        self,
        query: ConjunctiveQuery | str,
        *,
        options: Optional[QueryOptions] = None,
        fetch_config: Optional[FetchConfig] = None,
        retry_policy: Optional[RetryPolicy] = None,
        cache: Union[PageCache, CachePolicy, str, None] = None,
        tracer: object = None,
        execution: Optional[str] = None,
        pipeline: Optional[PipelineConfig] = None,
    ) -> ExecutionResult:
        """Optimize and execute: the paper's end-to-end query path.

        With an active cache the optimizer sees its contents (cache-aware
        costing) and the executor serves hits from it.  ``options`` (or
        the deprecated individual kwargs — see :meth:`execute`) is
        validated *before* planning — an unknown execution mode raises
        :class:`~repro.errors.ExecutionModeError` instead of silently
        running staged."""
        opts = self._coerce_options(
            options,
            fetch_config=fetch_config,
            retry_policy=retry_policy,
            cache=cache,
            tracer=tracer,
            execution=execution,
            pipeline=pipeline,
        )
        result = self.plan(query, cache=opts.cache)
        return self.executor.execute(result.best.expr, options=opts)

    def explain(
        self,
        query: ConjunctiveQuery | str,
        *,
        analyze: bool = False,
        options: Optional[QueryOptions] = None,
        fetch_config: Optional[FetchConfig] = None,
        retry_policy: Optional[RetryPolicy] = None,
        cache: Union[PageCache, CachePolicy, str, None] = None,
        tracer: object = None,
        execution: Optional[str] = None,
        pipeline: Optional[PipelineConfig] = None,
        plan_index: Optional[int] = None,
    ) -> str:
        """Human-readable optimizer report: considered plans, *why* the
        chosen plan won (the rule-by-rule rewrite lineage), its annotated
        tree, and its estimated costs (pages / bytes / local work).

        ``plan_index`` explains (and, with ``analyze=True``, executes)
        candidate ``N`` of the sorted plan space instead of the chosen
        plan — the index QA cell ids carry (``q/pN/...``), so any matrix
        cell's plan can be reproduced and analyzed directly.

        ``analyze=True`` additionally *executes* the chosen plan under a
        recording tracer (EXPLAIN ANALYZE): every operator row gains a
        measured column — own pages downloaded (summing exactly to the
        run's total), tuples produced, simulated seconds — and the report
        ends with the run's measured :class:`~repro.web.client.
        CostSummary`.  Pass ``tracer`` (a :class:`~repro.obs.trace.
        RecordingTracer`) to keep the recorded spans for export.  With
        ``execution="adaptive"`` the analyzed run may fire runtime
        relevance prunes and rule-8/9 switches; every fired decision is
        appended to the report (docs/ADAPTIVE.md — under a switched join
        the operator spans pair with the *decision* order, not the
        printed tree).
        """
        from repro.obs.explain import render_annotated_tree
        from repro.obs.trace import RecordingTracer, spans_by_node

        if isinstance(query, str):
            query = self.sql(query)
        opts = self._coerce_options(
            options,
            fetch_config=fetch_config,
            retry_policy=retry_policy,
            cache=cache,
            tracer=tracer,
            execution=execution,
            pipeline=pipeline,
        )
        planned = self.planner.plan_query(
            query, cache_estimate=self.cache_estimate(opts.cache), trace=True
        )
        best = planned.best
        if plan_index is not None:
            if not 0 <= plan_index < len(planned.candidates):
                raise OptionsError(
                    f"plan_index {plan_index} out of range "
                    f"(query has {len(planned.candidates)} candidates)"
                )
            best = planned.candidates[plan_index]
        lines = [planned.describe(self.scheme)]
        lines.append("")
        lines.append("why this plan:")
        lines.append(planned.why())
        lines.append("")
        spans = None
        result = None
        if analyze:
            recorder = (
                opts.tracer
                if isinstance(opts.tracer, RecordingTracer)
                else RecordingTracer()
            )
            result = self.executor.execute(
                best.expr, options=_dc_replace(opts, tracer=recorder)
            )
            spans = spans_by_node(recorder)
        lines.append(
            "chosen plan:"
            if plan_index is None
            else f"candidate plan {plan_index}:"
        )
        lines.append(
            render_annotated_tree(
                best.expr, self.cost_model, scheme=self.scheme, spans=spans
            )
        )
        lines.append("")
        lines.append(
            f"estimated: {best.cost:.1f} pages, "
            f"{best.bytes_cost:.0f} bytes, "
            f"{self.cost_model.local_work(best.expr):.0f} local tuple ops, "
            f"{best.cardinality:.1f} result rows"
        )
        if result is not None:
            cost = result.cost
            lines.append(
                f"measured:  {cost.pages:.0f} pages, "
                f"{cost.bytes:.0f} bytes, "
                f"{cost.light_connections:.0f} light connections, "
                f"{cost.pages_saved:.0f} pages saved, "
                f"{cost.simulated_seconds:.2f}s simulated, "
                f"{len(result.relation)} result rows"
            )
            if result.adaptive is not None and result.adaptive.decisions:
                lines.extend(result.adaptive.summary_lines())
        return "\n".join(lines)

    def refresh_statistics(self) -> None:
        """Recompute exact statistics (after site mutations)."""
        self.stats = exact_statistics(self.scheme, self.site.server, self.registry)
        self.cost_model = CostModel(self.scheme, self.stats)
        self.planner = Planner(self.view, self.cost_model)
        # adaptive execution re-plans and re-prices against the refreshed
        # model, exactly like new plans do
        self.executor.planner = self.planner
        self.executor.cost_model = self.cost_model


def site_env(site, view: ExternalView) -> SiteEnv:
    """Wire a generated site and its external view into a full environment
    (conventional wrappers, exact statistics, planner, executor)."""
    registry = registry_for_scheme(site.scheme)
    stats = exact_statistics(site.scheme, site.server, registry)
    cost_model = CostModel(site.scheme, stats)
    client = WebClient(site.server)
    planner = Planner(view, cost_model)
    return SiteEnv(
        scheme=site.scheme,
        view=view,
        client=client,
        registry=registry,
        stats=stats,
        cost_model=cost_model,
        planner=planner,
        executor=RemoteExecutor(
            site.scheme,
            client,
            registry,
            planner=planner,
            cost_model=cost_model,
        ),
        site=site,
    )


#: Backwards-compatible private alias (pre-QA callers).
_env = site_env


# --------------------------------------------------------------------- #
# the university view (paper, Section 5, items 1–5)
# --------------------------------------------------------------------- #


def university_view(scheme: WebScheme) -> ExternalView:
    """The five external relations of Section 5 with their default
    navigations (two each for ``CourseInstructor`` and ``ProfDept``)."""
    profs = (
        EntryPointScan("ProfListPage")
        .unnest("ProfListPage.ProfList")
        .follow("ProfListPage.ProfList.ToProf")
    )
    depts = (
        EntryPointScan("DeptListPage")
        .unnest("DeptListPage.DeptList")
        .follow("DeptListPage.DeptList.ToDept")
    )
    courses = (
        EntryPointScan("SessionListPage")
        .unnest("SessionListPage.SesList")
        .follow("SessionListPage.SesList.ToSes")
        .unnest("SessionPage.CourseList")
        .follow("SessionPage.CourseList.ToCourse")
    )

    view = ExternalView(scheme)
    view.add(
        ExternalRelation(
            name="Dept",
            attrs=("DName", "Address"),
            navigations=(
                DefaultNavigation.of(
                    depts,
                    {"DName": "DeptPage.DName", "Address": "DeptPage.Address"},
                ),
            ),
        )
    )
    view.add(
        ExternalRelation(
            name="Professor",
            attrs=("PName", "Rank", "email"),
            navigations=(
                DefaultNavigation.of(
                    profs,
                    {
                        "PName": "ProfPage.PName",
                        "Rank": "ProfPage.Rank",
                        "email": "ProfPage.email",
                    },
                ),
            ),
        )
    )
    view.add(
        ExternalRelation(
            name="Course",
            attrs=("CName", "Session", "Description", "Type"),
            navigations=(
                DefaultNavigation.of(
                    courses,
                    {
                        "CName": "CoursePage.CName",
                        "Session": "CoursePage.Session",
                        "Description": "CoursePage.Description",
                        "Type": "CoursePage.Type",
                    },
                ),
            ),
        )
    )
    view.add(
        ExternalRelation(
            name="CourseInstructor",
            attrs=("CName", "PName"),
            navigations=(
                DefaultNavigation.of(
                    profs.unnest("ProfPage.CourseList"),
                    {
                        "CName": "ProfPage.CourseList.CName",
                        "PName": "ProfPage.PName",
                    },
                ),
                DefaultNavigation.of(
                    courses,
                    {"CName": "CoursePage.CName", "PName": "CoursePage.PName"},
                ),
            ),
        )
    )
    view.add(
        ExternalRelation(
            name="ProfDept",
            attrs=("PName", "DName"),
            navigations=(
                DefaultNavigation.of(
                    profs,
                    {"PName": "ProfPage.PName", "DName": "ProfPage.DName"},
                ),
                DefaultNavigation.of(
                    depts.unnest("DeptPage.ProfList"),
                    {
                        "PName": "DeptPage.ProfList.PName",
                        "DName": "DeptPage.DName",
                    },
                ),
            ),
        )
    )
    return view


def university(
    config: Optional[UniversityConfig] = None,
) -> SiteEnv:
    """Build the Figure 1 site and its Section 5 relational view."""
    site = build_university_site(config)
    return _env(site, university_view(site.scheme))


# --------------------------------------------------------------------- #
# the bibliography view (Introduction example)
# --------------------------------------------------------------------- #


def bibliography_view(scheme: WebScheme) -> ExternalView:
    """A publication-centric view with two complete default navigations:
    via conferences (Introduction's path 1) and via authors (path 4)."""
    via_conferences = (
        EntryPointScan("BibHomePage")
        .follow("BibHomePage.ToConfList")
        .unnest("ConfListPage.ConfList")
        .follow("ConfListPage.ConfList.ToConf")
        .unnest("ConfPage.EditionList")
        .follow("ConfPage.EditionList.ToEdition")
        .unnest("EditionPage.PaperList")
        .unnest("EditionPage.PaperList.AuthorList")
    )
    via_authors = (
        EntryPointScan("BibHomePage")
        .follow("BibHomePage.ToAuthorList")
        .unnest("AuthorListPage.AuthorList")
        .follow("AuthorListPage.AuthorList.ToAuthor")
        .unnest("AuthorPage.PubList")
    )
    editions = (
        EntryPointScan("BibHomePage")
        .follow("BibHomePage.ToConfList")
        .unnest("ConfListPage.ConfList")
        .follow("ConfListPage.ConfList.ToConf")
        .unnest("ConfPage.EditionList")
    )

    view = ExternalView(scheme)
    view.add(
        ExternalRelation(
            name="PaperAuthor",
            attrs=("ConfName", "Year", "Title", "AName"),
            navigations=(
                DefaultNavigation.of(
                    via_conferences,
                    {
                        "ConfName": "EditionPage.ConfName",
                        "Year": "EditionPage.Year",
                        "Title": "EditionPage.PaperList.Title",
                        "AName": "EditionPage.PaperList.AuthorList.AName",
                    },
                ),
                DefaultNavigation.of(
                    via_authors,
                    {
                        "ConfName": "AuthorPage.PubList.ConfName",
                        "Year": "AuthorPage.PubList.Year",
                        "Title": "AuthorPage.PubList.Title",
                        "AName": "AuthorPage.AName",
                    },
                ),
            ),
        )
    )
    view.add(
        ExternalRelation(
            name="Edition",
            attrs=("ConfName", "Year", "Editors"),
            navigations=(
                DefaultNavigation.of(
                    editions,
                    {
                        "ConfName": "ConfPage.ConfName",
                        "Year": "ConfPage.EditionList.Year",
                        "Editors": "ConfPage.EditionList.Editors",
                    },
                ),
            ),
        )
    )
    return view


def bibliography(
    config: Optional[BibliographyConfig] = None,
) -> SiteEnv:
    """Build the Introduction's bibliography site and its view."""
    site = build_bibliography_site(config)
    return _env(site, bibliography_view(site.scheme))


# --------------------------------------------------------------------- #
# the movie view (optional-link showcase)
# --------------------------------------------------------------------- #


def movie_view(scheme: WebScheme) -> ExternalView:
    """Three external relations over the movie site.

    ``MovieDirector`` is defined through the director-side navigation only:
    the movie-side *link* navigation would silently drop independent movies
    (optional ``ToDirector``), so it does not materialize the full extent.
    """
    movies_nav = (
        EntryPointScan("MovieListPage")
        .unnest("MovieListPage.Movies")
        .follow("MovieListPage.Movies.ToMovie")
    )
    directors_nav = (
        EntryPointScan("DirectorListPage")
        .unnest("DirectorListPage.Directors")
        .follow("DirectorListPage.Directors.ToDirector")
    )
    view = ExternalView(scheme)
    view.add(
        ExternalRelation(
            "Movie",
            ("Title", "Year", "Genre"),
            (
                DefaultNavigation.of(
                    movies_nav,
                    {
                        "Title": "MoviePage.Title",
                        "Year": "MoviePage.Year",
                        "Genre": "MoviePage.Genre",
                    },
                ),
            ),
        )
    )
    view.add(
        ExternalRelation(
            "Director",
            ("DName",),
            (
                DefaultNavigation.of(
                    directors_nav, {"DName": "DirectorPage.DName"}
                ),
            ),
        )
    )
    view.add(
        ExternalRelation(
            "MovieDirector",
            ("Title", "DName"),
            (
                DefaultNavigation.of(
                    directors_nav.unnest("DirectorPage.Filmography"),
                    {
                        "Title": "DirectorPage.Filmography.Title",
                        "DName": "DirectorPage.DName",
                    },
                ),
            ),
        )
    )
    return view


def movies(config: Optional[MovieConfig] = None) -> SiteEnv:
    """Build the movie site (optional links) and its view."""
    site = build_movie_site(config)
    return _env(site, movie_view(site.scheme))


# --------------------------------------------------------------------- #
# fuzzed sites (seeded pseudo-random schemes; repro.sitegen.fuzz)
# --------------------------------------------------------------------- #


def fuzzed(config: Union[FuzzConfig, int, None] = None) -> SiteEnv:
    """Build a seeded pseudo-random site (see :mod:`repro.sitegen.fuzz`)
    and its external view.  An ``int`` is shorthand for
    ``FuzzConfig(seed=...)``."""
    if isinstance(config, int):
        config = FuzzConfig(seed=config)
    site = build_fuzzed_site(config)
    return _env(site, fuzzed_view(site))
