"""Deterministic simulated clock and timeline.

The paper's materialized-view maintenance (Section 8) compares a locally
stored ``AccessDate`` against the ``Last-Modified`` date returned by a light
HTTP connection.  Real wall-clock time would make tests flaky, so the whole
library shares a logical clock: an integer tick counter that only advances
when :meth:`SimClock.tick` (or :meth:`SimClock.advance`) is called.

Timestamps are plain integers; larger means later.  The clock starts at 1 so
that 0 can serve as "never" / "unknown".

:class:`Timeline` is the second half of deterministic time: a greedy
``k``-lane scheduler over simulated durations, used by the batched fetch
path to compute how long a set of overlapping round trips takes on ``k``
parallel connections.  Scheduling is by submission order (each task lands on
the lane that frees up earliest), so the makespan is a pure function of the
duration sequence — no wall-clock, no thread-timing nondeterminism.
"""

from __future__ import annotations

__all__ = ["SimClock", "Timeline", "NEVER"]

#: Timestamp value meaning "no date recorded"; earlier than any real tick.
NEVER = 0


class SimClock:
    """A monotonically increasing logical clock.

    >>> clock = SimClock()
    >>> clock.now()
    1
    >>> clock.tick()
    2
    >>> clock.advance(10)
    12
    """

    def __init__(self, start: int = 1):
        if start < 1:
            raise ValueError("clock must start at 1 or later")
        self._now = start

    def now(self) -> int:
        """Return the current logical time without advancing it."""
        return self._now

    def tick(self) -> int:
        """Advance the clock by one tick and return the new time."""
        self._now += 1
        return self._now

    def advance(self, ticks: int) -> int:
        """Advance the clock by ``ticks`` (must be non-negative)."""
        if ticks < 0:
            raise ValueError("cannot move the clock backwards")
        self._now += ticks
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now={self._now})"


class Timeline:
    """Greedy scheduler of simulated durations over ``lanes`` parallel lanes.

    Each :meth:`add` assigns one task to the lane that becomes free
    earliest (ties broken by lane index) and returns that task's completion
    time; :attr:`makespan` is the simulated wall time for everything added
    so far.  With one lane the makespan is the plain running sum, in
    exactly the order the durations were added — the serial model.

    >>> tl = Timeline(lanes=2)
    >>> tl.add(1.0), tl.add(1.0), tl.add(1.0)
    (1.0, 1.0, 2.0)
    >>> tl.makespan
    2.0
    """

    def __init__(self, lanes: int = 1):
        if lanes < 1:
            raise ValueError("a timeline needs at least one lane")
        self._lanes = [0.0] * lanes
        #: per-task ``(lane, start, end)`` intervals in submission order —
        #: the schedule itself, consumed by the Chrome-trace exporter
        #: (:mod:`repro.obs.export`) and by span instrumentation
        self.intervals: list[tuple[int, float, float]] = []

    @property
    def lanes(self) -> int:
        return len(self._lanes)

    def add(self, duration: float) -> float:
        """Schedule one task; returns its completion time."""
        if duration < 0:
            raise ValueError("durations must be non-negative")
        index = min(range(len(self._lanes)), key=self._lanes.__getitem__)
        start = self._lanes[index]
        self._lanes[index] += duration
        self.intervals.append((index, start, self._lanes[index]))
        return self._lanes[index]

    @property
    def makespan(self) -> float:
        """Simulated wall time consumed by all tasks added so far."""
        return max(self._lanes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Timeline(lanes={len(self._lanes)}, makespan={self.makespan})"
