"""Deterministic simulated clock and timeline.

The paper's materialized-view maintenance (Section 8) compares a locally
stored ``AccessDate`` against the ``Last-Modified`` date returned by a light
HTTP connection.  Real wall-clock time would make tests flaky, so the whole
library shares a logical clock: an integer tick counter that only advances
when :meth:`SimClock.tick` (or :meth:`SimClock.advance`) is called.

Timestamps are plain integers; larger means later.  The clock starts at 1 so
that 0 can serve as "never" / "unknown".

:class:`Timeline` is the second half of deterministic time: a greedy
``k``-lane scheduler over simulated durations, used by the batched fetch
path to compute how long a set of overlapping round trips takes on ``k``
parallel connections.  Scheduling is by submission order (each task lands on
the lane that frees up earliest), so the makespan is a pure function of the
duration sequence — no wall-clock, no thread-timing nondeterminism.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

__all__ = ["SimClock", "Timeline", "BatchSchedule", "NEVER"]

#: Timestamp value meaning "no date recorded"; earlier than any real tick.
NEVER = 0


class SimClock:
    """A monotonically increasing logical clock.

    >>> clock = SimClock()
    >>> clock.now()
    1
    >>> clock.tick()
    2
    >>> clock.advance(10)
    12
    """

    def __init__(self, start: int = 1):
        if start < 1:
            raise ValueError("clock must start at 1 or later")
        self._now = start

    def now(self) -> int:
        """Return the current logical time without advancing it."""
        return self._now

    def tick(self) -> int:
        """Advance the clock by one tick and return the new time."""
        self._now += 1
        return self._now

    def advance(self, ticks: int) -> int:
        """Advance the clock by ``ticks`` (must be non-negative)."""
        if ticks < 0:
            raise ValueError("cannot move the clock backwards")
        self._now += ticks
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now={self._now})"


class Timeline:
    """Greedy scheduler of simulated durations over ``lanes`` parallel lanes.

    Each :meth:`add` places one task at the earliest feasible instant on
    any lane (ties broken by lane index) and returns that task's
    completion time; :attr:`makespan` is the simulated wall time for
    everything added so far.  With one lane and ``ready=0`` the makespan
    is the plain running sum, in exactly the order the durations were
    added — the serial model.

    >>> tl = Timeline(lanes=2)
    >>> tl.add(1.0), tl.add(1.0), tl.add(1.0)
    (1.0, 1.0, 2.0)
    >>> tl.makespan
    2.0
    """

    def __init__(self, lanes: int = 1):
        if lanes < 1:
            raise ValueError("a timeline needs at least one lane")
        self._lanes = [0.0] * lanes
        #: per-lane busy intervals, kept sorted by start time — the gap
        #: structure :meth:`add` backfills
        self._busy: list[list[tuple[float, float]]] = [
            [] for _ in range(lanes)
        ]
        #: per-task ``(lane, start, end)`` intervals in submission order —
        #: the schedule itself, consumed by the Chrome-trace exporter
        #: (:mod:`repro.obs.export`) and by span instrumentation
        self.intervals: list[tuple[int, float, float]] = []

    @property
    def lanes(self) -> int:
        return len(self._lanes)

    def _feasible_start(self, lane: int, ready: float, duration: float) -> float:
        """Earliest instant >= ``ready`` at which ``duration`` fits on
        ``lane`` — inside an idle gap between already-placed tasks, or
        after the last one."""
        candidate = ready
        for start, end in self._busy[lane]:
            if candidate + duration <= start:
                return candidate
            candidate = max(candidate, end)
        return candidate

    def add(self, duration: float, ready: float = 0.0) -> float:
        """Schedule one task; returns its completion time.

        ``ready`` is the earliest simulated instant the task may start
        (its inputs exist from then on): the task is placed at the
        earliest feasible instant ``>= ready`` on whichever lane allows
        it — including inside an idle *gap* a previously placed
        later-ready task left behind, exactly as a real connection pool
        starts a ready request on any idle connection regardless of the
        order requests were queued.  Without the backfill, submission
        order would leak into the schedule and a pipelined plan could
        (pathologically) exceed its staged makespan.  With ``ready=0.0``
        throughout, tasks pack contiguously, no gaps ever form, and the
        schedule is the classic greedy earliest-free-lane one — the
        staged per-batch model.  Pipelined execution uses ``ready`` to
        model a fetch that must wait for the page carrying its URL to
        finish downloading.
        """
        if duration < 0:
            raise ValueError("durations must be non-negative")
        if ready < 0:
            raise ValueError("ready times must be non-negative")
        if duration == 0:
            # zero-cost tasks occupy no lane time; they complete at the
            # serial running point (earliest lane horizon), never
            # backfilled — every gap boundary would "fit" them
            index = min(
                range(len(self._lanes)),
                key=lambda i: max(self._lanes[i], ready),
            )
            best = max(self._lanes[index], ready)
        else:
            index = 0
            best = self._feasible_start(0, ready, duration)
            for lane in range(1, len(self._lanes)):
                start = self._feasible_start(lane, ready, duration)
                if start < best:
                    index, best = lane, start
        end = best + duration
        bisect.insort(self._busy[index], (best, end))
        self._lanes[index] = max(self._lanes[index], end)
        self.intervals.append((index, best, end))
        return end

    @property
    def makespan(self) -> float:
        """Simulated wall time consumed by all tasks added so far."""
        return max(self._lanes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Timeline(lanes={len(self._lanes)}, makespan={self.makespan})"


@dataclass
class BatchSchedule:
    """Placement instructions for one fetch batch on a *shared* timeline.

    Staged execution gives every batch its own :class:`Timeline`, so
    batches are barriers: the simulated clock advances by each batch's
    makespan in turn.  Pipelined execution instead threads one
    query-scoped timeline through every batch via this carrier:

    * ``timeline`` — the shared ``k``-lane schedule all batches land on;
    * ``ready`` — timeline-relative instant the batch's inputs exist (the
      completion time of the upstream chunk whose tuples produced the
      URLs); no task of the batch may start earlier — this is what makes
      prefetch non-speculative in *time* as well as in page set;
    * ``base`` — absolute simulated seconds at the timeline's origin, so
      trace events can report absolute lane intervals;
    * ``completed`` — out-parameter set by the consumer: the completion
      time (timeline-relative) of the batch, i.e. when the *last* of its
      fetches lands; downstream chunks use it as their ``ready``.

    The carrier lives here (not in the engine) because the web client
    consumes it and must not import engine modules.
    """

    timeline: Timeline
    ready: float = 0.0
    base: float = 0.0
    completed: float = 0.0
