"""Deterministic simulated clock.

The paper's materialized-view maintenance (Section 8) compares a locally
stored ``AccessDate`` against the ``Last-Modified`` date returned by a light
HTTP connection.  Real wall-clock time would make tests flaky, so the whole
library shares a logical clock: an integer tick counter that only advances
when :meth:`SimClock.tick` (or :meth:`SimClock.advance`) is called.

Timestamps are plain integers; larger means later.  The clock starts at 1 so
that 0 can serve as "never" / "unknown".
"""

from __future__ import annotations

__all__ = ["SimClock", "NEVER"]

#: Timestamp value meaning "no date recorded"; earlier than any real tick.
NEVER = 0


class SimClock:
    """A monotonically increasing logical clock.

    >>> clock = SimClock()
    >>> clock.now()
    1
    >>> clock.tick()
    2
    >>> clock.advance(10)
    12
    """

    def __init__(self, start: int = 1):
        if start < 1:
            raise ValueError("clock must start at 1 or later")
        self._now = start

    def now(self) -> int:
        """Return the current logical time without advancing it."""
        return self._now

    def tick(self) -> int:
        """Advance the clock by one tick and return the new time."""
        self._now += 1
        return self._now

    def advance(self, ticks: int) -> int:
        """Advance the clock by ``ticks`` (must be non-negative)."""
        if ticks < 0:
            raise ValueError("cannot move the clock backwards")
        self._now += ticks
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now={self._now})"
