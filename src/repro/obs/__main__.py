"""Entry point for ``python -m repro.obs``."""

import sys

from repro.obs.cli import main

sys.exit(main())
