"""Process-wide metrics: labelled counters and histograms.

A deliberately small, dependency-free metrics facility in the Prometheus
idiom: named instruments with label sets, a process-wide default
:data:`METRICS` registry, JSON-able snapshots, and a text exposition
renderer.  The web layer records fetch/cache behaviour here (labelled by
page-scheme and cache mode); benchmarks embed a snapshot in their
``BENCH_*.json`` result files so the perf trajectory carries its
instrument readings along.

Metrics are *observational only*: nothing in the query path reads them, so
they can stay always-on without violating the tracing layer's
non-interference contract (results, page counts, and access logs are
independent of registry state).
"""

from __future__ import annotations

import math
import threading
from contextlib import contextmanager
from typing import Iterator, Optional, Sequence

from repro.errors import MetricCardinalityError

__all__ = [
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "METRICS",
    "DEFAULT_BUCKETS",
    "DEFAULT_MAX_SERIES",
    "DEFAULT_MAX_SAMPLES",
]

#: Histogram bucket upper bounds, in simulated seconds (the only quantity
#: histogrammed out of the box); the last implicit bucket is +Inf.
DEFAULT_BUCKETS = (0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0)

#: Label-cardinality bound per instrument: creating a series beyond it
#: raises :class:`~repro.errors.MetricCardinalityError` (a URL or request
#: id leaking into a label must fail loudly, not grow without bound).
DEFAULT_MAX_SERIES = 512

#: Raw observations each histogram series retains for exact percentiles.
#: Past the bound the sample set is decimated deterministically (keep
#: every other, double the recording stride), so percentiles degrade to an
#: evenly spaced subsample instead of unbounded memory.
DEFAULT_MAX_SAMPLES = 2048


def _label_key(labels: dict) -> tuple:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing value per label set."""

    def __init__(
        self,
        name: str,
        help: str = "",
        lock: Optional[threading.Lock] = None,
        max_series: int = DEFAULT_MAX_SERIES,
    ):
        self.name = name
        self.help = help
        self.max_series = max_series
        self._series: dict[tuple, float] = {}
        self._lock = lock or threading.Lock()

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = _label_key(labels)
        with self._lock:
            if key not in self._series and len(self._series) >= self.max_series:
                raise MetricCardinalityError(self.name, self.max_series)
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        """Current value for one label set (0 when never incremented)."""
        return self._series.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum over every label set."""
        return sum(self._series.values())

    def snapshot(self) -> dict:
        return {
            "type": "counter",
            "help": self.help,
            "series": [
                {"labels": dict(key), "value": value}
                for key, value in sorted(self._series.items())
            ],
        }


class Histogram:
    """Cumulative-bucket histogram per label set (count/sum/min/max kept).

    Beyond the Prometheus-style buckets, every series retains its raw
    observations (bounded by ``max_samples``) so :meth:`percentile`
    reports *exact* p50/p95/p99 instead of bucket-boundary interpolation.
    When a series outgrows the bound its samples are decimated
    deterministically — keep every other retained sample, then record only
    every ``stride``-th observation from there on — so long-running series
    degrade to an evenly spaced subsample, never to unbounded memory (the
    per-series ``stride`` in snapshots is 1 iff percentiles are exact)."""

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        lock: Optional[threading.Lock] = None,
        max_series: int = DEFAULT_MAX_SERIES,
        max_samples: int = DEFAULT_MAX_SAMPLES,
    ):
        if list(buckets) != sorted(buckets) or not buckets:
            raise ValueError("buckets must be a non-empty ascending sequence")
        if max_samples < 2:
            raise ValueError("max_samples must be >= 2")
        self.name = name
        self.help = help
        self.buckets = tuple(float(b) for b in buckets)
        self.max_series = max_series
        self.max_samples = max_samples
        self._series: dict[tuple, dict] = {}
        self._lock = lock or threading.Lock()

    def observe(self, value: float, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                if len(self._series) >= self.max_series:
                    raise MetricCardinalityError(self.name, self.max_series)
                series = {
                    "count": 0,
                    "sum": 0.0,
                    "min": value,
                    "max": value,
                    "bucket_counts": [0] * (len(self.buckets) + 1),
                    "samples": [],
                    "stride": 1,
                }
                self._series[key] = series
            if series["count"] % series["stride"] == 0:
                series["samples"].append(value)
                if len(series["samples"]) > self.max_samples:
                    series["samples"] = series["samples"][::2]
                    series["stride"] *= 2
            series["count"] += 1
            series["sum"] += value
            series["min"] = min(series["min"], value)
            series["max"] = max(series["max"], value)
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    series["bucket_counts"][i] += 1
                    break
            else:
                series["bucket_counts"][-1] += 1

    def count(self, **labels) -> int:
        series = self._series.get(_label_key(labels))
        return series["count"] if series else 0

    def sum(self, **labels) -> float:
        series = self._series.get(_label_key(labels))
        return series["sum"] if series else 0.0

    def percentile(self, fraction: float, **labels) -> Optional[float]:
        """The ``fraction``-quantile of one series' retained samples.

        Exact (nearest-rank over every observation) while the series has
        seen at most ``max_samples`` values — the stride is still 1;
        afterwards it is the same statistic over the evenly spaced
        subsample.  ``None`` for a series never observed."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        with self._lock:
            series = self._series.get(_label_key(labels))
            if series is None or not series["samples"]:
                return None
            ordered = sorted(series["samples"])
        rank = max(0, math.ceil(fraction * len(ordered)) - 1)
        return ordered[min(rank, len(ordered) - 1)]

    def snapshot(self) -> dict:
        return {
            "type": "histogram",
            "help": self.help,
            "buckets": list(self.buckets),
            "series": [
                {
                    "labels": dict(key),
                    **series,
                    # copy the mutable parts: snapshots must stay stable
                    # while the live series keeps observing (the SLO
                    # window store retains old snapshots)
                    "bucket_counts": list(series["bucket_counts"]),
                    "samples": list(series["samples"]),
                }
                for key, series in sorted(self._series.items())
            ],
        }


class MetricsRegistry:
    """Named instruments, created on first use and shared thereafter."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, object] = {}

    def counter(
        self,
        name: str,
        help: str = "",
        max_series: int = DEFAULT_MAX_SERIES,
    ) -> Counter:
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = Counter(
                    name, help, lock=self._lock, max_series=max_series
                )
                self._instruments[name] = instrument
            elif not isinstance(instrument, Counter):
                raise TypeError(f"{name!r} is already a non-counter metric")
            return instrument

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        max_series: int = DEFAULT_MAX_SERIES,
        max_samples: int = DEFAULT_MAX_SAMPLES,
    ) -> Histogram:
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = Histogram(
                    name,
                    help,
                    buckets,
                    lock=self._lock,
                    max_series=max_series,
                    max_samples=max_samples,
                )
                self._instruments[name] = instrument
            elif not isinstance(instrument, Histogram):
                raise TypeError(f"{name!r} is already a non-histogram metric")
            return instrument

    def names(self) -> list[str]:
        return sorted(self._instruments)

    @contextmanager
    def isolated(self) -> Iterator["MetricsRegistry"]:
        """Swap in an empty instrument table for the ``with`` body and
        restore the previous one afterwards — the test-isolation fixture
        (``tests/conftest.py``) wraps every metrics-sensitive test in
        this so parallel-ordered tests cannot bleed counters into each
        other's assertions.  The registry object (and the lock shared
        with every instrument it handed out) stays the same."""
        with self._lock:
            saved = self._instruments
            self._instruments = {}
        try:
            yield self
        finally:
            with self._lock:
                self._instruments = saved

    def snapshot(self) -> dict:
        """JSON-able dump of every instrument and series."""
        return {
            name: instrument.snapshot()
            for name, instrument in sorted(self._instruments.items())
        }

    def reset(self) -> None:
        """Drop every instrument (tests; benchmarks between experiments)."""
        with self._lock:
            self._instruments.clear()

    def render(self) -> str:
        """Prometheus-style text exposition (for humans and scrapers)."""
        lines: list[str] = []
        for name, data in sorted(self.snapshot().items()):
            if data["help"]:
                lines.append(f"# HELP {name} {data['help']}")
            lines.append(f"# TYPE {name} {data['type']}")
            for series in data["series"]:
                labels = ",".join(
                    f'{k}="{v}"' for k, v in sorted(series["labels"].items())
                )
                labelled = f"{name}{{{labels}}}" if labels else name
                if data["type"] == "counter":
                    lines.append(f"{labelled} {series['value']:g}")
                else:
                    quantiles = ""
                    samples = sorted(series.get("samples", ()))
                    if samples:
                        def q(fraction: float) -> float:
                            rank = max(0, math.ceil(fraction * len(samples)) - 1)
                            return samples[min(rank, len(samples) - 1)]
                        quantiles = (
                            f" p50={q(0.50):g} p95={q(0.95):g} p99={q(0.99):g}"
                        )
                    lines.append(
                        f"{labelled} count={series['count']} "
                        f"sum={series['sum']:g} min={series['min']:g} "
                        f"max={series['max']:g}" + quantiles
                    )
        return "\n".join(lines)


#: The process-wide default registry (the web layer records here).
METRICS = MetricsRegistry()
