"""Process-wide metrics: labelled counters and histograms.

A deliberately small, dependency-free metrics facility in the Prometheus
idiom: named instruments with label sets, a process-wide default
:data:`METRICS` registry, JSON-able snapshots, and a text exposition
renderer.  The web layer records fetch/cache behaviour here (labelled by
page-scheme and cache mode); benchmarks embed a snapshot in their
``BENCH_*.json`` result files so the perf trajectory carries its
instrument readings along.

Metrics are *observational only*: nothing in the query path reads them, so
they can stay always-on without violating the tracing layer's
non-interference contract (results, page counts, and access logs are
independent of registry state).
"""

from __future__ import annotations

import threading
from typing import Optional, Sequence

__all__ = [
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "METRICS",
    "DEFAULT_BUCKETS",
]

#: Histogram bucket upper bounds, in simulated seconds (the only quantity
#: histogrammed out of the box); the last implicit bucket is +Inf.
DEFAULT_BUCKETS = (0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0)


def _label_key(labels: dict) -> tuple:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing value per label set."""

    def __init__(
        self,
        name: str,
        help: str = "",
        lock: Optional[threading.Lock] = None,
    ):
        self.name = name
        self.help = help
        self._series: dict[tuple, float] = {}
        self._lock = lock or threading.Lock()

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        """Current value for one label set (0 when never incremented)."""
        return self._series.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum over every label set."""
        return sum(self._series.values())

    def snapshot(self) -> dict:
        return {
            "type": "counter",
            "help": self.help,
            "series": [
                {"labels": dict(key), "value": value}
                for key, value in sorted(self._series.items())
            ],
        }


class Histogram:
    """Cumulative-bucket histogram per label set (count/sum/min/max kept)."""

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        lock: Optional[threading.Lock] = None,
    ):
        if list(buckets) != sorted(buckets) or not buckets:
            raise ValueError("buckets must be a non-empty ascending sequence")
        self.name = name
        self.help = help
        self.buckets = tuple(float(b) for b in buckets)
        self._series: dict[tuple, dict] = {}
        self._lock = lock or threading.Lock()

    def observe(self, value: float, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = {
                    "count": 0,
                    "sum": 0.0,
                    "min": value,
                    "max": value,
                    "bucket_counts": [0] * (len(self.buckets) + 1),
                }
                self._series[key] = series
            series["count"] += 1
            series["sum"] += value
            series["min"] = min(series["min"], value)
            series["max"] = max(series["max"], value)
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    series["bucket_counts"][i] += 1
                    break
            else:
                series["bucket_counts"][-1] += 1

    def count(self, **labels) -> int:
        series = self._series.get(_label_key(labels))
        return series["count"] if series else 0

    def sum(self, **labels) -> float:
        series = self._series.get(_label_key(labels))
        return series["sum"] if series else 0.0

    def snapshot(self) -> dict:
        return {
            "type": "histogram",
            "help": self.help,
            "buckets": list(self.buckets),
            "series": [
                {"labels": dict(key), **series}
                for key, series in sorted(self._series.items())
            ],
        }


class MetricsRegistry:
    """Named instruments, created on first use and shared thereafter."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, object] = {}

    def counter(self, name: str, help: str = "") -> Counter:
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = Counter(name, help, lock=self._lock)
                self._instruments[name] = instrument
            elif not isinstance(instrument, Counter):
                raise TypeError(f"{name!r} is already a non-counter metric")
            return instrument

    def histogram(
        self, name: str, help: str = "", buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = Histogram(name, help, buckets, lock=self._lock)
                self._instruments[name] = instrument
            elif not isinstance(instrument, Histogram):
                raise TypeError(f"{name!r} is already a non-histogram metric")
            return instrument

    def names(self) -> list[str]:
        return sorted(self._instruments)

    def snapshot(self) -> dict:
        """JSON-able dump of every instrument and series."""
        return {
            name: instrument.snapshot()
            for name, instrument in sorted(self._instruments.items())
        }

    def reset(self) -> None:
        """Drop every instrument (tests; benchmarks between experiments)."""
        with self._lock:
            self._instruments.clear()

    def render(self) -> str:
        """Prometheus-style text exposition (for humans and scrapers)."""
        lines: list[str] = []
        for name, data in sorted(self.snapshot().items()):
            if data["help"]:
                lines.append(f"# HELP {name} {data['help']}")
            lines.append(f"# TYPE {name} {data['type']}")
            for series in data["series"]:
                labels = ",".join(
                    f'{k}="{v}"' for k, v in sorted(series["labels"].items())
                )
                labelled = f"{name}{{{labels}}}" if labels else name
                if data["type"] == "counter":
                    lines.append(f"{labelled} {series['value']:g}")
                else:
                    lines.append(
                        f"{labelled} count={series['count']} "
                        f"sum={series['sum']:g} min={series['min']:g} "
                        f"max={series['max']:g}"
                    )
        return "\n".join(lines)


#: The process-wide default registry (the web layer records here).
METRICS = MetricsRegistry()
