"""Rewrite lineage: which of rules 1–9 produced which candidate plan.

Algorithm 1 (paper, Section 6.3) grows the plan space by expanding external
relations (rule 1) and saturating the result under rewrite rules 2–9.  The
planner can record that growth in a :class:`RewriteTrace`: every step notes
the rule that fired, the plan it fired on, the subexpression it replaced,
the candidate it produced, and the :class:`~repro.optimizer.cost.CostModel`
estimate of the new candidate — so a :class:`~repro.optimizer.planner.
PlannerResult` can answer *why this plan*: the lineage chain from the
chosen plan back to its rule-1 expansion, and in particular whether
pointer-join (rule 8) or pointer-chase (rule 9) produced it.

Plans are identified by their canonical rendering
(:func:`repro.algebra.printer.render_expr`) — the same key the rewriter
uses for deduplication, so the first recorded producer of a key matches
the plan the closure actually kept.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

__all__ = ["RewriteStep", "RewriteTrace", "STRATEGY_RULES"]

#: The two access-path strategies of Section 7 (Examples 7.1/7.2): the
#: rules whose firing decides pointer-join vs pointer-chase.
STRATEGY_RULES = {
    "PointerJoin": "pointer-join (rule 8)",
    "PointerChase": "pointer-chase (rule 9)",
}


@dataclass(frozen=True)
class RewriteStep:
    """One application of a rewrite rule (or improvement pass)."""

    phase: str                 #: planner step, e.g. "join rules (8/9)"
    rule: str                  #: rule class/function name, e.g. "PointerJoin"
    result: str                #: canonical rendering of the produced plan
    parent: Optional[str] = None   #: rendering of the plan rewritten (None: a root)
    subexpr: str = ""          #: the subexpression the rule replaced
    cost: Optional[float] = None   #: C(E) estimate of the produced plan

    def describe(self) -> str:
        cost = f"  [C≈{self.cost:.1f} pages]" if self.cost is not None else ""
        at = f" at {self.subexpr}" if self.subexpr else ""
        return f"{self.rule} ({self.phase}){at}{cost}"


class RewriteTrace:
    """Candidate lineage for one planner run.

    ``cost_fn`` (optional) estimates C(E) for each produced plan; failures
    (ill-typed intermediates) record ``cost=None`` — exactly the plans the
    planner's validation step would discard anyway."""

    def __init__(self, cost_fn: Optional[Callable] = None):
        self.steps: list[RewriteStep] = []
        self._producer: dict[str, RewriteStep] = {}
        self._cost_fn = cost_fn

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #

    def record(
        self,
        phase: str,
        rule: str,
        result: str,
        parent: Optional[str] = None,
        subexpr: str = "",
        expr=None,
    ) -> None:
        """Record one rule application producing plan key ``result``."""
        cost: Optional[float] = None
        if expr is not None and self._cost_fn is not None:
            try:
                cost = float(self._cost_fn(expr))
            except Exception:
                cost = None
        step = RewriteStep(
            phase=phase,
            rule=rule,
            result=result,
            parent=parent,
            subexpr=subexpr,
            cost=cost,
        )
        self.steps.append(step)
        # first producer wins: it is the application whose output the
        # rewriter's dedup actually kept
        self._producer.setdefault(result, step)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self.steps)

    def producer(self, plan_key: str) -> Optional[RewriteStep]:
        """The step that first produced ``plan_key`` (None for unknowns)."""
        return self._producer.get(plan_key)

    def lineage(self, plan_key: str) -> list[RewriteStep]:
        """Chain of steps from the rule-1 root down to ``plan_key``."""
        chain: list[RewriteStep] = []
        seen: set[str] = set()
        key: Optional[str] = plan_key
        while key is not None and key not in seen:
            seen.add(key)
            step = self._producer.get(key)
            if step is None:
                break
            chain.append(step)
            key = step.parent
        chain.reverse()
        return chain

    def rules_fired(self, plan_key: str) -> list[str]:
        """Rule names along the lineage of ``plan_key``, root first."""
        return [step.rule for step in self.lineage(plan_key)]

    def strategy(self, plan_key: str) -> Optional[str]:
        """The access-path strategy that produced ``plan_key``:
        ``"pointer-join (rule 8)"`` or ``"pointer-chase (rule 9)"`` when
        rule 8/9 fired along its lineage (the *last* such firing decides),
        else None (the plan came straight from expansion/merging)."""
        decisive = None
        for step in self.lineage(plan_key):
            if step.rule in STRATEGY_RULES:
                decisive = STRATEGY_RULES[step.rule]
        return decisive

    def describe(self, plan_key: str) -> str:
        """Multi-line lineage report for one plan ("why this plan")."""
        chain = self.lineage(plan_key)
        if not chain:
            return "(no recorded lineage — plan predates this trace)"
        lines = []
        for i, step in enumerate(chain):
            lines.append(("  " * i) + ("└ " if i else "") + step.describe())
        strategy = self.strategy(plan_key)
        lines.append(
            f"strategy: {strategy}"
            if strategy
            else "strategy: direct navigation (no rule 8/9 firing)"
        )
        return "\n".join(lines)

    def summary(self) -> dict[str, int]:
        """Firing counts per rule across the whole run."""
        counts: dict[str, int] = {}
        for step in self.steps:
            counts[step.rule] = counts.get(step.rule, 0) + 1
        return dict(sorted(counts.items()))

    def __repr__(self) -> str:
        return (
            f"RewriteTrace({len(self.steps)} steps, "
            f"{len(self._producer)} plans)"
        )
