"""Chrome-trace-event export (Perfetto / ``chrome://tracing`` loadable).

Converts a recorded span tree into the Trace Event JSON format: operator
spans become complete events (``ph: "X"``) on one "query operators" track,
and every fetch lands on the lane of the simulated ``k``-lane schedule
that executed it — one thread track per lane under a "fetch lanes"
process, so the batch's parallelism is visible exactly as the
:class:`~repro.clock.Timeline` scheduled it.

Pipelined executions add a third process track, "pipeline stages": one
complete event per chunk per network stage, spanning the simulated
interval from the chunk's inputs becoming ready to its fetches landing.
Overlap between a stage-``n`` event and a stage-``n+1`` event — impossible
under staged execution, where stages are barriers — is the pipelining,
visible directly in Perfetto next to the per-lane fetch intervals (see
``docs/PIPELINE.md``).

Timestamps are simulated seconds converted to integer microseconds; a
lane's events never overlap because the greedy scheduler never overlaps
tasks on one lane (durations are ``round(end)-round(start)`` so adjacency
survives rounding).
"""

from __future__ import annotations

import json
from typing import Union

from repro.obs.trace import RecordingTracer, Span

__all__ = ["chrome_trace_events", "write_chrome_trace"]

#: Synthetic pids grouping the kinds of tracks.
OPERATOR_PID = 1
FETCH_PID = 2
PIPELINE_PID = 3


def _us(seconds: float) -> int:
    return round(seconds * 1_000_000)


def chrome_trace_events(trace: Union[RecordingTracer, Span]) -> list[dict]:
    """Flatten a recorded trace into Chrome trace events.

    Accepts a :class:`RecordingTracer` or a single root :class:`Span`
    (e.g. ``ExecutionResult.trace``).
    """
    roots = trace.roots if isinstance(trace, RecordingTracer) else [trace]
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": OPERATOR_PID,
            "tid": 0,
            "args": {"name": "query operators"},
        },
        {
            "name": "process_name",
            "ph": "M",
            "pid": FETCH_PID,
            "tid": 0,
            "args": {"name": "fetch lanes"},
        },
    ]
    lanes_seen: set[int] = set()
    stage_tids: dict[str, int] = {}
    for root in roots:
        for span in root.walk():
            if span.kind == "pipeline":
                t0 = span.attrs.get("t0")
                t1 = span.attrs.get("t1")
                if t0 is None or t1 is None:
                    continue
                stage = str(span.attrs.get("stage", span.name))
                tid = stage_tids.setdefault(stage, len(stage_tids))
                events.append(
                    {
                        "name": f"chunk {span.attrs.get('chunk', 0)}",
                        "cat": "pipeline",
                        "ph": "X",
                        "pid": PIPELINE_PID,
                        "tid": tid,
                        "ts": _us(t0),
                        "dur": _us(t1) - _us(t0),
                        "args": {
                            k: v
                            for k, v in span.attrs.items()
                            if k != "node_id"
                            and isinstance(v, (int, float, str))
                        },
                    }
                )
                continue
            t0 = span.attrs.get("t0")
            t1 = span.attrs.get("t1")
            if span.kind == "query":
                # the root has no meter delta of its own: cover its
                # children's simulated extent
                extents = [
                    (s.attrs.get("t0"), s.attrs.get("t1"))
                    for s in span.walk()
                    if s.kind == "operator" and s.attrs.get("t0") is not None
                ]
                if extents:
                    t0 = min(e[0] for e in extents)
                    t1 = max(e[1] for e in extents)
            if span.kind in ("query", "operator") and t0 is not None:
                events.append(
                    {
                        "name": span.name,
                        "cat": span.kind,
                        "ph": "X",
                        "pid": OPERATOR_PID,
                        "tid": 1,
                        "ts": _us(t0),
                        "dur": _us(t1) - _us(t0),
                        "args": {
                            k: v
                            for k, v in span.attrs.items()
                            if k not in ("node_id", "plan")
                            and isinstance(v, (int, float, str))
                        },
                    }
                )
            for event in span.events:
                if event.name != "fetch":
                    continue
                start = event.attrs.get("start")
                end = event.attrs.get("end")
                if start is None or end is None:
                    continue
                lane = int(event.attrs.get("lane") or 0)
                lanes_seen.add(lane)
                url = str(event.attrs.get("url", ""))
                events.append(
                    {
                        "name": url.rsplit("/", 1)[-1] or url,
                        "cat": "fetch",
                        "ph": "X",
                        "pid": FETCH_PID,
                        "tid": lane,
                        "ts": _us(start),
                        "dur": _us(end) - _us(start),
                        "args": {
                            k: v
                            for k, v in event.attrs.items()
                            if isinstance(v, (int, float, str, bool))
                        },
                    }
                )
    for lane in sorted(lanes_seen):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": FETCH_PID,
                "tid": lane,
                "args": {"name": f"lane {lane}"},
            }
        )
    if stage_tids:
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": PIPELINE_PID,
                "tid": 0,
                "args": {"name": "pipeline stages"},
            }
        )
        for stage, tid in stage_tids.items():
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": PIPELINE_PID,
                    "tid": tid,
                    "args": {"name": stage},
                }
            )
    return events


def write_chrome_trace(
    path: str, trace: Union[RecordingTracer, Span]
) -> dict:
    """Write ``trace`` as a Chrome trace JSON file; returns the document."""
    document = {
        "traceEvents": chrome_trace_events(trace),
        "displayTimeUnit": "ms",
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1)
    return document
