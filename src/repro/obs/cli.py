"""``python -m repro.obs`` — the observability toolbox.

Default (no subcommand): EXPLAIN / EXPLAIN ANALYZE, unchanged from the
original flat CLI::

    # why did Example 7.1 pick the pointer-join plan?
    python -m repro.obs --site university --query ex71

    # run it, annotate the tree with measured per-operator downloads,
    # and export a Perfetto-loadable timeline of the 4-lane fetch schedule
    python -m repro.obs --site university --query ex71 --analyze \\
        --workers 4 --export-trace trace-ex71.json

    # ad-hoc SQL plus the metric readings the run produced
    python -m repro.obs --site movies \\
        --sql "SELECT Title, Year, Genre FROM Movie" --analyze --metrics \\
        --metrics-json metrics.json

Subcommands::

    # flight recorder: reconstruct a past request from its journal alone
    python -m repro.obs replay req-0003 --journal server-journal.jsonl
    python -m repro.obs replay --journal server-journal.jsonl --list

    # run a small server mix and render the SLO dashboard
    python -m repro.obs dashboard --site movies --html dashboard.html

    # planner calibration: which repro.stats estimates drift worst?
    python -m repro.obs calibrate --out calibration.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.obs.export import write_chrome_trace
from repro.obs.metrics import METRICS
from repro.obs.trace import RecordingTracer
from repro.options import QueryOptions
from repro.web.client import FetchConfig

__all__ = ["main"]

#: Subcommands peeked off the front of argv; anything else (flags, or
#: nothing) falls through to the historical flat EXPLAIN interface, so
#: every pre-existing invocation keeps working verbatim.
_SUBCOMMANDS = ("replay", "dashboard", "calibrate")


def _explain(argv: Sequence[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Explain (and optionally execute + measure) a query: "
        "plan space, rewrite lineage, annotated operator tree, "
        "Chrome-trace export.  Subcommands: replay (flight recorder), "
        "dashboard (SLO snapshot), calibrate (planner q-error report).",
    )
    parser.add_argument(
        "--site",
        default="university",
        help="university | bibliography | movies | fuzz:<seed> "
        "(default: university)",
    )
    parser.add_argument(
        "--query",
        default=None,
        metavar="NAME",
        help="named query from the site's QA suite (e.g. ex71, ex72; "
        "see repro.qa); default: the site's first suite query",
    )
    parser.add_argument(
        "--sql", default=None, help="ad-hoc conjunctive SQL (overrides --query)"
    )
    parser.add_argument(
        "--analyze",
        action="store_true",
        help="EXPLAIN ANALYZE: execute the chosen plan and annotate the "
        "tree with measured per-operator pages / tuples / seconds / "
        "q-error",
    )
    parser.add_argument(
        "--workers", type=int, default=None, metavar="K",
        help="fetch-pool size for --analyze (default: network model)",
    )
    parser.add_argument(
        "--cache", default=None,
        help="cache mode for --analyze (off | per_query | cross_query)",
    )
    parser.add_argument(
        "--export-trace", default=None, metavar="PATH",
        help="write the recorded spans as Chrome trace events "
        "(implies --analyze)",
    )
    parser.add_argument(
        "--journal", default=None, metavar="PATH",
        help="journal the run's event block as JSON lines (implies "
        "--analyze); replayable with `python -m repro.obs replay`",
    )
    parser.add_argument(
        "--metrics", action="store_true",
        help="print the process metrics registry after the run",
    )
    parser.add_argument(
        "--metrics-json", default=None, metavar="PATH",
        help="write the metrics registry snapshot as JSON "
        "(the exact shape of MetricsRegistry.snapshot(), pinned in "
        "tests/test_obs_cli.py)",
    )
    args = parser.parse_args(argv)

    from repro.qa.cli import build_site

    env, queries = build_site(args.site)
    if args.sql is not None:
        sql = args.sql
    elif args.query is not None:
        if args.query not in queries:
            raise SystemExit(
                f"unknown query {args.query!r} for site {args.site!r} "
                f"(choose from {', '.join(queries)})"
            )
        sql = queries[args.query]
    else:
        sql = next(iter(queries.values()))

    analyze = (
        args.analyze
        or args.export_trace is not None
        or args.journal is not None
    )
    journal = None
    if args.journal is not None:
        from repro.obs.journal import Journal

        # The executor allocates the request id; defaults ride along on
        # its begin_request so replay can rebuild the site + query.
        journal = Journal(defaults={"site": args.site, "query": sql})
    tracer = RecordingTracer()
    fetch_config = (
        FetchConfig(max_workers=args.workers)
        if args.workers is not None
        else None
    )
    report = env.explain(
        sql,
        analyze=analyze,
        options=QueryOptions(
            cache=args.cache, fetch=fetch_config, tracer=tracer,
            journal=journal,
        ),
    )
    print(report)
    if args.export_trace is not None:
        document = write_chrome_trace(args.export_trace, tracer)
        print(
            f"\ntrace: {args.export_trace} "
            f"({len(document['traceEvents'])} events; load in "
            f"https://ui.perfetto.dev or chrome://tracing)"
        )
    if journal is not None:
        count = journal.write(args.journal)
        print(f"journal: {args.journal} ({count} events)")
    if args.metrics:
        print("\nmetrics:")
        print(METRICS.render())
    if args.metrics_json is not None:
        with open(args.metrics_json, "w", encoding="utf-8") as handle:
            json.dump(METRICS.snapshot(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"metrics json: {args.metrics_json}")
    return 0


def _replay(argv: Sequence[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs replay",
        description="Flight recorder: reconstruct a past request — its "
        "EXPLAIN ANALYZE tree and Perfetto timeline — from the event "
        "journal alone.",
    )
    parser.add_argument(
        "request_id", nargs="?", default=None,
        help="the request to reconstruct (omit with --list)",
    )
    parser.add_argument(
        "--journal", required=True, metavar="PATH",
        help="JSONL journal written by Journal.write / the server / "
        "bench_server",
    )
    parser.add_argument(
        "--list", action="store_true",
        help="list the journal's request ids and exit",
    )
    parser.add_argument(
        "--export-trace", default=None, metavar="PATH",
        help="write the reconstructed spans as Chrome trace events",
    )
    args = parser.parse_args(argv)

    from repro.obs.journal import Journal, replay

    journal = Journal.load(args.journal)
    problems = journal.validate()
    if problems:
        for problem in problems:
            print(f"journal problem: {problem}", file=sys.stderr)
        return 1
    if args.list or args.request_id is None:
        for request_id in journal.request_ids():
            attrs = journal.request_attrs(request_id)
            label = attrs.get("query") or attrs.get("cell") or ""
            print(f"{request_id}  {attrs.get('site', '?')}  {label}")
        return 0
    result = replay(journal, args.request_id)
    attrs = result.request
    print(f"request {result.request_id}  "
          f"site={attrs.get('site', '?')} tenant={attrs.get('tenant', '-')}")
    if attrs.get("query"):
        print(f"query: {attrs['query']}")
    print(f"execution: {result.execution}")
    print()
    print(result.explain)
    print()
    pages = result.result.get("pages", "?")
    print(f"result: {result.result.get('rows', '?')} rows, "
          f"digest {result.result.get('digest', '?')}, {pages} pages "
          f"(per-operator sum {result.page_sum}), "
          f"{result.result.get('seconds', 0):.2f}s simulated")
    if args.export_trace is not None:
        with open(args.export_trace, "w", encoding="utf-8") as handle:
            json.dump(
                {"traceEvents": result.trace_events,
                 "displayTimeUnit": "ms"},
                handle,
            )
        print(f"trace: {args.export_trace} "
              f"({len(result.trace_events)} events)")
    return 0


def _dashboard(argv: Sequence[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs dashboard",
        description="Run a small multi-tenant mix through the query "
        "server and render the SLO / burn-rate dashboard.",
    )
    parser.add_argument(
        "--site", default="movies",
        help="university | bibliography | movies | fuzz:<seed> "
        "(default: movies)",
    )
    parser.add_argument(
        "--requests", type=int, default=10, metavar="N",
        help="mix size (default: 10)",
    )
    parser.add_argument(
        "--workers", type=int, default=4, metavar="K",
        help="server worker pool (default: 4)",
    )
    parser.add_argument(
        "--html", default=None, metavar="PATH",
        help="also write a standalone HTML snapshot",
    )
    args = parser.parse_args(argv)

    from repro.obs.slo import (
        SLOMonitor,
        render_dashboard,
        render_dashboard_html,
        server_slos,
    )
    from repro.options import QueryRequest
    from repro.qa.cli import build_site
    from repro.server import QueryServer, ServerConfig

    env, queries = build_site(args.site)
    suite = sorted(queries.items())
    requests = [
        QueryRequest(
            query=suite[i % len(suite)][1],
            options=QueryOptions(cache="off"),
            tenant=f"tenant-{i % 2}",
        )
        for i in range(args.requests)
    ]
    monitor = SLOMonitor(server_slos(), windows=(60.0, 300.0))
    monitor.sample(0.0)
    with QueryServer(env, ServerConfig(max_workers=args.workers)) as server:
        outcomes = server.serve(requests)
    makespan = sum(
        o.result.log.simulated_seconds for o in outcomes if o.result
    )
    monitor.sample(makespan)
    statuses = monitor.evaluate(makespan)
    print(render_dashboard(statuses, monitor.alerts))
    if args.html is not None:
        with open(args.html, "w", encoding="utf-8") as handle:
            handle.write(render_dashboard_html(statuses, monitor.alerts))
        print(f"\nhtml: {args.html}")
    return 0


def _calibrate(argv: Sequence[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs calibrate",
        description="Planner calibration: execute the QA query suites "
        "with recording tracers and report per-operator q-error — which "
        "repro.stats estimates drift worst, and where.",
    )
    parser.add_argument(
        "--sites", default=None, metavar="CSV",
        help="comma-separated site list (default: university, "
        "bibliography, movies, fuzz:17, fuzz:42)",
    )
    parser.add_argument(
        "--worst", type=int, default=10, metavar="N",
        help="how many worst estimates to rank (default: 10)",
    )
    parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the full JSON report",
    )
    args = parser.parse_args(argv)

    from repro.obs.progress import calibration_report, render_calibration

    sites = (
        [part.strip() for part in args.sites.split(",") if part.strip()]
        if args.sites
        else None
    )
    report = calibration_report(sites=sites, worst=args.worst)
    print(render_calibration(report))
    if args.out is not None:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"\nreport: {args.out}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] in _SUBCOMMANDS:
        handler = {
            "replay": _replay,
            "dashboard": _dashboard,
            "calibrate": _calibrate,
        }[argv[0]]
        return handler(argv[1:])
    return _explain(argv)


if __name__ == "__main__":
    sys.exit(main())
