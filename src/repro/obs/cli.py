"""``python -m repro.obs`` — EXPLAIN / EXPLAIN ANALYZE from the shell.

Examples::

    # why did Example 7.1 pick the pointer-join plan?
    python -m repro.obs --site university --query ex71

    # run it, annotate the tree with measured per-operator downloads,
    # and export a Perfetto-loadable timeline of the 4-lane fetch schedule
    python -m repro.obs --site university --query ex71 --analyze \\
        --workers 4 --export-trace trace-ex71.json

    # ad-hoc SQL plus the metric readings the run produced
    python -m repro.obs --site movies \\
        --sql "SELECT Title, Year, Genre FROM Movie" --analyze --metrics
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.obs.export import write_chrome_trace
from repro.obs.metrics import METRICS
from repro.obs.trace import RecordingTracer
from repro.options import QueryOptions
from repro.web.client import FetchConfig

__all__ = ["main"]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Explain (and optionally execute + measure) a query: "
        "plan space, rewrite lineage, annotated operator tree, "
        "Chrome-trace export.",
    )
    parser.add_argument(
        "--site",
        default="university",
        help="university | bibliography | movies | fuzz:<seed> "
        "(default: university)",
    )
    parser.add_argument(
        "--query",
        default=None,
        metavar="NAME",
        help="named query from the site's QA suite (e.g. ex71, ex72; "
        "see repro.qa); default: the site's first suite query",
    )
    parser.add_argument(
        "--sql", default=None, help="ad-hoc conjunctive SQL (overrides --query)"
    )
    parser.add_argument(
        "--analyze",
        action="store_true",
        help="EXPLAIN ANALYZE: execute the chosen plan and annotate the "
        "tree with measured per-operator pages / tuples / seconds",
    )
    parser.add_argument(
        "--workers", type=int, default=None, metavar="K",
        help="fetch-pool size for --analyze (default: network model)",
    )
    parser.add_argument(
        "--cache", default=None,
        help="cache mode for --analyze (off | per_query | cross_query)",
    )
    parser.add_argument(
        "--export-trace", default=None, metavar="PATH",
        help="write the recorded spans as Chrome trace events "
        "(implies --analyze)",
    )
    parser.add_argument(
        "--metrics", action="store_true",
        help="print the process metrics registry after the run",
    )
    args = parser.parse_args(argv)

    from repro.qa.cli import build_site

    env, queries = build_site(args.site)
    if args.sql is not None:
        sql = args.sql
    elif args.query is not None:
        if args.query not in queries:
            raise SystemExit(
                f"unknown query {args.query!r} for site {args.site!r} "
                f"(choose from {', '.join(queries)})"
            )
        sql = queries[args.query]
    else:
        sql = next(iter(queries.values()))

    analyze = args.analyze or args.export_trace is not None
    tracer = RecordingTracer()
    fetch_config = (
        FetchConfig(max_workers=args.workers)
        if args.workers is not None
        else None
    )
    report = env.explain(
        sql,
        analyze=analyze,
        options=QueryOptions(
            cache=args.cache, fetch=fetch_config, tracer=tracer
        ),
    )
    print(report)
    if args.export_trace is not None:
        document = write_chrome_trace(args.export_trace, tracer)
        print(
            f"\ntrace: {args.export_trace} "
            f"({len(document['traceEvents'])} events; load in "
            f"https://ui.perfetto.dev or chrome://tracing)"
        )
    if args.metrics:
        print("\nmetrics:")
        print(METRICS.render())
    return 0


if __name__ == "__main__":
    sys.exit(main())
