"""Span-based tracing: the observability substrate (``repro.obs``).

A *span* covers one unit of work — an operator evaluation, a fetch batch —
and carries attributes (tuples out, pages downloaded, simulated timings)
plus point-in-time *events* (a cache hit, a transient fault, a retry, a
single-flight dedup).  Spans nest: the engine opens an operator span per
plan node, the web client opens a fetch-batch span inside whichever
operator triggered the batch, and per-fetch events land inside that.

Two tracers implement the same duck-typed interface:

* :data:`NULL_TRACER` — the default.  Every instrumentation point guards on
  ``tracer.enabled``, and the null tracer's methods are no-ops returning
  shared singletons, so tracing is zero-cost when disabled.
* :class:`RecordingTracer` — records the span tree for rendering
  (:meth:`RecordingTracer.render`), EXPLAIN ANALYZE annotation
  (:func:`spans_by_node`), and Chrome-trace export
  (:mod:`repro.obs.export`).

**Non-interference contract.**  Tracing observes; it never mutates the
:class:`~repro.web.client.AccessLog`, the page cache, the simulated clock,
or any relation.  With tracing on, results, page counts, and logs are
bit-for-bit identical to a tracer-off run — enforced by
``tests/test_obs_noninterference.py`` and the ``repro.qa`` oracle's trace
dimension.

All span entry/exit happens on the query's calling thread (the batched
fetch engine does its accounting on the calling thread in submission
order), so a recording is deterministic at every worker-pool size.
"""

from __future__ import annotations

from typing import Iterator, Optional

__all__ = [
    "Span",
    "SpanEvent",
    "NullTracer",
    "NULL_TRACER",
    "RecordingTracer",
    "spans_by_node",
]


class SpanEvent:
    """A point-in-time observation attached to a span."""

    __slots__ = ("name", "attrs")

    def __init__(self, name: str, attrs: dict):
        self.name = name
        self.attrs = attrs

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in self.attrs.items())
        return f"SpanEvent({self.name}, {inner})"


class Span:
    """One recorded unit of work: attributes, events, child spans."""

    __slots__ = ("name", "kind", "attrs", "events", "children")

    def __init__(self, name: str, kind: str = "", attrs: Optional[dict] = None):
        self.name = name
        self.kind = kind
        self.attrs = attrs if attrs is not None else {}
        self.events: list[SpanEvent] = []
        self.children: list["Span"] = []

    def set(self, **attrs) -> None:
        """Attach (or overwrite) span attributes."""
        self.attrs.update(attrs)

    def event(self, name: str, **attrs) -> None:
        """Record a point-in-time event inside this span."""
        self.events.append(SpanEvent(name, attrs))

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, kind={self.kind!r}, "
            f"{len(self.children)} children, {len(self.events)} events)"
        )


class _NullSpan:
    """Shared do-nothing span; also its own context manager."""

    __slots__ = ()

    def set(self, **attrs) -> None:
        pass

    def event(self, name: str, **attrs) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The zero-cost default: every call is a no-op on shared singletons."""

    enabled = False

    def span(self, name: str, kind: str = "", **attrs) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, **attrs) -> None:
        pass


#: Process-shared no-op tracer: the default everywhere tracing plugs in.
NULL_TRACER = NullTracer()


class _SpanContext:
    """Context manager entering/exiting one recorded span."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "RecordingTracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        return self._span

    def __exit__(self, *exc) -> bool:
        self._tracer._pop(self._span)
        return False


class RecordingTracer:
    """Records a span tree (single-threaded span stack).

    Spans opened while another span is active nest under it; top-level
    spans land in :attr:`roots`.  Events fired outside any span are kept
    in :attr:`orphan_events` (they should be rare — only instrumentation
    reached outside a query)."""

    enabled = True

    def __init__(self) -> None:
        self.roots: list[Span] = []
        self.orphan_events: list[SpanEvent] = []
        self._stack: list[Span] = []

    # ------------------------------------------------------------------ #
    # the tracer interface
    # ------------------------------------------------------------------ #

    def span(self, name: str, kind: str = "", **attrs) -> _SpanContext:
        return _SpanContext(self, Span(name, kind, attrs))

    def event(self, name: str, **attrs) -> None:
        if self._stack:
            self._stack[-1].events.append(SpanEvent(name, attrs))
        else:
            self.orphan_events.append(SpanEvent(name, attrs))

    # ------------------------------------------------------------------ #
    # stack plumbing
    # ------------------------------------------------------------------ #

    def _push(self, span: Span) -> None:
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        if self._stack and self._stack[-1] is span:
            self._stack.pop()

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #

    @property
    def current(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    def spans(self, kind: Optional[str] = None) -> list[Span]:
        """All recorded spans, depth-first, optionally filtered by kind."""
        out = []
        for root in self.roots:
            for span in root.walk():
                if kind is None or span.kind == kind:
                    out.append(span)
        return out

    def events(self, name: Optional[str] = None) -> list[SpanEvent]:
        """All recorded events, optionally filtered by name."""
        out = [
            e for e in self.orphan_events if name is None or e.name == name
        ]
        for span in self.spans():
            out.extend(
                e for e in span.events if name is None or e.name == name
            )
        return out

    def render(self, max_events: int = 4, max_lines: int = 0) -> str:
        """Human-readable span tree with key attributes and events."""
        lines: list[str] = []

        def fmt_attrs(attrs: dict) -> str:
            keep = {
                k: v
                for k, v in attrs.items()
                if k not in ("node_id",) and v not in (None, "", 0, 0.0)
            }
            return " ".join(
                f"{k}={v:.4g}" if isinstance(v, float) else f"{k}={v}"
                for k, v in keep.items()
            )

        def go(span: Span, depth: int) -> None:
            detail = fmt_attrs(span.attrs)
            lines.append(
                "  " * depth
                + f"▸ {span.name}" + (f"  [{detail}]" if detail else "")
            )
            shown = span.events[:max_events] if max_events else span.events
            for event in shown:
                lines.append(
                    "  " * (depth + 1)
                    + f"· {event.name} {fmt_attrs(event.attrs)}".rstrip()
                )
            hidden = len(span.events) - len(shown)
            if hidden > 0:
                lines.append("  " * (depth + 1) + f"· … {hidden} more events")
            for child in span.children:
                go(child, depth + 1)

        for root in self.roots:
            go(root, 0)
        if max_lines and len(lines) > max_lines:
            lines = lines[:max_lines] + [f"… {len(lines) - max_lines} more lines"]
        return "\n".join(lines)


def spans_by_node(trace) -> dict[int, Span]:
    """Index operator spans by the ``node_id`` they were tagged with.

    Accepts a :class:`RecordingTracer` or a root :class:`Span`; used by the
    EXPLAIN ANALYZE renderer to pair each plan node with its measured span.
    ``node_id`` is the plan's stable preorder number (the renderer's walk
    order), stamped identically by every executor.
    """
    spans = (
        trace.spans(kind="operator")
        if isinstance(trace, RecordingTracer)
        else [s for s in trace.walk() if s.kind == "operator"]
    )
    out: dict[int, Span] = {}
    for span in spans:
        node_id = span.attrs.get("node_id")
        if node_id is not None and node_id not in out:
            out[node_id] = span
    return out
