"""Observability: span tracing, metrics, rewrite lineage, EXPLAIN ANALYZE,
the event journal, live query progress, and SLO monitoring.

Deliberately lightweight at import time — :mod:`repro.web.client` imports
this package on every use of the library, so only the dependency-free
substrate (tracing, metrics, rewrite lineage) is pulled in eagerly.  The
annotated-plan renderer (:mod:`repro.obs.explain`), the Chrome-trace
exporter (:mod:`repro.obs.export`), the append-only event journal and
flight recorder (:mod:`repro.obs.journal`), per-operator progress and
planner calibration (:mod:`repro.obs.progress`), SLO / burn-rate
monitoring (:mod:`repro.obs.slo`), and the CLI (``python -m repro.obs``,
with ``replay`` / ``dashboard`` / ``calibrate`` subcommands) are imported
on demand.
"""

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Histogram,
    METRICS,
    MetricsRegistry,
)
from repro.obs.rewrite import STRATEGY_RULES, RewriteStep, RewriteTrace
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    RecordingTracer,
    Span,
    SpanEvent,
    spans_by_node,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Histogram",
    "METRICS",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "RecordingTracer",
    "RewriteStep",
    "RewriteTrace",
    "STRATEGY_RULES",
    "Span",
    "SpanEvent",
    "spans_by_node",
]
