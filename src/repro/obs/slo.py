"""SLOs over the metrics registry: windows, objectives, burn rates.

The :mod:`repro.obs.metrics` registry accumulates counters and histograms
for the life of the process; operating a server needs *windowed* views
("what was p99 makespan over the last five minutes?") and alerting on
them.  This module adds both without touching the instruments:

* :class:`WindowStore` retains timestamped registry snapshots in a
  bounded ring; :meth:`WindowStore.window` subtracts the snapshot just
  outside a horizon from the latest one, yielding counter deltas and the
  histogram samples that arrived inside the window.  Time is whatever
  clock the caller samples with — the simulated
  :class:`~repro.clock.Timeline` in tests and benchmarks, so windowing is
  deterministic.
* SLO specs are declarative objects: :class:`QuantileSLO` ("p99 of this
  histogram stays under T seconds") and :class:`RatioSLO` ("the fraction
  of good-labelled increments stays above O").  Each reports a *burn
  rate*: how fast the error budget is being consumed (1.0 = exactly at
  objective; 2.0 = burning budget twice as fast as sustainable).
* :class:`SLOMonitor` evaluates every spec over a short and a long
  window and emits a :class:`BurnRateAlert` only when **both** burn — the
  classic multi-window guard against paging on a blip (short window)
  or on long-ago history (long window).

``python -m repro.obs dashboard`` renders the monitor's current state as
text or a standalone HTML snapshot.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.obs.metrics import METRICS, MetricsRegistry

__all__ = [
    "Window",
    "WindowStore",
    "QuantileSLO",
    "RatioSLO",
    "SLOStatus",
    "BurnRateAlert",
    "SLOMonitor",
    "server_slos",
    "render_dashboard",
    "render_dashboard_html",
]


def _series_map(metric_snapshot: Optional[dict]) -> dict[tuple, dict]:
    if not metric_snapshot:
        return {}
    result = {}
    for series in metric_snapshot.get("series", ()):
        key = tuple(sorted(series["labels"].items()))
        result[key] = series
    return result


def _labels_match(labels: dict, constraint: dict) -> bool:
    """Subset match; a constraint value may be a tuple of alternatives
    (e.g. cache hit = event in ("hit", "revalidated"))."""
    for name, want in constraint.items():
        have = labels.get(name)
        if isinstance(want, (tuple, list, set, frozenset)):
            if have not in {str(w) for w in want}:
                return False
        elif have != str(want):
            return False
    return True


class Window:
    """The difference between two registry snapshots: what happened
    between ``start_ts`` and ``end_ts``."""

    def __init__(
        self,
        start: dict,
        end: dict,
        start_ts: float,
        end_ts: float,
    ):
        self.start = start
        self.end = end
        self.start_ts = start_ts
        self.end_ts = end_ts

    @property
    def span_seconds(self) -> float:
        return self.end_ts - self.start_ts

    def counter_delta(self, metric: str, labels: Optional[dict] = None) -> float:
        """Sum of increments inside the window over every series whose
        labels match the (subset) constraint."""
        constraint = labels or {}
        end_series = _series_map(self.end.get(metric))
        start_series = _series_map(self.start.get(metric))
        total = 0.0
        for key, series in end_series.items():
            if not _labels_match(series["labels"], constraint):
                continue
            before = start_series.get(key, {}).get("value", 0.0)
            total += series["value"] - before
        return total

    def histogram_samples(
        self, metric: str, labels: Optional[dict] = None
    ) -> list[float]:
        """The raw observations that arrived inside the window (matching
        series' retained samples, minus however many were already there
        at the window's start).  Exact while the series' stride is 1 —
        the decimation bound is far above anything a test or benchmark
        window observes."""
        constraint = labels or {}
        end_series = _series_map(self.end.get(metric))
        start_series = _series_map(self.start.get(metric))
        samples: list[float] = []
        for key, series in end_series.items():
            if not _labels_match(series["labels"], constraint):
                continue
            retained = series.get("samples", [])
            seen = len(start_series.get(key, {}).get("samples", ()))
            samples.extend(retained[seen:])
        return samples

    def percentile(
        self, metric: str, fraction: float, labels: Optional[dict] = None
    ) -> Optional[float]:
        """Nearest-rank quantile of the window's observations (None when
        nothing matching was observed inside the window)."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        samples = sorted(self.histogram_samples(metric, labels))
        if not samples:
            return None
        rank = max(0, math.ceil(fraction * len(samples)) - 1)
        return samples[min(rank, len(samples) - 1)]


class WindowStore:
    """A bounded ring of timestamped registry snapshots.

    :meth:`sample` appends the current snapshot; :meth:`window` pairs the
    newest snapshot with the most recent one at least ``horizon`` old
    (falling back to the oldest retained — a cold store reports since
    process start)."""

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        capacity: int = 256,
    ):
        if capacity < 2:
            raise ValueError("capacity must be >= 2")
        self.registry = registry if registry is not None else METRICS
        self._ring: deque = deque(maxlen=capacity)

    def __len__(self) -> int:
        return len(self._ring)

    def sample(self, now: float) -> None:
        """Record the registry's current state at simulated time ``now``."""
        self._ring.append((float(now), self.registry.snapshot()))

    def window(self, horizon: float) -> Optional[Window]:
        """The window covering (approximately) the last ``horizon``
        seconds, or None before the first sample."""
        if not self._ring:
            return None
        end_ts, end = self._ring[-1]
        start_ts, start = self._ring[0]
        for ts, snapshot in reversed(self._ring):
            if end_ts - ts >= horizon:
                start_ts, start = ts, snapshot
                break
        return Window(start, end, start_ts, end_ts)


# ---------------------------------------------------------------------- #
# SLO specs
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class QuantileSLO:
    """"The ``quantile`` of histogram ``metric`` stays <= ``threshold``."

    Burn rate = measured quantile / threshold: 1.0 exactly at the
    objective, higher when the tail is slower than promised."""

    name: str
    metric: str
    quantile: float
    threshold: float
    labels: dict = field(default_factory=dict)

    def __post_init__(self):
        if not 0.0 <= self.quantile <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.threshold <= 0:
            raise ValueError("threshold must be positive")

    def measure(self, window: Window) -> Optional[float]:
        return window.percentile(self.metric, self.quantile, self.labels)

    def burn_rate(self, window: Window) -> Optional[float]:
        measured = self.measure(window)
        if measured is None:
            return None
        return measured / self.threshold

    def describe(self) -> str:
        return (
            f"p{self.quantile * 100:g}({self.metric}) "
            f"<= {self.threshold:g}"
        )


@dataclass(frozen=True)
class RatioSLO:
    """"At least ``objective`` of ``metric`` increments are good."

    ``good_labels`` constrains the numerator (values may be tuples of
    alternatives); the denominator is every series matching
    ``total_labels`` (default: all).  Burn rate = observed bad fraction
    over the budgeted bad fraction ``1 - objective``."""

    name: str
    metric: str
    good_labels: dict
    objective: float
    total_labels: dict = field(default_factory=dict)

    def __post_init__(self):
        if not 0.0 < self.objective < 1.0:
            raise ValueError("objective must be in (0, 1)")

    def measure(self, window: Window) -> Optional[float]:
        """The good fraction inside the window (None when idle)."""
        total = window.counter_delta(self.metric, self.total_labels)
        if total <= 0:
            return None
        good = window.counter_delta(self.metric, self.good_labels)
        return good / total

    def burn_rate(self, window: Window) -> Optional[float]:
        measured = self.measure(window)
        if measured is None:
            return None
        budget = 1.0 - self.objective
        return (1.0 - measured) / budget

    def describe(self) -> str:
        return f"good({self.metric}) >= {self.objective:.2%}"


@dataclass(frozen=True)
class SLOStatus:
    """One spec evaluated over the monitor's window pair."""

    name: str
    objective: str
    short_measured: Optional[float]
    long_measured: Optional[float]
    short_burn: Optional[float]
    long_burn: Optional[float]
    burning: bool


@dataclass(frozen=True)
class BurnRateAlert:
    """Both windows burning past the threshold: page-worthy."""

    slo: str
    at: float
    short_window: float
    long_window: float
    short_burn: float
    long_burn: float

    def describe(self) -> str:
        return (
            f"[{self.at:g}s] SLO {self.slo!r} burning: "
            f"{self.short_burn:.2f}x over {self.short_window:g}s, "
            f"{self.long_burn:.2f}x over {self.long_window:g}s"
        )


class SLOMonitor:
    """Evaluates SLO specs over a short/long window pair and records
    multi-window burn-rate alerts.

    Drive it from whatever clock the system runs on: call
    :meth:`sample` periodically (benchmarks do so after every request
    batch, stamped with simulated seconds), then :meth:`evaluate`."""

    def __init__(
        self,
        specs: Sequence,
        registry: Optional[MetricsRegistry] = None,
        windows: tuple[float, float] = (60.0, 300.0),
        burn_threshold: float = 2.0,
        capacity: int = 256,
    ):
        short, long = windows
        if short >= long:
            raise ValueError("windows must be (short, long) with short < long")
        self.specs = list(specs)
        self.windows = (float(short), float(long))
        self.burn_threshold = float(burn_threshold)
        self.store = WindowStore(registry, capacity=capacity)
        self.alerts: list[BurnRateAlert] = []

    def sample(self, now: float) -> None:
        self.store.sample(now)

    def evaluate(self, now: Optional[float] = None) -> list[SLOStatus]:
        """Evaluate every spec; alerts accumulate on ``self.alerts``."""
        short_h, long_h = self.windows
        short_w = self.store.window(short_h)
        long_w = self.store.window(long_h)
        statuses: list[SLOStatus] = []
        if short_w is None or long_w is None:
            return statuses
        at = now if now is not None else short_w.end_ts
        for spec in self.specs:
            short_burn = spec.burn_rate(short_w)
            long_burn = spec.burn_rate(long_w)
            burning = (
                short_burn is not None
                and long_burn is not None
                and short_burn >= self.burn_threshold
                and long_burn >= self.burn_threshold
            )
            statuses.append(
                SLOStatus(
                    name=spec.name,
                    objective=spec.describe(),
                    short_measured=spec.measure(short_w),
                    long_measured=spec.measure(long_w),
                    short_burn=short_burn,
                    long_burn=long_burn,
                    burning=burning,
                )
            )
            if burning:
                self.alerts.append(
                    BurnRateAlert(
                        slo=spec.name,
                        at=at,
                        short_window=short_h,
                        long_window=long_h,
                        short_burn=short_burn,
                        long_burn=long_burn,
                    )
                )
        return statuses


def server_slos(
    makespan_p99: float = 30.0,
    error_budget: float = 0.01,
    hit_objective: float = 0.5,
) -> list:
    """The multi-query server's default SLO suite:

    * p99 request makespan (simulated seconds) under ``makespan_p99``;
    * at least ``1 - error_budget`` of requests finish ``outcome=ok``;
    * at least ``hit_objective`` of cache lookups are served locally
      (hit or revalidated — both avoid a heavy page transfer)."""
    return [
        QuantileSLO(
            name="request-makespan-p99",
            metric="repro_server_request_simulated_seconds",
            quantile=0.99,
            threshold=makespan_p99,
        ),
        RatioSLO(
            name="request-success",
            metric="repro_server_queries_total",
            good_labels={"outcome": "ok"},
            objective=1.0 - error_budget,
        ),
        RatioSLO(
            name="cache-hit-rate",
            metric="repro_cache_events_total",
            good_labels={"event": ("hit", "revalidated")},
            objective=hit_objective,
        ),
    ]


# ---------------------------------------------------------------------- #
# dashboard rendering
# ---------------------------------------------------------------------- #


def _fmt(value: Optional[float], pattern: str = "{:.3f}") -> str:
    return pattern.format(value) if value is not None else "-"


def render_dashboard(
    statuses: Iterable[SLOStatus],
    alerts: Iterable[BurnRateAlert] = (),
    title: str = "repro SLO dashboard",
) -> str:
    """Fixed-width text snapshot of the monitor's current state."""
    statuses = list(statuses)
    alerts = list(alerts)
    header = (
        f"{'slo':<24} {'objective':<38} {'short':>9} {'long':>9} "
        f"{'burn s/l':>13} {'state':>8}"
    )
    lines = [title, "=" * len(header), header, "-" * len(header)]
    for status in statuses:
        burn = f"{_fmt(status.short_burn, '{:.2f}')}/{_fmt(status.long_burn, '{:.2f}')}"
        state = "BURNING" if status.burning else "ok"
        lines.append(
            f"{status.name:<24} {status.objective:<38} "
            f"{_fmt(status.short_measured):>9} "
            f"{_fmt(status.long_measured):>9} {burn:>13} {state:>8}"
        )
    if not statuses:
        lines.append("(no samples yet)")
    lines.append("")
    lines.append(f"alerts: {len(alerts)}")
    for alert in alerts:
        lines.append(f"  {alert.describe()}")
    return "\n".join(lines)


def render_dashboard_html(
    statuses: Iterable[SLOStatus],
    alerts: Iterable[BurnRateAlert] = (),
    title: str = "repro SLO dashboard",
) -> str:
    """A dependency-free standalone HTML snapshot (CI uploads this as an
    artifact next to the journal)."""
    from html import escape

    statuses = list(statuses)
    alerts = list(alerts)
    rows = []
    for status in statuses:
        cls = "burning" if status.burning else "ok"
        rows.append(
            f"<tr class={cls!r}><td>{escape(status.name)}</td>"
            f"<td>{escape(status.objective)}</td>"
            f"<td>{escape(_fmt(status.short_measured))}</td>"
            f"<td>{escape(_fmt(status.long_measured))}</td>"
            f"<td>{escape(_fmt(status.short_burn, '{:.2f}'))}</td>"
            f"<td>{escape(_fmt(status.long_burn, '{:.2f}'))}</td>"
            f"<td>{'BURNING' if status.burning else 'ok'}</td></tr>"
        )
    alert_items = "".join(
        f"<li>{escape(alert.describe())}</li>" for alert in alerts
    )
    return f"""<!doctype html>
<html><head><meta charset="utf-8"><title>{escape(title)}</title>
<style>
body {{ font-family: monospace; margin: 2em; }}
table {{ border-collapse: collapse; }}
td, th {{ border: 1px solid #999; padding: 4px 10px; }}
tr.burning td {{ background: #fdd; }}
tr.ok td {{ background: #dfd; }}
</style></head><body>
<h1>{escape(title)}</h1>
<table>
<tr><th>slo</th><th>objective</th><th>short</th><th>long</th>
<th>burn (short)</th><th>burn (long)</th><th>state</th></tr>
{"".join(rows) or '<tr><td colspan="7">no samples yet</td></tr>'}
</table>
<h2>alerts ({len(alerts)})</h2>
<ul>{alert_items or "<li>none</li>"}</ul>
</body></html>
"""
