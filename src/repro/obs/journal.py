"""The append-only event journal: a flight recorder for query requests.

Every request the library executes under a :class:`Journal` leaves a
correlated block of JSON-lines events behind:

``request``
    One per ``request_id``: who asked (tenant), what for (the query text
    and site, when the caller knows them), stamped with the *simulated*
    clock of the request's own access log — never wall clock, so a
    journal is deterministic and bit-for-bit reproducible.
``plan``
    The plan candidate the executor actually ran (its rendered algebra
    text plus the execution mode) — the hook replay uses to re-select the
    same candidate from the deterministic plan space.
``span``
    One per recorded span, preorder: ``span_id``/``parent_id`` encode the
    tree, ``name``/``span_kind``/``attrs``/``events`` its content.  The
    serialized tree reconstructs the exact :class:`~repro.obs.trace.Span`
    forest (:func:`reconstruct_trace`), which is why replay can rebuild
    the EXPLAIN ANALYZE and Perfetto renderings losslessly.
``fetch`` / ``cache`` / ``prune`` / ``switch``
    Flat per-occurrence events lifted out of the span tree (each carries
    the ``span_id`` it happened inside) so an operational log query like
    "every fetch of request r0003" needs no tree walk.
``result`` / ``error``
    The request's outcome: canonical relation digest, row count, and the
    page/cache counters of its access-log delta — the figures
    ``benchmarks/check_journal.py`` re-derives and cross-checks.

**Non-interference.**  Journaling observes an execution that already
happened (the span tree and log delta); it never touches the cache, the
clock, or the relation.  The QA matrix's ``journal`` dimension proves a
journaled run leaves every digest, page count, and cache counter
bit-for-bit unchanged.

**Determinism.**  Events carry a per-request sequence number and
:meth:`Journal.write` orders blocks canonically by request id, so a
cohort journal is byte-identical however the server's worker threads
interleaved — each request's block is internally deterministic because
per-request accounting is (docs/SERVER.md).
"""

from __future__ import annotations

import itertools
import json
import threading
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

from repro.errors import JournalError
from repro.obs.trace import Span, SpanEvent

__all__ = [
    "JournalEvent",
    "Journal",
    "NullJournal",
    "NULL_JOURNAL",
    "reconstruct_trace",
    "replay",
    "ReplayResult",
]

#: Span attr / event attr values that survive serialization: everything a
#: tracer records today is one of these (the plan text is a str).
_JSON_SAFE = (bool, int, float, str)

#: Span event names lifted into flat journal events, and the journal kind
#: they surface as.
_FLAT_EVENTS = {
    "fetch": "fetch",
    "adaptive-prune": "prune",
    "adaptive-switch": "switch",
}


def _safe_attrs(attrs: dict) -> dict:
    return {
        key: value
        for key, value in attrs.items()
        if value is None or isinstance(value, _JSON_SAFE)
    }


@dataclass(frozen=True)
class JournalEvent:
    """One journal line: correlation ids plus a JSON-safe payload."""

    kind: str
    request_id: str
    seq: int          #: position within the request's block (0-based)
    ts: float         #: simulated seconds (request-relative clock)
    attrs: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "request_id": self.request_id,
            "seq": self.seq,
            "ts": self.ts,
            **self.attrs,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "JournalEvent":
        try:
            kind = data["kind"]
            request_id = data["request_id"]
            seq = data["seq"]
            ts = data["ts"]
        except KeyError as err:
            raise JournalError(f"journal line lacks {err.args[0]!r}") from None
        attrs = {
            key: value
            for key, value in data.items()
            if key not in ("kind", "request_id", "seq", "ts")
        }
        return cls(kind=kind, request_id=request_id, seq=int(seq),
                   ts=float(ts), attrs=attrs)


class Journal:
    """Lock-safe, append-only, in-memory event journal (JSONL on disk).

    ``defaults`` are merged into every ``request`` event (the benchmark
    harness stamps the site name this way); they are mutable so one
    journal can span several serially run sites."""

    enabled = True

    def __init__(self, defaults: Optional[dict] = None):
        self.defaults: dict = dict(defaults or {})
        self._lock = threading.Lock()
        self._events: list[JournalEvent] = []
        self._seq: dict[str, itertools.count] = {}
        self._requests: set[str] = set()
        self._next_request = itertools.count(1)

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #

    def begin_request(
        self,
        request_id: Optional[str] = None,
        ts: float = 0.0,
        **attrs,
    ) -> str:
        """Open (or annotate) one request block; returns its id.

        With ``request_id=None`` a fresh journal-unique id is allocated.
        Calling again for a known id merges the new attributes into a
        follow-up ``request`` event only if they add anything — the
        executor calls this unconditionally, after the server or the QA
        oracle may already have registered richer metadata."""
        with self._lock:
            if request_id is None:
                request_id = f"r{next(self._next_request):04d}"
            known = request_id in self._requests
            if known and not attrs:
                return request_id
            merged = _safe_attrs(
                {**self.defaults, **attrs} if not known else attrs
            )
            if not known:
                self._requests.add(request_id)
            self._append_locked("request", request_id, ts, merged)
            return request_id

    def record(
        self, kind: str, request_id: str, ts: float = 0.0, **attrs
    ) -> None:
        """Append one event to a request's block."""
        with self._lock:
            self._append_locked(kind, request_id, ts, _safe_attrs(attrs))

    def record_execution(
        self,
        request_id: str,
        *,
        root: Optional[Span],
        ts: float = 0.0,
        **result_attrs,
    ) -> None:
        """Record one finished execution as a single atomic block: the
        serialized span tree, the flat fetch/cache/prune/switch events
        lifted out of it, and the ``result`` event with the run's
        counters.  One lock acquisition, so concurrent server workers
        never interleave inside a request's block."""
        with self._lock:
            if root is not None:
                self._record_spans_locked(request_id, root)
            self._append_locked(
                "result", request_id, ts, _safe_attrs(result_attrs)
            )

    def record_error(
        self, request_id: str, error: BaseException, ts: float = 0.0, **attrs
    ) -> None:
        with self._lock:
            self._append_locked(
                "error",
                request_id,
                ts,
                {"error": type(error).__name__,
                 "message": str(error), **_safe_attrs(attrs)},
            )

    def _record_spans_locked(self, request_id: str, root: Span) -> None:
        span_ids: dict[int, int] = {}

        def go(span: Span, parent_id: Optional[int]) -> None:
            span_id = len(span_ids)
            span_ids[id(span)] = span_id
            ts = float(span.attrs.get("t0") or 0.0)
            self._append_locked(
                "span",
                request_id,
                ts,
                {
                    "span_id": span_id,
                    "parent_id": parent_id,
                    "name": span.name,
                    "span_kind": span.kind,
                    "attrs": _safe_attrs(span.attrs),
                    "events": [
                        {"name": e.name, "attrs": _safe_attrs(e.attrs)}
                        for e in span.events
                    ],
                },
            )
            for event in span.events:
                flat = _FLAT_EVENTS.get(event.name)
                is_cache = event.name.startswith("cache_")
                if flat is None and not is_cache:
                    continue
                attrs = _safe_attrs(event.attrs)
                if is_cache:
                    flat = "cache"
                    attrs["event"] = event.name[len("cache_"):]
                self._append_locked(
                    flat,
                    request_id,
                    float(attrs.get("start") or ts),
                    {"span_id": span_id, **attrs},
                )
            for child in span.children:
                go(child, span_id)

        go(root, None)

    def _append_locked(
        self, kind: str, request_id: str, ts: float, attrs: dict
    ) -> None:
        if not request_id:
            raise JournalError("journal events need a request id")
        counter = self._seq.setdefault(request_id, itertools.count())
        self._events.append(
            JournalEvent(
                kind=kind,
                request_id=request_id,
                seq=next(counter),
                ts=ts,
                attrs=attrs,
            )
        )

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def events(self, kind: Optional[str] = None) -> list[JournalEvent]:
        with self._lock:
            snapshot = list(self._events)
        if kind is None:
            return snapshot
        return [event for event in snapshot if event.kind == kind]

    def request_ids(self) -> list[str]:
        """Every request id, in canonical (sorted) order."""
        seen = {event.request_id for event in self.events("request")}
        return sorted(seen)

    def events_for(self, request_id: str) -> list[JournalEvent]:
        """One request's block, in its deterministic seq order."""
        block = [
            event
            for event in self.events()
            if event.request_id == request_id
        ]
        block.sort(key=lambda event: event.seq)
        return block

    def request_attrs(self, request_id: str) -> dict:
        """The merged attributes of a request's ``request`` event(s)."""
        merged: dict = {}
        for event in self.events_for(request_id):
            if event.kind == "request":
                merged.update(event.attrs)
        if not merged and request_id not in self.request_ids():
            raise JournalError(f"unknown request id {request_id!r}")
        return merged

    def validate(self) -> list[str]:
        """Correlation-id integrity; returns the problems (empty: sound).

        Every event must belong to a request block opened by a
        ``request`` event; span ids must be unique per request with
        resolvable parents; every flat fetch/cache/prune/switch event
        must point at a span of its own request."""
        problems: list[str] = []
        events = self.events()
        requests = {e.request_id for e in events if e.kind == "request"}
        spans: dict[str, set[int]] = {}
        for event in sorted(events, key=lambda e: (e.request_id, e.seq)):
            rid = event.request_id
            if rid not in requests:
                problems.append(
                    f"{event.kind} event references unknown request {rid!r}"
                )
                continue
            if event.kind == "span":
                span_id = event.attrs.get("span_id")
                parent_id = event.attrs.get("parent_id")
                known = spans.setdefault(rid, set())
                if span_id in known:
                    problems.append(f"{rid}: duplicate span id {span_id}")
                if parent_id is not None and parent_id not in known:
                    problems.append(
                        f"{rid}: span {span_id} has unresolved parent "
                        f"{parent_id}"
                    )
                known.add(span_id)
            elif event.kind in ("fetch", "cache", "prune", "switch"):
                span_id = event.attrs.get("span_id")
                if span_id not in spans.get(rid, set()):
                    problems.append(
                        f"{rid}: {event.kind} event references unknown "
                        f"span {span_id}"
                    )
        return problems

    # ------------------------------------------------------------------ #
    # JSONL persistence
    # ------------------------------------------------------------------ #

    def to_lines(self) -> Iterator[str]:
        """Canonically ordered JSON lines: blocks sorted by request id,
        events by their in-block sequence — byte-deterministic however
        worker threads interleaved the appends."""
        ordered = sorted(
            self.events(), key=lambda e: (e.request_id, e.seq)
        )
        for event in ordered:
            yield json.dumps(event.to_dict(), sort_keys=True)

    def write(self, path: str, append: bool = False) -> int:
        """Write the journal as JSON lines; returns the event count."""
        lines = list(self.to_lines())
        mode = "a" if append else "w"
        with open(path, mode, encoding="utf-8") as handle:
            for line in lines:
                handle.write(line + "\n")
        return len(lines)

    @classmethod
    def load(cls, path: str) -> "Journal":
        """Load a JSONL journal written by :meth:`write`."""
        with open(path, "r", encoding="utf-8") as handle:
            lines = [line for line in handle if line.strip()]
        return cls.from_lines(lines)

    @classmethod
    def from_lines(cls, lines: Iterable[str]) -> "Journal":
        journal = cls()
        max_rid = 0
        for number, line in enumerate(lines, 1):
            try:
                data = json.loads(line)
            except json.JSONDecodeError as err:
                raise JournalError(
                    f"journal line {number} is not JSON ({err})"
                ) from None
            event = JournalEvent.from_dict(data)
            journal._events.append(event)
            if event.kind == "request":
                journal._requests.add(event.request_id)
                if event.request_id.startswith("r"):
                    try:
                        max_rid = max(max_rid, int(event.request_id[1:]))
                    except ValueError:
                        pass
        journal._next_request = itertools.count(max_rid + 1)
        for event in journal._events:
            journal._seq.setdefault(event.request_id, itertools.count())
        return journal


class NullJournal(Journal):
    """The zero-cost default: every recording call is a no-op."""

    enabled = False

    def begin_request(
        self,
        request_id: Optional[str] = None,
        ts: float = 0.0,
        **attrs,
    ) -> str:
        return request_id or ""

    def record(self, kind, request_id, ts=0.0, **attrs) -> None:
        pass

    def record_execution(self, request_id, *, root, ts=0.0, **attrs) -> None:
        pass

    def record_error(self, request_id, error, ts=0.0, **attrs) -> None:
        pass


#: Process-shared no-op journal: the default everywhere journaling plugs in.
NULL_JOURNAL = NullJournal()


# ---------------------------------------------------------------------- #
# reconstruction + replay
# ---------------------------------------------------------------------- #


def reconstruct_trace(journal: Journal, request_id: str) -> Span:
    """Rebuild the request's exact span tree from its ``span`` events.

    The returned root is interchangeable with the live
    ``ExecutionResult.trace``: :func:`~repro.obs.trace.spans_by_node`,
    the EXPLAIN ANALYZE renderer, and the Chrome-trace exporter consume
    it identically — that is the replay-losslessness guarantee the
    journal tests pin."""
    spans: dict[int, Span] = {}
    root: Optional[Span] = None
    for event in journal.events_for(request_id):
        if event.kind != "span":
            continue
        span = Span(
            event.attrs.get("name", ""),
            kind=event.attrs.get("span_kind", ""),
            attrs=dict(event.attrs.get("attrs") or {}),
        )
        span.events = [
            SpanEvent(item["name"], dict(item.get("attrs") or {}))
            for item in event.attrs.get("events") or []
        ]
        span_id = event.attrs.get("span_id")
        parent_id = event.attrs.get("parent_id")
        spans[span_id] = span
        if parent_id is None:
            if root is None:
                root = span
        else:
            parent = spans.get(parent_id)
            if parent is None:
                raise JournalError(
                    f"{request_id}: span {span_id} arrived before its "
                    f"parent {parent_id}"
                )
            parent.children.append(span)
    if root is None:
        raise JournalError(f"no spans journaled for request {request_id!r}")
    return root


@dataclass
class ReplayResult:
    """Everything replay reconstructed for one past request."""

    request_id: str
    request: dict            #: merged ``request`` event attributes
    plan: str                #: the journaled plan's rendered algebra text
    expr: object             #: the re-found plan candidate (an algebra Expr)
    execution: str
    root: Span               #: the reconstructed span tree
    explain: str             #: EXPLAIN ANALYZE annotated tree (re-rendered)
    trace_events: list       #: Chrome trace events (Perfetto-loadable)
    result: dict             #: the journaled ``result`` event attributes

    @property
    def page_sum(self) -> int:
        """Per-operator own pages, summed (must equal the result pages)."""
        total = 0
        for span in self.root.walk():
            if span.kind != "operator":
                continue
            own = span.attrs.get("pages", 0) - sum(
                c.attrs.get("pages", 0)
                for c in span.children
                if c.kind == "operator"
            )
            total += own
        return total


def replay(journal: Journal, request_id: str, env=None) -> ReplayResult:
    """Reconstruct one past request from the journal alone.

    Rebuilds the span tree, re-selects the *same* plan candidate (the
    site's plan enumeration is deterministic; the candidate is matched by
    its rendered algebra text), and re-renders the EXPLAIN ANALYZE tree
    and the Chrome-trace export from the reconstructed spans.  ``env``
    may be passed to reuse a built environment; otherwise the journaled
    ``site`` name is resolved through the QA site builder."""
    from repro.algebra.printer import render_expr
    from repro.obs.explain import render_annotated_tree
    from repro.obs.export import chrome_trace_events
    from repro.obs.trace import spans_by_node

    request = journal.request_attrs(request_id)
    plan_events = [
        e for e in journal.events_for(request_id) if e.kind == "plan"
    ]
    if not plan_events:
        raise JournalError(f"no plan journaled for request {request_id!r}")
    plan_text = plan_events[-1].attrs.get("plan", "")
    execution = plan_events[-1].attrs.get("execution", "staged")
    result_events = [
        e for e in journal.events_for(request_id) if e.kind == "result"
    ]
    result_attrs = result_events[-1].attrs if result_events else {}
    root = reconstruct_trace(journal, request_id)

    if env is None:
        site = request.get("site")
        if not site:
            raise JournalError(
                f"request {request_id!r} journaled no site; pass env="
            )
        from repro.qa.cli import build_site

        env, _ = build_site(site)
    query = request.get("query")
    if not query:
        raise JournalError(
            f"request {request_id!r} journaled no query text"
        )
    expr = None
    for candidate in env.enumerate_plans(query):
        if render_expr(candidate.expr) == plan_text:
            expr = candidate.expr
            break
    if expr is None:
        raise JournalError(
            f"request {request_id!r}: journaled plan not found in the "
            f"site's plan space (site drifted since the recording?)"
        )
    spans = spans_by_node(root)
    explain = render_annotated_tree(
        expr, env.cost_model, scheme=env.scheme, spans=spans
    )
    return ReplayResult(
        request_id=request_id,
        request=request,
        plan=plan_text,
        expr=expr,
        execution=execution,
        root=root,
        explain=explain,
        trace_events=chrome_trace_events(root),
        result=dict(result_attrs),
    )
