"""Live query progress: per-operator estimate-vs-actual accounting.

Three pieces, layered from primitive to report:

* :func:`qerror` — the planner-calibration statistic,
  ``max(est/actual, actual/est)`` with both sides clamped to at least 1.
  A q-error of 1 is a perfect estimate; 10 means the cardinality model
  was off by an order of magnitude in *either* direction.
* :class:`ProgressBoard` — a lock-safe registry of in-flight requests.
  The executor seeds it with the plan's per-operator cardinality
  estimates before the first fetch; a :class:`ProgressTracer` wrapped
  around the recording tracer marks operators started/finished as their
  spans open and close.  ``progress(request_id)`` returns a monotone
  snapshot: the completion fraction counts finished operators fully and
  started ones half, and operators never un-finish, so the fraction is
  non-decreasing by construction (``tests/test_server.py`` pins this
  under a concurrent mixed cohort).
* :func:`calibration_report` — runs a query suite with recording tracers
  and pairs every operator's estimated cardinality with the tuples it
  actually produced, naming which :mod:`repro.stats` estimates drift
  worst (docs/OBSERVABILITY.md explains how to read it).

The board is observational: executors write into it, but nothing in the
query path reads it, so progress tracking rides along with the
non-interference guarantees the tracing layer already proves.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Optional

from repro.obs.trace import Span

__all__ = [
    "qerror",
    "OperatorProgress",
    "QueryProgress",
    "ProgressBoard",
    "ProgressTracer",
    "operator_estimates",
    "CalibrationEntry",
    "calibration_entries",
    "calibration_report",
    "render_calibration",
]


def qerror(estimate: float, actual: float) -> float:
    """The q-error of a cardinality estimate: ``max(est/act, act/est)``
    with both sides clamped to at least 1 (so zero-row operators compare
    against 1 instead of dividing by zero).  Symmetric — over- and
    under-estimation are penalized alike — and always >= 1."""
    est = max(float(estimate), 1.0)
    act = max(float(actual), 1.0)
    return max(est / act, act / est)


@dataclass
class OperatorProgress:
    """One operator's live estimate-vs-actual state."""

    node_id: int
    op: str = ""
    est_tuples: float = 0.0
    actual_tuples: float = 0.0
    actual_pages: float = 0.0
    started: bool = False
    done: bool = False

    @property
    def q_error(self) -> Optional[float]:
        return qerror(self.est_tuples, self.actual_tuples) if self.done else None


@dataclass(frozen=True)
class QueryProgress:
    """A point-in-time snapshot of one request's completion state."""

    request_id: str
    total_operators: int
    started_operators: int
    completed_operators: int
    est_tuples: float
    actual_tuples: float
    actual_pages: float
    finished: bool
    operators: tuple = ()

    @property
    def fraction(self) -> float:
        """Completion fraction in [0, 1]: finished operators count fully,
        started-but-unfinished ones half; a finished request is 1.0 even
        if it errored before touching every operator.  Monotone
        non-decreasing over a request's lifetime because operators only
        ever move forward (never un-start, never un-finish)."""
        if self.finished:
            return 1.0
        if self.total_operators <= 0:
            return 0.0
        score = self.completed_operators + 0.5 * (
            self.started_operators - self.completed_operators
        )
        return min(1.0, score / self.total_operators)


class ProgressBoard:
    """Lock-safe per-request operator progress, written by executors and
    read by :meth:`Ticket.progress` / :meth:`QueryServer.status`."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._queries: dict[str, dict] = {}

    # -- writers (executor side) --------------------------------------- #

    def begin(
        self, request_id: str, estimates: dict[int, dict]
    ) -> None:
        """Register a request with its per-operator estimates (node id ->
        ``{"op": ..., "est_tuples": ...}``).  First registration wins —
        the server registers before the executor re-derives."""
        with self._lock:
            if request_id in self._queries:
                return
            self._queries[request_id] = {
                "finished": False,
                "operators": {
                    node_id: OperatorProgress(
                        node_id=node_id,
                        op=str(info.get("op", "")),
                        est_tuples=float(info.get("est_tuples", 0.0)),
                    )
                    for node_id, info in estimates.items()
                },
            }

    def known(self, request_id: str) -> bool:
        with self._lock:
            return request_id in self._queries

    def operator_started(self, request_id: str, node_id: object) -> None:
        if not isinstance(node_id, int):
            return
        with self._lock:
            entry = self._queries.get(request_id)
            if entry is None:
                return
            operator = entry["operators"].get(node_id)
            if operator is None:
                operator = OperatorProgress(node_id=node_id)
                entry["operators"][node_id] = operator
            operator.started = True

    def operator_finished(
        self,
        request_id: str,
        node_id: object,
        *,
        op: str = "",
        tuples: float = 0.0,
        pages: float = 0.0,
    ) -> None:
        """Mark an operator done and accumulate its actuals.  Adaptive
        re-execution may close the same operator twice; ``done`` is
        sticky and actuals take the latest observation."""
        if not isinstance(node_id, int):
            return
        with self._lock:
            entry = self._queries.get(request_id)
            if entry is None:
                return
            operator = entry["operators"].get(node_id)
            if operator is None:
                operator = OperatorProgress(node_id=node_id)
                entry["operators"][node_id] = operator
            if op:
                operator.op = op
            operator.started = True
            operator.done = True
            operator.actual_tuples = float(tuples)
            operator.actual_pages = float(pages)

    def finish(self, request_id: str) -> None:
        """Mark the whole request finished (fraction pins to 1.0)."""
        with self._lock:
            entry = self._queries.get(request_id)
            if entry is None:
                entry = {"finished": True, "operators": {}}
                self._queries[request_id] = entry
            entry["finished"] = True

    def forget(self, request_id: str) -> None:
        with self._lock:
            self._queries.pop(request_id, None)

    # -- readers (ticket / server side) -------------------------------- #

    def request_ids(self) -> list[str]:
        with self._lock:
            return sorted(self._queries)

    def progress(self, request_id: str) -> QueryProgress:
        """Snapshot one request (unknown ids report an empty, unfinished,
        fraction-0 progress — a ticket may ask before admission)."""
        with self._lock:
            entry = self._queries.get(request_id)
            if entry is None:
                return QueryProgress(
                    request_id=request_id,
                    total_operators=0,
                    started_operators=0,
                    completed_operators=0,
                    est_tuples=0.0,
                    actual_tuples=0.0,
                    actual_pages=0.0,
                    finished=False,
                )
            operators = tuple(
                OperatorProgress(
                    node_id=op.node_id,
                    op=op.op,
                    est_tuples=op.est_tuples,
                    actual_tuples=op.actual_tuples,
                    actual_pages=op.actual_pages,
                    started=op.started,
                    done=op.done,
                )
                for _, op in sorted(entry["operators"].items())
            )
        return QueryProgress(
            request_id=request_id,
            total_operators=len(operators),
            started_operators=sum(1 for op in operators if op.started),
            completed_operators=sum(1 for op in operators if op.done),
            est_tuples=sum(op.est_tuples for op in operators),
            actual_tuples=sum(op.actual_tuples for op in operators if op.done),
            actual_pages=sum(op.actual_pages for op in operators if op.done),
            finished=bool(entry["finished"]),
            operators=operators,
        )


class _ProgressSpanContext:
    """Wraps an inner span context so operator spans report into the
    board as they open and close."""

    def __init__(self, inner, board: ProgressBoard, request_id: str):
        self._inner = inner
        self._board = board
        self._request_id = request_id
        self._span: Optional[Span] = None

    def __enter__(self) -> Span:
        span = self._inner.__enter__()
        self._span = span
        if getattr(span, "kind", "") == "operator":
            self._board.operator_started(
                self._request_id, span.attrs.get("node_id")
            )
        return span

    def __exit__(self, exc_type, exc, tb):
        span = self._span
        if span is not None and getattr(span, "kind", "") == "operator":
            self._board.operator_finished(
                self._request_id,
                span.attrs.get("node_id"),
                op=str(span.attrs.get("op", "")),
                tuples=float(span.attrs.get("tuples_out", 0) or 0),
                pages=float(span.attrs.get("pages", 0) or 0),
            )
        return self._inner.__exit__(exc_type, exc, tb)


class ProgressTracer:
    """A tracer decorator: forwards every span/event to the wrapped
    recording tracer and additionally publishes operator lifecycle into a
    :class:`ProgressBoard`.  ``enabled`` mirrors the inner tracer, so the
    executors' fast-path checks keep their meaning."""

    def __init__(self, inner, board: ProgressBoard, request_id: str):
        self.inner = inner
        self.board = board
        self.request_id = request_id

    @property
    def enabled(self) -> bool:
        return bool(getattr(self.inner, "enabled", False))

    def span(self, name: str, kind: str = "", **attrs):
        inner_ctx = self.inner.span(name, kind=kind, **attrs)
        if kind != "operator":
            return inner_ctx
        return _ProgressSpanContext(inner_ctx, self.board, self.request_id)

    def event(self, name: str, **attrs) -> None:
        self.inner.event(name, **attrs)

    def __getattr__(self, name):
        # Renderers and tests reach through for roots/spans/events/render.
        return getattr(self.inner, name)


def operator_estimates(expr, cost_model=None) -> dict[int, dict]:
    """Per-operator estimates for a plan, keyed by the preorder node id
    the tracer stamps on operator spans.

    With a cost model the estimates come from the EXPLAIN machinery
    (:func:`repro.obs.explain.plan_report`), so the board shows the same
    figures EXPLAIN prints; without one, every operator is listed with a
    zero estimate (progress fractions still work — they count operators,
    not tuples)."""
    if cost_model is not None:
        from repro.obs.explain import plan_report

        # a report's preorder index IS its node_id (plan_report contract)
        return {
            node_id: {
                "op": type(report.node).__name__,
                "est_tuples": report.est_card,
            }
            for node_id, report in enumerate(plan_report(expr, cost_model))
        }
    estimates: dict[int, dict] = {}

    def go(node) -> None:
        node_id = len(estimates)
        estimates[node_id] = {
            "op": type(node).__name__, "est_tuples": 0.0
        }
        for child in getattr(node, "children", lambda: ())():
            go(child)

    go(expr)
    return estimates


# ---------------------------------------------------------------------- #
# planner calibration
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class CalibrationEntry:
    """One operator's estimate-vs-actual pairing from a measured run."""

    site: str
    query: str
    node_id: int
    op: str
    est_tuples: float
    actual_tuples: float

    @property
    def q_error(self) -> float:
        return qerror(self.est_tuples, self.actual_tuples)


def calibration_entries(
    env, queries: dict, site_name: str = ""
) -> list[CalibrationEntry]:
    """Execute every query in ``queries`` (cache off, recording tracer)
    and pair each operator's estimated cardinality with the tuples it
    actually produced."""
    from repro.obs.explain import plan_report
    from repro.obs.trace import RecordingTracer, spans_by_node
    from repro.options import QueryOptions

    entries: list[CalibrationEntry] = []
    for name, sql in sorted(queries.items()):
        expr = env.plan(sql, cache="off").best.expr
        tracer = RecordingTracer()
        env.execute(
            expr,
            options=QueryOptions(cache="off", tracer=tracer),
        )
        spans = spans_by_node(tracer)
        reports = plan_report(expr, env.cost_model)
        for node_id, report in enumerate(reports):
            span = spans.get(node_id)
            if span is None:
                continue
            entries.append(
                CalibrationEntry(
                    site=site_name,
                    query=name,
                    node_id=node_id,
                    op=type(report.node).__name__,
                    est_tuples=report.est_card,
                    actual_tuples=float(span.attrs.get("tuples_out", 0) or 0),
                )
            )
    return entries


def calibration_report(
    sites: Optional[list[str]] = None, worst: int = 10
) -> dict:
    """Run the calibration suite and aggregate drift per operator kind.

    ``sites`` defaults to the three seed sites plus two fuzzed schemes —
    the acceptance surface the issue names.  Returns a JSON-able report:
    per-site/query/operator entries, per-operator-kind aggregate q-error
    (count / mean / max), and the ``worst`` single estimates ranked by
    q-error — i.e. which :mod:`repro.stats` estimates to distrust."""
    from repro.qa.cli import build_site

    if sites is None:
        sites = ["university", "bibliography", "movies", "fuzz:17", "fuzz:42"]
    entries: list[CalibrationEntry] = []
    for site in sites:
        env, queries = build_site(site)
        entries.extend(calibration_entries(env, queries, site_name=site))

    by_op: dict[str, list[float]] = {}
    for entry in entries:
        by_op.setdefault(entry.op, []).append(entry.q_error)
    aggregates = {
        op: {
            "count": len(errors),
            "mean_q_error": sum(errors) / len(errors),
            "max_q_error": max(errors),
        }
        for op, errors in sorted(by_op.items())
    }
    ranked = sorted(entries, key=lambda e: e.q_error, reverse=True)
    return {
        "sites": list(sites),
        "entries": [
            {
                "site": e.site,
                "query": e.query,
                "node_id": e.node_id,
                "op": e.op,
                "est_tuples": e.est_tuples,
                "actual_tuples": e.actual_tuples,
                "q_error": e.q_error,
            }
            for e in entries
        ],
        "by_operator": aggregates,
        "worst": [
            {
                "site": e.site,
                "query": e.query,
                "node_id": e.node_id,
                "op": e.op,
                "est_tuples": e.est_tuples,
                "actual_tuples": e.actual_tuples,
                "q_error": e.q_error,
            }
            for e in ranked[:worst]
        ],
    }


def render_calibration(report: dict) -> str:
    """Human-readable calibration summary (the CLI prints this)."""
    lines = [
        "planner calibration — q-error = max(est/actual, actual/est)",
        f"sites: {', '.join(report['sites'])}",
        "",
        f"{'operator':<12} {'n':>4} {'mean q':>8} {'max q':>8}",
    ]
    for op, agg in report["by_operator"].items():
        lines.append(
            f"{op:<12} {agg['count']:>4} {agg['mean_q_error']:>8.2f} "
            f"{agg['max_q_error']:>8.2f}"
        )
    lines.append("")
    lines.append("worst estimates:")
    for item in report["worst"]:
        lines.append(
            f"  q={item['q_error']:>7.2f}  {item['site']}/{item['query']} "
            f"node {item['node_id']} ({item['op']}): "
            f"est {item['est_tuples']:.1f} vs actual "
            f"{item['actual_tuples']:.0f}"
        )
    return "\n".join(lines)
