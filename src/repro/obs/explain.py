"""The one plan-printing code path: EXPLAIN and EXPLAIN ANALYZE.

Every plan rendering with numbers on it goes through :func:`plan_report`,
which walks a plan once and produces one :class:`NodeReport` per operator:
the tree-drawing prefix, the operator label, the cost model's estimates
(cardinality, C(E), the node's *own* page cost), and — when the plan was
executed under a :class:`~repro.obs.trace.RecordingTracer` — the measured
span (pages, tuples out, simulated seconds).

Two formatters consume the reports:

* :func:`render_cost_explain` — the indented estimate breakdown
  historically produced by ``CostModel.explain`` (which now delegates
  here);
* :func:`render_annotated_tree` — the Figures 2–4-style ASCII tree with
  estimated and, under ``EXPLAIN ANALYZE``, measured columns side by
  side.  Measured *own* pages are counter deltas (node minus children),
  so the column sums exactly to the run's ``CostSummary.pages``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.algebra.ast import (
    EntryPointScan,
    Expr,
    ExternalRelScan,
    FollowLink,
    Join,
    Project,
    Select,
    Unnest,
)
from repro.errors import AlgebraError
from repro.obs.trace import Span

__all__ = [
    "NodeReport",
    "plan_report",
    "render_cost_explain",
    "render_annotated_tree",
]


@dataclass
class NodeReport:
    """One plan operator with its estimated (and measured) numbers."""

    node: Expr
    depth: int
    prefix: str                #: tree-drawing prefix ("│   └── " etc.)
    label: str                 #: legacy estimate label ("Follow <attr>")
    tree_label: str            #: plan-tree label ("→ <attr>  (to <P>)")
    est_card: float
    est_cost: float
    est_own: float             #: this node's own estimated page cost
    span: Optional[Span] = None  #: measured operator span, when analyzed

    @property
    def measured_pages(self) -> Optional[int]:
        if self.span is None:
            return None
        return self.span.attrs.get("pages")

    @property
    def measured_own(self) -> Optional[int]:
        """Own measured pages: this span's delta minus its children's."""
        if self.span is None:
            return None
        total = self.span.attrs.get("pages", 0)
        children = sum(
            c.attrs.get("pages", 0)
            for c in self.span.children
            if c.kind == "operator"
        )
        return total - children

    @property
    def measured_tuples(self) -> Optional[int]:
        if self.span is None:
            return None
        return self.span.attrs.get("tuples_out")

    @property
    def measured_seconds(self) -> Optional[float]:
        if self.span is None:
            return None
        return self.span.attrs.get("seconds")

    @property
    def q_error(self) -> Optional[float]:
        """Cardinality q-error, ``max(est/actual, actual/est)`` with both
        sides clamped to >= 1 (None until the node was measured).  The
        calibration report aggregates exactly this statistic."""
        tuples = self.measured_tuples
        if tuples is None:
            return None
        from repro.obs.progress import qerror

        return qerror(self.est_card, tuples)


def _estimate_label(node: Expr) -> str:
    label = type(node).__name__
    if isinstance(node, EntryPointScan):
        label = f"EntryPoint {node.name}"
    elif isinstance(node, FollowLink):
        label = f"Follow {node.link_attr}"
    elif isinstance(node, Unnest):
        label = f"Unnest {node.attr}"
    return label


def _tree_label(node: Expr, scheme=None) -> str:
    if isinstance(node, EntryPointScan):
        return f"{node.name}  [entry point]"
    if isinstance(node, ExternalRelScan):
        return f"{node.name}  [external relation]"
    if isinstance(node, Select):
        return f"σ {node.predicate}"
    if isinstance(node, Project):
        cols = ", ".join(
            o if o == i else f"{i} as {o}" for o, i in node.outputs
        )
        return f"π {cols}"
    if isinstance(node, Join):
        cond = ", ".join(f"{lhs}={rhs}" for lhs, rhs in node.on)
        return f"⋈ {cond}"
    if isinstance(node, Unnest):
        return f"∘ {node.attr}"
    if isinstance(node, FollowLink):
        target = node.alias
        if scheme is not None:
            target = node.target_alias(scheme)
        return f"→ {node.link_attr}  (to {target or '?'})"
    raise AlgebraError(f"cannot render {type(node).__name__}")


def plan_report(
    expr: Expr,
    cost_model,
    scheme=None,
    spans: Optional[dict[int, Span]] = None,
) -> list[NodeReport]:
    """Walk ``expr`` depth-first and report every operator once.

    ``cost_model`` supplies the estimates (anything with ``_estimate``'s
    public faces ``cardinality``/``cost``); ``spans`` (from
    :func:`~repro.obs.trace.spans_by_node`) attaches measured operator
    spans by the stable preorder ``node_id`` every executor stamps on its
    spans.  This walk *is* preorder (parent appended before children,
    children in ``children()`` order), so a node's report index is its
    ``node_id`` — the pairing is positional, immune to the ``id()``
    collisions that shared or GC'd subtrees used to cause.
    """
    reports: list[NodeReport] = []

    def go(node: Expr, depth: int, prefix: str, is_last: bool, is_root: bool):
        connector = "" if is_root else ("└── " if is_last else "├── ")
        est_cost = cost_model.cost(node)
        est_own = est_cost - sum(cost_model.cost(c) for c in node.children())
        node_id = len(reports)  # preorder position == span node_id
        reports.append(
            NodeReport(
                node=node,
                depth=depth,
                prefix=prefix + connector,
                label=_estimate_label(node),
                tree_label=_tree_label(node, scheme),
                est_card=cost_model.cardinality(node),
                est_cost=est_cost,
                est_own=est_own,
                span=spans.get(node_id) if spans else None,
            )
        )
        child_prefix = (
            prefix if is_root else prefix + ("    " if is_last else "│   ")
        )
        kids = node.children()
        for i, child in enumerate(kids):
            go(child, depth + 1, child_prefix, i == len(kids) - 1, False)

    go(expr, 0, "", True, True)
    return reports


def render_cost_explain(expr: Expr, cost_model) -> str:
    """Indented per-node estimate breakdown (``CostModel.explain``)."""
    lines = [
        f"{'  ' * r.depth}{r.label}: card={r.est_card:.2f} "
        f"cost={r.est_cost:.2f} (+{r.est_own:.2f})"
        for r in plan_report(expr, cost_model)
    ]
    return "\n".join(lines)


def render_annotated_tree(
    expr: Expr,
    cost_model,
    scheme=None,
    spans: Optional[dict[int, Span]] = None,
) -> str:
    """ASCII plan tree with aligned estimate (and measured) columns.

    Without ``spans`` this is EXPLAIN: each operator shows its estimated
    cardinality and own page cost.  With ``spans`` it is EXPLAIN ANALYZE:
    a measured column — own pages actually downloaded, tuples produced,
    simulated seconds — appears beside every estimate, and the own-page
    column sums exactly to the run's total page count."""
    reports = plan_report(expr, cost_model, scheme=scheme, spans=spans)
    width = max(len(r.prefix + r.tree_label) for r in reports) + 2
    lines = []
    for r in reports:
        left = (r.prefix + r.tree_label).ljust(width)
        est = f"est: {r.est_own:6.2f} pages, card {r.est_card:8.2f}"
        if r.span is not None:
            meas = (
                f"  measured: {r.measured_own:4d} pages, "
                f"{r.measured_tuples:5d} tuples, "
                f"{r.measured_seconds:7.2f}s, "
                f"q-err {r.q_error:6.2f}"
            )
        elif spans is not None:
            meas = "  measured: (not evaluated)"
        else:
            meas = ""
        lines.append(f"{left}{est}{meas}")
    return "\n".join(lines)
