"""PNF nested-relations engine.

The paper views a set of similar pages as an *instance of a page-scheme*:
a nested relation in Partitioned Normal Form (PNF, footnote 5).  This
package provides the generic nested-relation machinery the navigational
algebra is built on:

* :mod:`repro.nested.schema` — relation schemas with provenance-tracked
  fields (atoms and nested lists);
* :mod:`repro.nested.relation` — the :class:`Relation` container;
* :mod:`repro.nested.operations` — select / project / join / unnest / nest /
  rename / distinct / union / difference;
* :mod:`repro.nested.pnf` — Partitioned-Normal-Form validation.
"""

from repro.nested.schema import Field, Provenance, RelationSchema
from repro.nested.relation import Relation
from repro.nested.operations import (
    select,
    project,
    join,
    product,
    unnest,
    nest,
    rename,
    distinct,
    union,
    difference,
)
from repro.nested.pnf import check_pnf, is_pnf
from repro.nested.decompose import decompose, recompose

__all__ = [
    "Field",
    "Provenance",
    "RelationSchema",
    "Relation",
    "select",
    "project",
    "join",
    "product",
    "unnest",
    "nest",
    "rename",
    "distinct",
    "union",
    "difference",
    "check_pnf",
    "is_pnf",
    "decompose",
    "recompose",
]
