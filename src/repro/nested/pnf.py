"""Partitioned Normal Form validation.

The paper assumes page-relations are nested relations in PNF (footnote 5,
citing Roth/Korth/Silberschatz).  A nested relation is in PNF when:

1. its atomic (mono-valued) attributes form a key of the relation — no two
   tuples agree on all atoms; and
2. every nested sub-relation is recursively in PNF.

PNF is what makes nested relations decomposable into flat relations without
information loss, which Section 8 relies on to store the materialized ADM
view in a relational DBMS.
"""

from __future__ import annotations

from repro.errors import PNFError
from repro.nested.relation import Relation
from repro.nested.schema import RelationSchema

__all__ = ["check_pnf", "is_pnf"]


def _check_rows(schema: RelationSchema, rows: list[dict], path: str) -> None:
    atom_names = schema.atom_names()
    list_fields = [f for f in schema if f.is_list]
    seen: dict[tuple, int] = {}
    for i, row in enumerate(rows):
        key = tuple(row[n] for n in atom_names)
        if key in seen:
            raise PNFError(
                f"{path}: rows {seen[key]} and {i} agree on all atomic "
                f"attributes {atom_names} = {key!r}"
            )
        seen[key] = i
        for field in list_fields:
            assert field.elem is not None
            _check_rows(field.elem, row[field.name], f"{path}.{field.name}")


def check_pnf(relation: Relation) -> None:
    """Raise :class:`~repro.errors.PNFError` if ``relation`` violates PNF."""
    _check_rows(relation.schema, relation.rows, "<root>")


def is_pnf(relation: Relation) -> bool:
    """True when ``relation`` is in Partitioned Normal Form."""
    try:
        check_pnf(relation)
        return True
    except PNFError:
        return False
