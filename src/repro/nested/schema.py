"""Relation schemas for nested relations.

A :class:`RelationSchema` is an ordered collection of :class:`Field` values.
Each field is either an *atom* (text, image URL, link, page URL) or a *list*
carrying a sub-schema.  Fields optionally record :class:`Provenance` — the
page-scheme and attribute path they originate from — which the cost model
uses to look up statistics (number of distinct values, repetition factors)
even deep inside an algebraic expression.

Runtime rows are plain dicts keyed by field name; the algebra layer uses
qualified names (``"ProfPage.PName"``) so that joins never clash.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Iterator, Optional, Tuple

from repro.adm.page_scheme import AttrPath
from repro.adm.webtypes import ListType, WebType
from repro.errors import SchemaError

__all__ = ["Provenance", "Field", "RelationSchema"]


@dataclass(frozen=True)
class Provenance:
    """Where a field came from: attribute ``path`` of page-scheme ``scheme``.

    ``scheme`` is the *alias* used in the expression (usually the page-scheme
    name itself); ``base_scheme`` is always the real page-scheme name, so the
    cost model can find statistics even when a page-scheme is navigated twice
    under different aliases.
    """

    scheme: str
    path: AttrPath
    base_scheme: str

    @classmethod
    def of(cls, scheme: str, path: AttrPath | str, base_scheme: Optional[str] = None):
        if isinstance(path, str):
            path = AttrPath.parse(path)
        return cls(scheme=scheme, path=path, base_scheme=base_scheme or scheme)

    def __str__(self) -> str:
        return f"{self.scheme}.{self.path}"


@dataclass(frozen=True)
class Field:
    """A named field of a relation schema.

    ``wtype`` is the ADM web type of the field.  List-typed fields carry the
    sub-schema of their elements in ``elem``.
    """

    name: str
    wtype: WebType
    elem: Optional["RelationSchema"] = None
    provenance: Optional[Provenance] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("field names must be non-empty")
        if self.is_list and self.elem is None:
            raise SchemaError(f"list field {self.name!r} needs an element schema")
        if not self.is_list and self.elem is not None:
            raise SchemaError(
                f"atom field {self.name!r} must not have an element schema"
            )

    @property
    def is_list(self) -> bool:
        return isinstance(self.wtype, ListType)

    def renamed(self, name: str) -> "Field":
        return replace(self, name=name)

    def __str__(self) -> str:
        if self.is_list:
            return f"{self.name}: [{self.elem}]"
        return f"{self.name}: {self.wtype}"


class RelationSchema:
    """An ordered, name-unique collection of fields."""

    def __init__(self, fields: Iterable[Field]):
        self.fields: Tuple[Field, ...] = tuple(fields)
        self._by_name: dict[str, Field] = {}
        for f in self.fields:
            if f.name in self._by_name:
                raise SchemaError(f"duplicate field name {f.name!r}")
            self._by_name[f.name] = f

    # ------------------------------------------------------------------ #
    # lookup
    # ------------------------------------------------------------------ #

    def field(self, name: str) -> Field:
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(
                f"no field {name!r}; have {sorted(self._by_name)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def names(self) -> Tuple[str, ...]:
        return tuple(f.name for f in self.fields)

    def atom_names(self) -> Tuple[str, ...]:
        return tuple(f.name for f in self.fields if not f.is_list)

    def list_names(self) -> Tuple[str, ...]:
        return tuple(f.name for f in self.fields if f.is_list)

    def __iter__(self) -> Iterator[Field]:
        return iter(self.fields)

    def __len__(self) -> int:
        return len(self.fields)

    # ------------------------------------------------------------------ #
    # derivation
    # ------------------------------------------------------------------ #

    def project(self, names: Iterable[str]) -> "RelationSchema":
        """Schema restricted to ``names``, in the order given."""
        return RelationSchema([self.field(n) for n in names])

    def concat(self, other: "RelationSchema") -> "RelationSchema":
        """Schema of a join/product; field names must be disjoint."""
        clash = set(self.names()) & set(other.names())
        if clash:
            raise SchemaError(f"join field-name clash: {sorted(clash)}")
        return RelationSchema(self.fields + other.fields)

    def drop(self, name: str) -> "RelationSchema":
        self.field(name)  # raise if missing
        return RelationSchema([f for f in self.fields if f.name != name])

    def rename(self, mapping: dict[str, str]) -> "RelationSchema":
        """Rename fields according to ``mapping`` (old → new)."""
        for old in mapping:
            self.field(old)  # raise if missing
        return RelationSchema(
            [f.renamed(mapping.get(f.name, f.name)) for f in self.fields]
        )

    def unnest(self, name: str) -> "RelationSchema":
        """Schema after unnesting list field ``name``: the list field is
        replaced (in place) by its element fields."""
        target = self.field(name)
        if not target.is_list:
            raise SchemaError(f"cannot unnest atom field {name!r}")
        assert target.elem is not None
        new_fields: list[Field] = []
        for f in self.fields:
            if f.name == name:
                new_fields.extend(target.elem.fields)
            else:
                new_fields.append(f)
        return RelationSchema(new_fields)

    # ------------------------------------------------------------------ #

    def __eq__(self, other: object) -> bool:
        return isinstance(other, RelationSchema) and self.fields == other.fields

    def __hash__(self) -> int:
        return hash(self.fields)

    def __str__(self) -> str:
        return ", ".join(str(f) for f in self.fields)

    def __repr__(self) -> str:
        return f"RelationSchema({self})"
