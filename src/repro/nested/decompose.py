"""PNF decomposition into flat relations, and recomposition.

Paper, Section 8: "since we assume that nested relations are in PNF, they
can be easily decomposed in flat relations and stored in a relational
DBMS."  This module implements that decomposition:

* every nesting level becomes one flat relation;
* a child relation carries its parent's atomic attributes as a foreign key
  (PNF guarantees the parent's atoms form a key);
* :func:`recompose` inverts the process exactly (PNF round-trip), modulo
  tuples whose nested lists were empty on *inner* levels — an empty list
  simply produces no child rows, and recomposition restores it as empty.

Flat relation names are ``<base>`` for the root and ``<base>__<list path>``
for nested levels.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import SchemaError
from repro.nested.pnf import check_pnf
from repro.nested.relation import Relation
from repro.nested.schema import Field, RelationSchema

__all__ = ["decompose", "recompose"]


def _flat_schema(schema: RelationSchema, extra_key: list[Field]) -> RelationSchema:
    atoms = [f for f in schema if not f.is_list]
    clash = {f.name for f in extra_key} & {f.name for f in atoms}
    if clash:
        raise SchemaError(
            f"cannot decompose: parent key attributes {sorted(clash)} clash "
            "with child attributes"
        )
    return RelationSchema(extra_key + atoms)


def decompose(relation: Relation, base_name: str) -> Dict[str, Relation]:
    """Split a PNF nested relation into flat relations.

    Returns ``{name: flat relation}``; raises
    :class:`~repro.errors.PNFError` when the input violates PNF (the
    decomposition would lose information otherwise).
    """
    check_pnf(relation)
    result: Dict[str, Relation] = {}

    def walk(
        name: str,
        schema: RelationSchema,
        rows: list[dict],
        parent_key: list[Field],
        parent_values_of: dict,
    ) -> None:
        flat = _flat_schema(schema, parent_key)
        atom_names = [f.name for f in schema if not f.is_list]
        flat_rows = []
        for row in rows:
            flat_row = dict(parent_values_of.get(id(row), {}))
            for n in atom_names:
                flat_row[n] = row[n]
            flat_rows.append(flat_row)
        result[name] = Relation(flat, flat_rows)

        key_fields = parent_key + [f for f in schema if not f.is_list]
        for field in schema:
            if not field.is_list:
                continue
            child_rows: list[dict] = []
            child_parent_values: dict = {}
            for row in rows:
                key_values = dict(parent_values_of.get(id(row), {}))
                for n in atom_names:
                    key_values[n] = row[n]
                for sub in row[field.name]:
                    child_rows.append(sub)
                    child_parent_values[id(sub)] = key_values
            assert field.elem is not None
            walk(
                f"{name}__{field.name}",
                field.elem,
                child_rows,
                key_fields,
                child_parent_values,
            )

    walk(base_name, relation.schema, relation.rows, [], {})
    return result


def recompose(
    flats: Dict[str, Relation],
    base_name: str,
    schema: RelationSchema,
) -> Relation:
    """Rebuild the nested relation from its decomposition.

    ``schema`` is the original nested schema (decomposition does not store
    it).  Raises :class:`~repro.errors.SchemaError` when a required flat
    relation is missing.
    """

    def rebuild(
        name: str,
        level_schema: RelationSchema,
        key_names: list[str],
    ) -> list[dict]:
        if name not in flats:
            raise SchemaError(f"missing flat relation {name!r}")
        flat = flats[name]
        atom_names = [f.name for f in level_schema if not f.is_list]
        list_fields = [f for f in level_schema if f.is_list]

        children: dict[str, dict] = {}
        next_keys = key_names + atom_names
        for field in list_fields:
            assert field.elem is not None
            child_rows = rebuild(
                f"{name}__{field.name}", field.elem, next_keys
            )
            grouped: dict = {}
            for child in child_rows:
                key = tuple(child.pop("__parent_key__"))
                grouped.setdefault(key, []).append(child)
            children[field.name] = grouped

        rows = []
        for flat_row in flat.rows:
            own_key = tuple(flat_row[n] for n in next_keys)
            row = {n: flat_row[n] for n in atom_names}
            for field in list_fields:
                row[field.name] = children[field.name].get(own_key, [])
            if key_names:
                # the parent groups its children by the parent's full key,
                # which is exactly the ancestor columns this level carries
                row["__parent_key__"] = [flat_row[n] for n in key_names]
            rows.append(row)
        return rows

    rows = rebuild(base_name, schema, [])
    return Relation(schema, rows)
