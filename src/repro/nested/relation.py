"""The :class:`Relation` container: a schema plus a list of rows.

Rows are plain dicts keyed by field name.  Atom fields hold ``str`` values
(or ``None`` for nulls from optional attributes); list fields hold
``list[dict]`` sub-rows keyed by the element schema's field names.

Relations are *value-like*: operations never mutate their inputs; they
return new relations (possibly sharing row dicts, which callers must treat
as read-only).  Convenience methods delegate to
:mod:`repro.nested.operations`.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Iterable, Iterator, Optional, Sequence

from repro.errors import SchemaError
from repro.nested.schema import RelationSchema

__all__ = ["Relation", "canonical_value", "canonical_row", "relation_digest"]

Row = dict


def canonical_value(value: object) -> object:
    """Hashable canonical form of a field value (lists become frozensets of
    canonical sub-rows, since the model blurs lists and sets)."""
    if isinstance(value, list):
        return frozenset(canonical_row(sub) for sub in value)
    return value


def canonical_row(row: Row) -> tuple:
    """Hashable canonical form of a row: sorted (name, canonical) pairs."""
    return tuple(sorted((k, canonical_value(v)) for k, v in row.items()))


def _digest_value(value: object) -> tuple:
    if value is None:
        return ("null",)
    if isinstance(value, list):
        return ("list", tuple(sorted(_digest_row(sub) for sub in value)))
    return ("atom", str(value))


def _digest_row(row: Row) -> tuple:
    return tuple((key, _digest_value(row[key])) for key in sorted(row))


def relation_digest(relation: "Relation") -> str:
    """Stable hex digest of a relation's canonical content.

    Set semantics (row order and duplicates are irrelevant, as in
    :meth:`Relation.canonical`), schema-name sensitive, deterministic
    across processes — so digests from two report or journal files can be
    compared directly.  This is the digest the QA differential oracle
    records per cell and the event journal records per request."""
    names = tuple(sorted(relation.schema.names()))
    rows = sorted({_digest_row(row) for row in relation.rows})
    payload = repr((names, rows)).encode()
    return hashlib.sha256(payload).hexdigest()[:16]


class Relation:
    """A nested relation: ``schema`` + ``rows``.

    >>> schema = RelationSchema([Field("DName", TEXT)])        # doctest: +SKIP
    >>> r = Relation(schema, [{"DName": "CS"}])                # doctest: +SKIP
    """

    def __init__(
        self,
        schema: RelationSchema,
        rows: Iterable[Row] = (),
        validate: bool = False,
    ):
        self.schema = schema
        self.rows: list[Row] = list(rows)
        if validate:
            self._validate()

    def _validate(self) -> None:
        names = set(self.schema.names())
        for i, row in enumerate(self.rows):
            if set(row) != names:
                missing = names - set(row)
                extra = set(row) - names
                raise SchemaError(
                    f"row {i} does not match schema "
                    f"(missing={sorted(missing)}, extra={sorted(extra)})"
                )
            for field in self.schema:
                value = row[field.name]
                if field.is_list:
                    if not isinstance(value, list):
                        raise SchemaError(
                            f"row {i}: field {field.name!r} should be a list"
                        )
                elif isinstance(value, list):
                    raise SchemaError(
                        f"row {i}: atom field {field.name!r} holds a list"
                    )

    # ------------------------------------------------------------------ #
    # basics
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def is_empty(self) -> bool:
        return not self.rows

    def column(self, name: str) -> list:
        """All values of field ``name``, in row order."""
        self.schema.field(name)
        return [row[name] for row in self.rows]

    def distinct_values(self, name: str) -> set:
        """Distinct non-null values of atom field ``name``."""
        field = self.schema.field(name)
        if field.is_list:
            raise SchemaError(f"distinct_values on list field {name!r}")
        return {row[name] for row in self.rows if row[name] is not None}

    # ------------------------------------------------------------------ #
    # comparison helpers (set semantics — the model blurs lists and sets)
    # ------------------------------------------------------------------ #

    def canonical(self) -> frozenset:
        """Set of canonical rows; two relations with the same canonical set
        hold the same information."""
        return frozenset(canonical_row(row) for row in self.rows)

    def same_contents(self, other: "Relation") -> bool:
        """True when both relations hold the same set of tuples (field names
        must coincide; field order is irrelevant)."""
        if set(self.schema.names()) != set(other.schema.names()):
            return False
        return self.canonical() == other.canonical()

    # ------------------------------------------------------------------ #
    # operation façade (implementations in repro.nested.operations)
    # ------------------------------------------------------------------ #

    def select(self, predicate: Callable[[Row], bool]) -> "Relation":
        from repro.nested.operations import select

        return select(self, predicate)

    def project(
        self, names: Sequence[str], renames: Optional[dict[str, str]] = None
    ) -> "Relation":
        from repro.nested.operations import project

        return project(self, names, renames)

    def join(
        self,
        other: "Relation",
        on: Sequence[tuple[str, str]],
        predicate: Optional[Callable[[Row, Row], bool]] = None,
    ) -> "Relation":
        from repro.nested.operations import join

        return join(self, other, on, predicate)

    def product(self, other: "Relation") -> "Relation":
        from repro.nested.operations import product

        return product(self, other)

    def unnest(self, name: str) -> "Relation":
        from repro.nested.operations import unnest

        return unnest(self, name)

    def nest(self, names: Sequence[str], into: str) -> "Relation":
        from repro.nested.operations import nest

        return nest(self, names, into)

    def rename(self, mapping: dict[str, str]) -> "Relation":
        from repro.nested.operations import rename

        return rename(self, mapping)

    def distinct(self) -> "Relation":
        from repro.nested.operations import distinct

        return distinct(self)

    def union(self, other: "Relation") -> "Relation":
        from repro.nested.operations import union

        return union(self, other)

    def difference(self, other: "Relation") -> "Relation":
        from repro.nested.operations import difference

        return difference(self, other)

    # ------------------------------------------------------------------ #
    # display
    # ------------------------------------------------------------------ #

    def to_table(self, limit: Optional[int] = None) -> str:
        """ASCII table rendering (nested lists shown as ``<n rows>``)."""
        names = self.schema.names()
        shown = self.rows if limit is None else self.rows[:limit]

        def cell(row: Row, name: str) -> str:
            value = row[name]
            if isinstance(value, list):
                return f"<{len(value)} rows>"
            return "NULL" if value is None else str(value)

        widths = {n: len(n) for n in names}
        rendered = []
        for row in shown:
            cells = {n: cell(row, n) for n in names}
            rendered.append(cells)
            for n in names:
                widths[n] = max(widths[n], len(cells[n]))
        sep = "+" + "+".join("-" * (widths[n] + 2) for n in names) + "+"
        lines = [sep, "|" + "|".join(f" {n:<{widths[n]}} " for n in names) + "|", sep]
        for cells in rendered:
            lines.append(
                "|" + "|".join(f" {cells[n]:<{widths[n]}} " for n in names) + "|"
            )
        lines.append(sep)
        if limit is not None and len(self.rows) > limit:
            lines.append(f"... {len(self.rows) - limit} more rows")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Relation({len(self.rows)} rows; {self.schema})"
