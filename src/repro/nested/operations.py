"""Operations over nested relations.

These are the value-level operations the navigational algebra compiles to:
selection, projection (with optional renaming), equi-join (plus general
theta-join via a row predicate), cartesian product, unnest (the paper's
``∘`` on the instance level), nest (its inverse, used by the materialized
store and by PNF round-trip tests), rename, duplicate elimination, union and
difference.

All operations are pure: they build new :class:`Relation` objects and never
mutate their inputs.  Rows may be shared between input and output; callers
must treat rows as read-only.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.errors import SchemaError
from repro.nested.relation import Relation, Row, canonical_row, canonical_value
from repro.nested.schema import Field, RelationSchema

__all__ = [
    "select",
    "project",
    "join",
    "product",
    "unnest",
    "nest",
    "rename",
    "distinct",
    "union",
    "difference",
]


def select(relation: Relation, predicate: Callable[[Row], bool]) -> Relation:
    """Rows of ``relation`` satisfying ``predicate``."""
    return Relation(relation.schema, [r for r in relation.rows if predicate(r)])


def project(
    relation: Relation,
    names: Sequence[str],
    renames: Optional[dict[str, str]] = None,
) -> Relation:
    """Projection onto ``names`` (with optional old→new renaming applied to
    the output), eliminating duplicates as in set-based relational algebra."""
    renames = renames or {}
    schema = relation.schema.project(names)
    if renames:
        schema = schema.rename(renames)
    out_names = [(n, renames.get(n, n)) for n in names]
    rows: list[Row] = []
    seen: set = set()
    for row in relation.rows:
        new_row = {new: row[old] for old, new in out_names}
        key = canonical_row(new_row)
        if key not in seen:
            seen.add(key)
            rows.append(new_row)
    return Relation(schema, rows)


def join(
    left: Relation,
    right: Relation,
    on: Sequence[tuple[str, str]],
    predicate: Optional[Callable[[Row, Row], bool]] = None,
) -> Relation:
    """Equi-join on the ``(left_field, right_field)`` pairs in ``on``, with
    an optional extra theta predicate.  Field names must be disjoint.

    Null join keys never match (SQL semantics), which matters for optional
    link attributes.
    """
    schema = left.schema.concat(right.schema)
    for lname, _ in on:
        left.schema.field(lname)
    for _, rname in on:
        right.schema.field(rname)
    if not on and predicate is None:
        return product(left, right)

    rows: list[Row] = []
    if on:
        # hash join on the first pair, filter on the rest
        first_left, first_right = on[0]
        buckets: dict[object, list[Row]] = {}
        for rrow in right.rows:
            key = canonical_value(rrow[first_right])
            if key is not None:
                buckets.setdefault(key, []).append(rrow)
        rest = on[1:]
        for lrow in left.rows:
            key = canonical_value(lrow[first_left])
            if key is None:
                continue
            for rrow in buckets.get(key, ()):
                if any(
                    lrow[ln] is None or lrow[ln] != rrow[rn] for ln, rn in rest
                ):
                    continue
                if predicate is not None and not predicate(lrow, rrow):
                    continue
                rows.append({**lrow, **rrow})
    else:
        assert predicate is not None
        for lrow in left.rows:
            for rrow in right.rows:
                if predicate(lrow, rrow):
                    rows.append({**lrow, **rrow})
    return Relation(schema, rows)


def product(left: Relation, right: Relation) -> Relation:
    """Cartesian product; field names must be disjoint."""
    schema = left.schema.concat(right.schema)
    rows = [{**lrow, **rrow} for lrow in left.rows for rrow in right.rows]
    return Relation(schema, rows)


def unnest(relation: Relation, name: str) -> Relation:
    """The paper's unnest-page operator ``R ∘ A`` at the instance level.

    Each row is expanded into one row per element of its ``name`` list; rows
    whose list is empty disappear (standard nested-relation unnest).
    """
    field = relation.schema.field(name)
    if not field.is_list:
        raise SchemaError(f"cannot unnest atom field {name!r}")
    schema = relation.schema.unnest(name)
    rows: list[Row] = []
    for row in relation.rows:
        for sub in row[name]:
            new_row = {k: v for k, v in row.items() if k != name}
            new_row.update(sub)
            rows.append(new_row)
    return Relation(schema, rows)


def nest(relation: Relation, names: Sequence[str], into: str) -> Relation:
    """Inverse of unnest: group rows by all fields *not* in ``names`` and
    collect the ``names`` fields into a list field called ``into``.

    The nested field's element schema reuses the grouped fields.  Producing
    PNF output requires the grouping fields to functionally determine
    nothing weird — which nest guarantees by construction (one group per
    distinct outer value).
    """
    from repro.adm.webtypes import ListType

    for n in names:
        field = relation.schema.field(n)
        if field.is_list:
            raise SchemaError(f"cannot nest list field {n!r} (flatten first)")
    if into in set(relation.schema.names()) - set(names):
        raise SchemaError(f"nest target name {into!r} clashes with a kept field")

    kept_fields = [f for f in relation.schema if f.name not in set(names)]
    elem_fields = [relation.schema.field(n) for n in names]
    elem_schema = RelationSchema(elem_fields)
    list_type = ListType(
        tuple((f.name, f.wtype) for f in elem_fields)
    )
    schema = RelationSchema(kept_fields + [Field(into, list_type, elem=elem_schema)])

    groups: dict[tuple, Row] = {}
    order: list[tuple] = []
    for row in relation.rows:
        outer = {f.name: row[f.name] for f in kept_fields}
        key = canonical_row(outer)
        if key not in groups:
            outer[into] = []
            groups[key] = outer
            order.append(key)
        inner = {n: row[n] for n in names}
        bucket = groups[key][into]
        if all(canonical_row(existing) != canonical_row(inner) for existing in bucket):
            bucket.append(inner)
    return Relation(schema, [groups[k] for k in order])


def rename(relation: Relation, mapping: dict[str, str]) -> Relation:
    """Rename fields (old → new) in schema and rows."""
    schema = relation.schema.rename(mapping)
    rows = [
        {mapping.get(k, k): v for k, v in row.items()} for row in relation.rows
    ]
    return Relation(schema, rows)


def distinct(relation: Relation) -> Relation:
    """Duplicate elimination (by canonical row)."""
    rows: list[Row] = []
    seen: set = set()
    for row in relation.rows:
        key = canonical_row(row)
        if key not in seen:
            seen.add(key)
            rows.append(row)
    return Relation(relation.schema, rows)


def _require_compatible(left: Relation, right: Relation, op: str) -> None:
    if set(left.schema.names()) != set(right.schema.names()):
        raise SchemaError(
            f"{op} requires identical field names: "
            f"{sorted(left.schema.names())} vs {sorted(right.schema.names())}"
        )


def union(left: Relation, right: Relation) -> Relation:
    """Set union (duplicates eliminated); schemas must share field names."""
    _require_compatible(left, right, "union")
    return distinct(Relation(left.schema, left.rows + list(right.rows)))


def difference(left: Relation, right: Relation) -> Relation:
    """Set difference ``left - right``; schemas must share field names."""
    _require_compatible(left, right, "difference")
    right_keys = {canonical_row(row) for row in right.rows}
    rows = [row for row in left.rows if canonical_row(row) not in right_keys]
    return Relation(left.schema, rows)
