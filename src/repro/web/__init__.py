"""Simulated web substrate.

The paper's cost model counts only network interactions: full page downloads
(GETs) and, for materialized-view maintenance, "light connections" that
exchange just an error flag and the last-modification date (HEADs).  This
package provides an in-process web that measures exactly those quantities:

* :mod:`repro.web.resources` — a served resource (HTML + last-modified);
* :mod:`repro.web.server` — URL → resource mapping with a mutation API that
  bumps modification dates (the autonomous "site manager"), plus a
  :class:`FaultPolicy` injecting deterministic transient failures;
* :mod:`repro.web.client` — GET/HEAD client with an :class:`AccessLog`, a
  concurrent batched fetch engine (:meth:`WebClient.get_batch`) governed by
  :class:`FetchConfig`, and transparent :class:`RetryPolicy` retries;
* :mod:`repro.web.cache` — the cross-query LRU :class:`PageCache` with its
  :class:`CachePolicy` (off / per-query / cross-query light-connection
  revalidation), the URL-hash-partitioned :class:`ShardedPageCache`, and
  the :class:`SingleFlight` in-flight download dedup.
"""

from repro.web.resources import HeadResponse, WebResource
from repro.web.server import FaultPolicy, SimulatedWebServer
from repro.web.cache import (
    CacheEntry,
    CachePolicy,
    CacheStats,
    Freshness,
    NO_CACHE,
    PageCache,
    ShardedPageCache,
    SingleFlight,
    check_freshness,
    freshness_from_head,
    shard_of,
)
from repro.web.client import (
    AccessLog,
    CostSummary,
    DEFAULT_RETRY_POLICY,
    FetchConfig,
    FetchRecord,
    NO_RETRY,
    RetryPolicy,
    WebClient,
)
from repro.web.network import NetworkModel, MODEM_1998

__all__ = [
    "WebResource",
    "HeadResponse",
    "SimulatedWebServer",
    "FaultPolicy",
    "WebClient",
    "AccessLog",
    "CostSummary",
    "FetchConfig",
    "FetchRecord",
    "RetryPolicy",
    "DEFAULT_RETRY_POLICY",
    "NO_RETRY",
    "NetworkModel",
    "MODEM_1998",
    "PageCache",
    "ShardedPageCache",
    "CachePolicy",
    "CacheEntry",
    "CacheStats",
    "Freshness",
    "SingleFlight",
    "check_freshness",
    "freshness_from_head",
    "shard_of",
    "NO_CACHE",
]
