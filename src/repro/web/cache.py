"""Cross-query page caching: the LRU :class:`PageCache`, its
:class:`CachePolicy`, the :class:`SingleFlight` fetch deduplicator, and the
light-connection freshness check shared with Section 8's URLCheck.

The paper's cost model charges only for network page accesses, and its
Section 8 machinery shows that a stored page plus a *light connection* (a
HEAD exchanging just an error flag and the ``Last-Modified`` date) can
replace a full download.  This module generalizes that saving from the
materialized store to ordinary query execution:

* :class:`PageCache` — an in-memory LRU of page bodies keyed by URL, each
  entry a frozen snapshot of ``html`` + ``Last-Modified`` (server resources
  are mutable; the cache must observe staleness, not alias it away);
* :class:`CachePolicy` — ``off`` (bit-for-bit the uncached engine),
  ``per_query`` (entries live for one query), ``cross_query`` (entries
  persist; the first touch per query revalidates with a light connection,
  exactly the §8 ``checked``-flag discipline);
* :class:`SingleFlight` — concurrent callers asking for the same key while
  a download is in flight share the leader's result instead of issuing a
  second network request;
* :func:`check_freshness` — the one implementation of "compare the stored
  modification date against a light connection" used by both the client's
  cache revalidation and :meth:`MaterializedStore.url_check
  <repro.materialized.store.MaterializedStore.url_check>`.

Accounting lives in :class:`~repro.web.client.WebClient` (hits are charged
zero pages, revalidations one light connection each, in submission order);
the cache itself only keeps lifetime statistics for observability.
"""

from __future__ import annotations

import enum
import threading
import zlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Optional, TypeVar

from repro.errors import WebError
from repro.web.resources import HeadResponse, WebResource

__all__ = [
    "CacheEntry",
    "CachePolicy",
    "CacheStats",
    "Freshness",
    "PageCache",
    "ShardedPageCache",
    "SingleFlight",
    "check_freshness",
    "freshness_from_head",
    "shard_of",
    "NO_CACHE",
]


def shard_of(url: str, shards: int) -> int:
    """Deterministic shard index of ``url`` across ``shards`` shards.

    CRC32 rather than ``hash()``: Python string hashing is randomized per
    process, and shard placement must be reproducible across runs so the
    per-shard freshness laws (docs/MATERIALIZED.md) can be asserted against
    committed baselines."""
    return zlib.crc32(url.encode("utf-8")) % shards

T = TypeVar("T")


class CachePolicy(enum.Enum):
    """How (and whether) a :class:`PageCache` serves repeated accesses.

    ``OFF``
        Never consult or fill the cache: the client behaves bit-for-bit
        like the uncached engine (same pages, same log, same seconds).
    ``PER_QUERY``
        Entries live for the duration of one query
        (:meth:`PageCache.begin_query` clears them); hits within the query
        cost nothing.  For engine queries this mirrors the per-query
        :class:`~repro.engine.session.QuerySession` dedup at client level,
        so it mainly benefits raw-client users and crawlers.
    ``CROSS_QUERY``
        Entries persist across queries.  The first access per query opens a
        light connection comparing ``Last-Modified`` dates (the §8 URLCheck
        discipline); an unchanged page is served locally and the URL is
        trusted for the rest of the query, a changed one is re-downloaded.
    """

    OFF = "off"
    PER_QUERY = "per_query"
    CROSS_QUERY = "cross_query"

    @classmethod
    def coerce(cls, value: "CachePolicy | str") -> "CachePolicy":
        """Accept a policy or its string name (``"cross_query"`` etc.)."""
        if isinstance(value, cls):
            return value
        try:
            return cls(value)
        except ValueError:
            names = ", ".join(p.value for p in cls)
            raise WebError(
                f"unknown cache policy {value!r}; expected one of {names}"
            ) from None


@dataclass(frozen=True)
class CacheEntry:
    """One cached page: a frozen snapshot of the body and its date.

    ``page_scheme`` is carried along so the cache-aware cost model can
    estimate per-page-scheme hit rates (the optimizer inspecting its own
    cache, not the web)."""

    url: str
    html: str
    last_modified: int
    page_scheme: str = ""

    def as_resource(self) -> WebResource:
        """A fresh :class:`WebResource` copy (never the live server object)."""
        return WebResource(
            url=self.url,
            html=self.html,
            last_modified=self.last_modified,
            page_scheme=self.page_scheme,
        )


@dataclass
class CacheStats:
    """Lifetime counters of one :class:`PageCache` (never reset by
    ``begin_query``; per-query numbers live in the client's AccessLog)."""

    hits: int = 0
    revalidations: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def pages_saved(self) -> int:
        """Downloads avoided: free hits plus successful revalidations."""
        return self.hits + self.revalidations

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served without a full download."""
        total = self.hits + self.revalidations + self.misses
        return (self.hits + self.revalidations) / total if total else 0.0

    def __repr__(self) -> str:
        return (
            f"CacheStats(hits={self.hits}, revalidations={self.revalidations}, "
            f"misses={self.misses}, evictions={self.evictions}, "
            f"hit_rate={self.hit_rate:.2f})"
        )


class PageCache:
    """A bounded LRU of page snapshots, shared across queries.

    The cache is a passive store: policy decisions (serve / revalidate /
    bypass) and all cost accounting happen in the client, which calls
    :meth:`note_hit` / :meth:`note_revalidation` / :meth:`note_miss` so the
    lifetime statistics stay accurate.  All methods are thread-safe; the
    engine only touches the cache from the accounting thread, but raw
    clients may be shared across threads.
    """

    def __init__(
        self,
        capacity: int = 256,
        policy: CachePolicy | str = CachePolicy.CROSS_QUERY,
    ):
        if not isinstance(capacity, int) or isinstance(capacity, bool) or capacity < 1:
            raise WebError(
                f"PageCache capacity must be a positive integer, got {capacity!r}"
            )
        self.capacity = capacity
        self.policy = CachePolicy.coerce(policy)
        self.stats = CacheStats()
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()
        self._validated: set[str] = set()
        self._lock = threading.RLock()

    # ------------------------------------------------------------------ #
    # query lifecycle
    # ------------------------------------------------------------------ #

    def begin_query(self) -> None:
        """Start a new query: PER_QUERY drops all entries, CROSS_QUERY only
        forgets which URLs were already revalidated (the paper: "when a
        query is evaluated, all flags are initialized to none")."""
        with self._lock:
            if self.policy is CachePolicy.PER_QUERY:
                self._entries.clear()
            self._validated.clear()

    def mark_validated(self, url: str) -> None:
        """Trust ``url`` without further connections until the next query."""
        with self._lock:
            self._validated.add(url)

    def is_validated(self, url: str) -> bool:
        with self._lock:
            return url in self._validated

    # ------------------------------------------------------------------ #
    # storage
    # ------------------------------------------------------------------ #

    def lookup(self, url: str) -> Optional[CacheEntry]:
        """The entry for ``url`` (bumped to most-recently-used), or None."""
        with self._lock:
            entry = self._entries.get(url)
            if entry is not None:
                self._entries.move_to_end(url)
            return entry

    def store(self, resource: WebResource) -> CacheEntry:
        """Snapshot ``resource`` into the cache (evicting LRU overflow)."""
        entry = CacheEntry(
            url=resource.url,
            html=resource.html,
            last_modified=resource.last_modified,
            page_scheme=resource.page_scheme,
        )
        with self._lock:
            self._entries[resource.url] = entry
            self._entries.move_to_end(resource.url)
            self.stats.stores += 1
            while len(self._entries) > self.capacity:
                evicted, _ = self._entries.popitem(last=False)
                self._validated.discard(evicted)
                self.stats.evictions += 1
        return entry

    def invalidate(self, url: str) -> None:
        """Drop ``url`` (it changed or vanished behind our back)."""
        with self._lock:
            if self._entries.pop(url, None) is not None:
                self.stats.invalidations += 1
            self._validated.discard(url)

    def clear(self) -> None:
        """Drop every entry (capacity and lifetime stats are kept)."""
        with self._lock:
            self._entries.clear()
            self._validated.clear()

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #

    def note_hit(self) -> None:
        self.stats.hits += 1

    def note_revalidation(self) -> None:
        self.stats.revalidations += 1

    def note_miss(self) -> None:
        self.stats.misses += 1

    def urls(self) -> list[str]:
        """Cached URLs, least- to most-recently used."""
        with self._lock:
            return list(self._entries)

    def scheme_counts(self) -> dict[str, int]:
        """Cached pages per page-scheme — the input of
        :meth:`repro.optimizer.cost.CacheEstimate.from_cache`."""
        with self._lock:
            counts: dict[str, int] = {}
            for entry in self._entries.values():
                if entry.page_scheme:
                    counts[entry.page_scheme] = counts.get(entry.page_scheme, 0) + 1
            return counts

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, url: str) -> bool:
        with self._lock:
            return url in self._entries

    def __repr__(self) -> str:
        return (
            f"PageCache({len(self)}/{self.capacity} pages, "
            f"policy={self.policy.value}, {self.stats!r})"
        )


class ShardedPageCache(PageCache):
    """A :class:`PageCache` partitioned by URL hash across N shards.

    Each shard is an independent LRU with its own lock, so concurrent
    queries (and the sharded store's batched refresh) contend per shard
    instead of on one global lock, and eviction pressure in one URL region
    cannot flush the whole cache.  Placement is :func:`shard_of` — pure
    CRC32, stable across processes.

    The facade keeps the :class:`PageCache` contract exactly: the client
    calls the same ``lookup`` / ``store`` / ``note_*`` methods (routing by
    URL is internal), ``isinstance(cache, PageCache)`` checks keep
    working, and all shards share one :class:`CacheStats` so lifetime
    observability is unchanged.  Policy semantics live in the facade —
    shard sub-caches are pure storage — so flipping ``policy`` on the
    facade (as ``SiteEnv._resolve_cache`` does) affects every shard.

    With ``shards=1`` behaviour is bit-for-bit the unsharded cache: one
    storage dict, same LRU order, same eviction points (per-shard capacity
    is ``ceil(capacity / shards)``, which is ``capacity`` exactly).
    """

    def __init__(
        self,
        capacity: int = 256,
        policy: CachePolicy | str = CachePolicy.CROSS_QUERY,
        shards: int = 4,
    ):
        if not isinstance(shards, int) or isinstance(shards, bool) or shards < 1:
            raise WebError(
                f"ShardedPageCache shards must be a positive integer, "
                f"got {shards!r}"
            )
        super().__init__(capacity=capacity, policy=policy)
        per_shard = -(-capacity // shards)  # ceil division
        self._shards = [
            PageCache(capacity=per_shard, policy=self.policy)
            for _ in range(shards)
        ]
        for shard in self._shards:
            # one lifetime-stats object across the facade and every shard:
            # shard-level stores/evictions and facade-level hit/miss notes
            # accumulate into the same counters
            shard.stats = self.stats

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    def _shard(self, url: str) -> PageCache:
        return self._shards[shard_of(url, len(self._shards))]

    # -- query lifecycle (policy decisions stay in the facade) ---------- #

    def begin_query(self) -> None:
        for shard in self._shards:
            with shard._lock:
                if self.policy is CachePolicy.PER_QUERY:
                    shard._entries.clear()
                shard._validated.clear()

    def mark_validated(self, url: str) -> None:
        self._shard(url).mark_validated(url)

    def is_validated(self, url: str) -> bool:
        return self._shard(url).is_validated(url)

    # -- storage (routed by URL) ---------------------------------------- #

    def lookup(self, url: str) -> Optional[CacheEntry]:
        return self._shard(url).lookup(url)

    def store(self, resource: WebResource) -> CacheEntry:
        return self._shard(resource.url).store(resource)

    def invalidate(self, url: str) -> None:
        self._shard(url).invalidate(url)

    def clear(self) -> None:
        for shard in self._shards:
            shard.clear()

    # -- observability --------------------------------------------------- #

    def urls(self) -> list[str]:
        """Cached URLs, LRU order *within* each shard, shards in index
        order (there is no meaningful global LRU order across shards)."""
        return [url for shard in self._shards for url in shard.urls()]

    def shard_sizes(self) -> list[int]:
        """Entries per shard, in shard-index order."""
        return [len(shard) for shard in self._shards]

    def scheme_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for shard in self._shards:
            for name, count in shard.scheme_counts().items():
                counts[name] = counts.get(name, 0) + count
        return counts

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    def __contains__(self, url: str) -> bool:
        return url in self._shard(url)

    def __repr__(self) -> str:
        return (
            f"ShardedPageCache({len(self)}/{self.capacity} pages, "
            f"{len(self._shards)} shards, policy={self.policy.value}, "
            f"{self.stats!r})"
        )


#: An explicitly disabled cache: pass to ``cache=`` parameters to force the
#: uncached code path even when the client carries a default cache.
NO_CACHE = PageCache(capacity=1, policy=CachePolicy.OFF)


# --------------------------------------------------------------------- #
# single-flight deduplication
# --------------------------------------------------------------------- #


class _InflightCall:
    __slots__ = ("done", "result", "error")

    def __init__(self):
        self.done = threading.Event()
        self.result = None
        self.error: Optional[BaseException] = None


class SingleFlight:
    """Per-key in-flight call sharing (the Go ``singleflight`` idiom).

    ``do(key, fn)`` runs ``fn`` if no call for ``key`` is in flight and
    returns ``(result, True)``; concurrent callers for the same key block
    until the leader finishes and get ``(same_result, False)`` without
    running ``fn``.  The entry is removed once the leader completes, so a
    *later* call runs ``fn`` again — sharing is strictly bounded by the
    in-flight window, which is what keeps cached pages revalidatable.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._calls: dict[object, _InflightCall] = {}

    def do(self, key: object, fn: Callable[[], T]) -> tuple[T, bool]:
        with self._lock:
            call = self._calls.get(key)
            if call is None:
                call = _InflightCall()
                self._calls[key] = call
                leader = True
            else:
                leader = False
        if leader:
            try:
                call.result = fn()
            except BaseException as err:  # propagate to every waiter
                call.error = err
            finally:
                with self._lock:
                    self._calls.pop(key, None)
                call.done.set()
        else:
            call.done.wait()
        if call.error is not None:
            raise call.error
        return call.result, leader


# --------------------------------------------------------------------- #
# the shared light-connection freshness check (Function 2's core)
# --------------------------------------------------------------------- #


class Freshness(enum.Enum):
    """Outcome of a light-connection date comparison."""

    FRESH = "fresh"      # stored copy is still current
    STALE = "stale"      # the page changed; re-download
    MISSING = "missing"  # the page vanished behind our back


def freshness_from_head(head: HeadResponse, known_modified: int) -> Freshness:
    """Classify an already-performed light connection against a stored
    date — the §8 comparison itself, factored out so batched revalidation
    (:func:`repro.materialized.maintenance.batch_refresh`, which HEADs a
    whole shard through :meth:`WebClient.head_batch
    <repro.web.client.WebClient.head_batch>` first) applies the identical
    rule to responses it already holds."""
    if not head.ok:
        return Freshness.MISSING
    if known_modified < head.last_modified:
        return Freshness.STALE
    return Freshness.FRESH


def check_freshness(client, url: str, known_modified: int) -> Freshness:
    """Open one light connection through ``client`` and compare dates.

    This is the single implementation of the §8 URLCheck comparison, used
    by both the client's cross-query cache revalidation and
    :meth:`MaterializedStore.url_check
    <repro.materialized.store.MaterializedStore.url_check>` — so every
    light connection is counted through the one
    :meth:`WebClient.head <repro.web.client.WebClient.head>` code path.
    """
    return freshness_from_head(client.head(url), known_modified)
