"""Served resources and HEAD responses."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["WebResource", "HeadResponse"]


@dataclass
class WebResource:
    """A page served by the simulated web server.

    ``page_scheme`` records which ADM page-scheme the page instantiates; real
    servers obviously don't expose this, and none of the query machinery
    reads it from here — it exists for test assertions and for building
    exact statistics oracles.
    """

    url: str
    html: str
    last_modified: int
    page_scheme: str = ""

    def __repr__(self) -> str:
        return (
            f"WebResource({self.url!r}, {len(self.html)} bytes, "
            f"modified={self.last_modified})"
        )


@dataclass(frozen=True)
class HeadResponse:
    """What a light connection returns: an error flag and the modification
    date (paper, Section 8)."""

    url: str
    ok: bool
    last_modified: int

    def __repr__(self) -> str:
        status = "ok" if self.ok else "missing"
        return f"HeadResponse({self.url!r}, {status}, modified={self.last_modified})"
