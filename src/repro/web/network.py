"""A simple network time model.

The paper's cost model counts pages because, in 1998, the dominant cost of
a page was fixed connection overhead; Section 8 additionally relies on
light connections being "quite fast, since they do not require to download
the HTML source".  This model makes both statements quantitative so that
experiments can report simulated wall time next to page counts:

* a full GET costs one round trip plus transfer time (bytes / bandwidth);
* a HEAD costs one round trip only;
* a *batch* of GETs issued together overlaps round trips across up to
  ``parallel_connections`` simultaneous connections (modern engines
  amortize per-page latency this way), so its wall time is the makespan of
  a greedy schedule over that many lanes — see
  :class:`~repro.clock.Timeline`.

Defaults approximate a 1998 dial-up connection: 250 ms round trip,
33.6 kbit/s (≈4200 bytes/s) throughput, a single connection.  The model is
a reporting aid, not part of the optimizer's cost function: page *counts*
stay faithful to the paper's cost function C(E) at every concurrency level
(byte-aware tie-breaking is separate, see ``CostModel.bytes_cost``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.clock import Timeline

__all__ = ["NetworkModel", "MODEM_1998"]


@dataclass(frozen=True)
class NetworkModel:
    """Round-trip latency, throughput, and available parallel connections."""

    rtt_seconds: float = 0.25
    bytes_per_second: float = 4200.0
    parallel_connections: int = 1

    def __post_init__(self) -> None:
        if self.rtt_seconds < 0:
            raise ValueError("rtt must be non-negative")
        if self.bytes_per_second <= 0:
            raise ValueError("bandwidth must be positive")
        if self.parallel_connections < 1:
            raise ValueError("need at least one connection")

    def get_seconds(self, byte_size: int) -> float:
        """Time to download a page of ``byte_size`` bytes."""
        return self.rtt_seconds + byte_size / self.bytes_per_second

    def head_seconds(self) -> float:
        """Time for a light connection (headers only)."""
        return self.rtt_seconds

    def revalidation_savings_seconds(self, byte_size: int) -> float:
        """Wall time saved by serving a cached page of ``byte_size`` bytes
        after a light-connection revalidation instead of re-downloading it
        (Section 8: light connections "are quite fast, since they do not
        require to download the HTML source") — the transfer time, since
        both paths pay one round trip."""
        return self.get_seconds(byte_size) - self.head_seconds()

    def batch_seconds(
        self,
        durations: Iterable[float],
        connections: Optional[int] = None,
    ) -> float:
        """Wall time for a batch of fetches with the given per-fetch
        ``durations``, overlapped over ``connections`` lanes (defaults to
        :attr:`parallel_connections`).  One lane degenerates to the plain
        sum — the serial model."""
        timeline = Timeline(connections or self.parallel_connections)
        for duration in durations:
            timeline.add(duration)
        return timeline.makespan


#: The default 1998-flavoured model.
MODEM_1998 = NetworkModel()
