"""The web client and its access log.

:class:`AccessLog` is the measured counterpart of the paper's cost function:
``page_downloads`` counts full GETs (the paper's only cost for virtual
views) and ``light_connections`` counts HEADs (Section 8's cheap checks).
The executor resets or snapshots the log around each query to report
per-query costs.

``WebClient.get`` always performs a *network* download — deduplication of
repeated accesses within one query is the executor's job (the paper counts
"pages downloaded", and a sensible engine never re-fetches a page it already
holds for the current query), implemented by
:class:`repro.engine.session.QuerySession`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from typing import Optional

from repro.errors import ResourceNotFound
from repro.web.network import MODEM_1998, NetworkModel
from repro.web.resources import HeadResponse, WebResource
from repro.web.server import SimulatedWebServer

__all__ = ["AccessLog", "WebClient"]


@dataclass
class AccessLog:
    """Counts of network interactions performed through a client."""

    page_downloads: int = 0
    light_connections: int = 0
    failed_requests: int = 0
    bytes_downloaded: int = 0
    simulated_seconds: float = 0.0
    downloaded_urls: list = field(default_factory=list)

    def snapshot(self) -> "AccessLog":
        """A frozen copy of the current counters."""
        return AccessLog(
            page_downloads=self.page_downloads,
            light_connections=self.light_connections,
            failed_requests=self.failed_requests,
            bytes_downloaded=self.bytes_downloaded,
            simulated_seconds=self.simulated_seconds,
            downloaded_urls=list(self.downloaded_urls),
        )

    def delta(self, earlier: "AccessLog") -> "AccessLog":
        """Counters accumulated since ``earlier`` (a prior snapshot)."""
        return AccessLog(
            page_downloads=self.page_downloads - earlier.page_downloads,
            light_connections=self.light_connections - earlier.light_connections,
            failed_requests=self.failed_requests - earlier.failed_requests,
            bytes_downloaded=self.bytes_downloaded - earlier.bytes_downloaded,
            simulated_seconds=self.simulated_seconds - earlier.simulated_seconds,
            downloaded_urls=self.downloaded_urls[len(earlier.downloaded_urls):],
        )

    def reset(self) -> None:
        self.page_downloads = 0
        self.light_connections = 0
        self.failed_requests = 0
        self.bytes_downloaded = 0
        self.simulated_seconds = 0.0
        self.downloaded_urls = []

    def __repr__(self) -> str:
        return (
            f"AccessLog(downloads={self.page_downloads}, "
            f"light={self.light_connections}, failed={self.failed_requests}, "
            f"bytes={self.bytes_downloaded})"
        )


class WebClient:
    """GET/HEAD access to a :class:`SimulatedWebServer`, with accounting.

    ``network`` translates accesses into simulated wall time (defaults to
    the 1998-flavoured model); purely informational — the optimizer's cost
    function counts pages, as in the paper."""

    def __init__(
        self,
        server: SimulatedWebServer,
        network: Optional[NetworkModel] = None,
    ):
        self.server = server
        self.network = network or MODEM_1998
        self.log = AccessLog()

    def get(self, url: str) -> WebResource:
        """Download a page (one network access).  Raises ResourceNotFound
        after counting the failed request."""
        try:
            resource = self.server.resource(url)
        except ResourceNotFound:
            self.log.failed_requests += 1
            raise
        self.log.page_downloads += 1
        self.log.bytes_downloaded += len(resource.html)
        self.log.simulated_seconds += self.network.get_seconds(
            len(resource.html)
        )
        self.log.downloaded_urls.append(url)
        return resource

    def head(self, url: str) -> HeadResponse:
        """Open a light connection: returns error flag + modification date
        without downloading the page (paper, Section 8).  Never raises —
        a missing page is reported through ``ok=False``."""
        self.log.light_connections += 1
        self.log.simulated_seconds += self.network.head_seconds()
        if not self.server.exists(url):
            return HeadResponse(url=url, ok=False, last_modified=0)
        resource = self.server.resource(url)
        return HeadResponse(url=url, ok=True, last_modified=resource.last_modified)

    def __repr__(self) -> str:
        return f"WebClient({self.log!r})"
