"""The web client, its access log, and the batched fetch engine.

:class:`AccessLog` is the measured counterpart of the paper's cost function:
``page_downloads`` counts full GETs (the paper's only cost for virtual
views) and ``light_connections`` counts HEADs (Section 8's cheap checks).
The executor resets or snapshots the log around each query to report
per-query costs.  ``attempts`` and per-fetch :class:`FetchRecord` entries
additionally expose retry and concurrency behaviour.

``WebClient.get`` performs a network download unless the client carries a
:class:`~repro.web.cache.PageCache` that can serve the URL — a free hit
under ``per_query`` scope, a light-connection revalidation under
``cross_query`` (the Section 8 saving, generalized from the materialized
store to every query).  Per-query deduplication of repeated accesses
remains the executor's job (:class:`repro.engine.session.QuerySession`);
the cache sits *below* it and spans queries.

``WebClient.get_batch`` is the batch-first entry point: a whole set of URLs
is fetched through a bounded :class:`~concurrent.futures.ThreadPoolExecutor`
worker pool, with transient failures (injected by a
:class:`~repro.web.server.FaultPolicy`) retried per :class:`RetryPolicy`.
Fetches are additionally *single-flighted* (:class:`~repro.web.cache.
SingleFlight`): concurrent lanes — including concurrent batches issued by
different threads against one client — requesting the same URL share one
download.  Accounting stays deterministic under concurrency: workers
perform only the pure fetch; all log mutation happens on the calling
thread in submission order (cache hits charged zero pages, revalidations
one light connection each, before the batch's network fetches), and the
batch's simulated wall time is the makespan of a greedy schedule of the
per-fetch durations over the available connections
(:meth:`~repro.web.network.NetworkModel.batch_seconds`).  Page *counts*
are therefore identical at every pool size — only wall time shrinks — and
with the cache off they are bit-for-bit those of the uncached engine.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from typing import Optional, Sequence

from repro.clock import BatchSchedule, Timeline
from repro.errors import (
    ResourceNotFound,
    RetriesExhaustedError,
    TransientFetchError,
)
from repro.obs.metrics import METRICS
from repro.obs.trace import NULL_TRACER
from repro.web.cache import (
    CachePolicy,
    Freshness,
    PageCache,
    SingleFlight,
    check_freshness,
)
from repro.web.network import MODEM_1998, NetworkModel
from repro.web.resources import HeadResponse, WebResource
from repro.web.server import SimulatedWebServer

__all__ = [
    "AccessLog",
    "CostSummary",
    "FetchConfig",
    "FetchRecord",
    "RetryPolicy",
    "WebClient",
    "DEFAULT_RETRY_POLICY",
    "NO_RETRY",
]

@dataclass(frozen=True)
class RetryPolicy:
    """How a client treats transient fetch failures.

    ``max_attempts`` bounds the total number of tries (1 means no retry);
    between tries the client backs off exponentially *in simulated time*:
    retry *n* (n ≥ 2) waits ``backoff_seconds * backoff_factor**(n-2)``.
    Failed attempts additionally cost one round trip (the timed-out / error
    response).  Permanent failures (404s) are never retried.
    """

    max_attempts: int = 4
    backoff_seconds: float = 0.05
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("need at least one attempt")
        if self.backoff_seconds < 0 or self.backoff_factor < 1:
            raise ValueError("backoff must be non-negative and non-shrinking")

    def backoff_before(self, attempt: int) -> float:
        """Simulated delay inserted before attempt ``attempt`` (2-based)."""
        if attempt <= 1:
            return 0.0
        return self.backoff_seconds * self.backoff_factor ** (attempt - 2)


#: Defaults tuned so that a 10% transient failure rate is survived with
#: overwhelmingly high probability (0.1^4 per fetch).
DEFAULT_RETRY_POLICY = RetryPolicy()

#: Fail on the first transient error (the pre-retry behaviour).
NO_RETRY = RetryPolicy(max_attempts=1)


@dataclass(frozen=True)
class FetchConfig:
    """Executor-side knobs for batched fetching.

    ``max_workers`` bounds the worker pool (and the simulated number of
    parallel connections) for one batch; ``None`` defers to the network
    model's ``parallel_connections``.
    """

    max_workers: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_workers is None:
            return
        if isinstance(self.max_workers, bool) or not isinstance(
            self.max_workers, int
        ):
            raise ValueError(
                f"FetchConfig.max_workers must be a positive integer or "
                f"None, got {self.max_workers!r}"
            )
        if self.max_workers < 1:
            raise ValueError(
                f"FetchConfig.max_workers must be at least 1, got "
                f"{self.max_workers} (use None to follow the network "
                f"model's parallel_connections)"
            )

    def effective_workers(self, network: NetworkModel) -> int:
        """Concurrency level for a batch under ``network``."""
        if self.max_workers is not None:
            return self.max_workers
        return network.parallel_connections


#: Follow the network model's ``parallel_connections``.
DEFAULT_FETCH_CONFIG = FetchConfig()


@dataclass(frozen=True)
class FetchRecord:
    """Per-fetch telemetry: timing, retry attempts, concurrency level.

    ``transient_failures`` counts the injected faults absorbed before the
    outcome; ``error`` classifies a failed fetch (``"not_found"`` or
    ``"exhausted"``, empty for success).  Together they let
    :meth:`AccessLog.reconcile` re-derive every aggregate counter from the
    per-fetch records alone."""

    url: str
    seconds: float
    attempts: int
    concurrency: int
    ok: bool
    transient_failures: int = 0
    error: str = ""


@dataclass(frozen=True)
class CostSummary:
    """The one cost shape shared by engine results and planner estimates.

    ``pages`` is the paper's cost measure C(E); the other fields are the
    modern trimmings (light connections, bytes, simulated wall time, request
    attempts including retries).  ``cache_hits`` / ``revalidations`` /
    ``pages_saved`` expose the page-cache's contribution: downloads avoided
    by serving cached bodies (for free, or for one light connection each).
    Estimated summaries report 0.0 for ``simulated_seconds``, which is only
    measurable at run time.
    """

    pages: float
    light_connections: float
    bytes: float
    simulated_seconds: float
    attempts: float
    cache_hits: float = 0.0
    revalidations: float = 0.0
    pages_saved: float = 0.0
    pages_shared: float = 0.0

    @classmethod
    def from_log(cls, log: "AccessLog") -> "CostSummary":
        """Measured summary of an :class:`AccessLog` (or a log delta)."""
        return cls(
            pages=log.page_downloads,
            light_connections=log.light_connections,
            bytes=log.bytes_downloaded,
            simulated_seconds=log.simulated_seconds,
            attempts=log.attempts,
            cache_hits=log.cache_hits,
            revalidations=log.revalidations,
            pages_saved=log.pages_saved,
            pages_shared=log.pages_shared,
        )

    def __repr__(self) -> str:
        return (
            f"CostSummary(pages={self.pages}, light={self.light_connections}, "
            f"bytes={self.bytes:.0f}, seconds={self.simulated_seconds:.3f}, "
            f"attempts={self.attempts}, saved={self.pages_saved})"
        )


@dataclass
class AccessLog:
    """Counts of network interactions performed through a client.

    ``cache_hits`` counts accesses served from the page cache without any
    connection (including downloads shared through single-flight dedup);
    ``revalidations`` counts cached pages served after a light-connection
    date check confirmed freshness (the HEAD itself also shows up in
    ``light_connections``); ``pages_saved`` is their sum — full downloads
    the cache avoided.  ``pages_shared`` counts pages this query received
    pre-fetched from the multi-query server's plan-level prefix sharing
    (:mod:`repro.server`): someone else's download, injected into this
    query's session before it ran, so it appears in no fetch record here
    — the provider's own log carries the download."""

    page_downloads: int = 0
    light_connections: int = 0
    failed_requests: int = 0
    bytes_downloaded: int = 0
    simulated_seconds: float = 0.0
    attempts: int = 0
    cache_hits: int = 0
    revalidations: int = 0
    pages_saved: int = 0
    pages_shared: int = 0
    downloaded_urls: list = field(default_factory=list)
    records: list = field(default_factory=list)

    def snapshot(self) -> "AccessLog":
        """A frozen copy of the current counters."""
        return AccessLog(
            page_downloads=self.page_downloads,
            light_connections=self.light_connections,
            failed_requests=self.failed_requests,
            bytes_downloaded=self.bytes_downloaded,
            simulated_seconds=self.simulated_seconds,
            attempts=self.attempts,
            cache_hits=self.cache_hits,
            revalidations=self.revalidations,
            pages_saved=self.pages_saved,
            pages_shared=self.pages_shared,
            downloaded_urls=list(self.downloaded_urls),
            records=list(self.records),
        )

    def delta(self, earlier: "AccessLog") -> "AccessLog":
        """Counters accumulated since ``earlier`` (a prior snapshot)."""
        return AccessLog(
            page_downloads=self.page_downloads - earlier.page_downloads,
            light_connections=self.light_connections - earlier.light_connections,
            failed_requests=self.failed_requests - earlier.failed_requests,
            bytes_downloaded=self.bytes_downloaded - earlier.bytes_downloaded,
            simulated_seconds=self.simulated_seconds - earlier.simulated_seconds,
            attempts=self.attempts - earlier.attempts,
            cache_hits=self.cache_hits - earlier.cache_hits,
            revalidations=self.revalidations - earlier.revalidations,
            pages_saved=self.pages_saved - earlier.pages_saved,
            pages_shared=self.pages_shared - earlier.pages_shared,
            downloaded_urls=self.downloaded_urls[len(earlier.downloaded_urls):],
            records=self.records[len(earlier.records):],
        )

    def merge(self, other: "AccessLog") -> "AccessLog":
        """Sum of two logs (counters added, URL lists and fetch records
        concatenated, ours first).  Used to combine the multi-query
        server's shared-navigator accounting with a query's own log so
        conformance laws can be checked against the combined network
        footprint; ``pages_shared`` is deliberately *not* summed into any
        other counter — it marks the hand-off between the two logs."""
        return AccessLog(
            page_downloads=self.page_downloads + other.page_downloads,
            light_connections=self.light_connections + other.light_connections,
            failed_requests=self.failed_requests + other.failed_requests,
            bytes_downloaded=self.bytes_downloaded + other.bytes_downloaded,
            simulated_seconds=self.simulated_seconds + other.simulated_seconds,
            attempts=self.attempts + other.attempts,
            cache_hits=self.cache_hits + other.cache_hits,
            revalidations=self.revalidations + other.revalidations,
            pages_saved=self.pages_saved + other.pages_saved,
            pages_shared=self.pages_shared + other.pages_shared,
            downloaded_urls=list(self.downloaded_urls) + list(other.downloaded_urls),
            records=list(self.records) + list(other.records),
        )

    def reset(self) -> None:
        self.page_downloads = 0
        self.light_connections = 0
        self.failed_requests = 0
        self.bytes_downloaded = 0
        self.simulated_seconds = 0.0
        self.attempts = 0
        self.cache_hits = 0
        self.revalidations = 0
        self.pages_saved = 0
        self.pages_shared = 0
        self.downloaded_urls = []
        self.records = []

    @property
    def cost(self) -> CostSummary:
        return CostSummary.from_log(self)

    def reconcile(self) -> list[str]:
        """Cross-check the aggregate counters against the per-fetch records.

        Returns a list of human-readable inconsistencies (empty when the
        log is internally consistent).  The invariants — relied on by the
        QA conformance oracle (:mod:`repro.qa`) — are:

        * ``pages_saved == cache_hits + revalidations``;
        * ``page_downloads == len(downloaded_urls) == #ok records``;
        * ``attempts == Σ record attempts + light_connections`` (every
          HEAD is one attempt; cache hits cost none);
        * ``failed_requests == Σ record transient_failures +
          #not_found records``;
        * ``revalidations <= light_connections`` (each revalidation went
          through exactly one HEAD).
        """
        problems: list[str] = []

        def check(condition: bool, message: str) -> None:
            if not condition:
                problems.append(message)

        check(
            self.pages_saved == self.cache_hits + self.revalidations,
            f"pages_saved={self.pages_saved} != cache_hits={self.cache_hits}"
            f" + revalidations={self.revalidations}",
        )
        check(
            self.page_downloads == len(self.downloaded_urls),
            f"page_downloads={self.page_downloads} != "
            f"len(downloaded_urls)={len(self.downloaded_urls)}",
        )
        ok_records = sum(1 for r in self.records if r.ok)
        check(
            self.page_downloads == ok_records,
            f"page_downloads={self.page_downloads} != "
            f"ok records={ok_records}",
        )
        record_attempts = sum(r.attempts for r in self.records)
        check(
            self.attempts == record_attempts + self.light_connections,
            f"attempts={self.attempts} != record attempts="
            f"{record_attempts} + light_connections={self.light_connections}",
        )
        transient = sum(r.transient_failures for r in self.records)
        not_found = sum(1 for r in self.records if r.error == "not_found")
        check(
            self.failed_requests == transient + not_found,
            f"failed_requests={self.failed_requests} != transient="
            f"{transient} + not_found={not_found}",
        )
        check(
            self.revalidations <= self.light_connections,
            f"revalidations={self.revalidations} > "
            f"light_connections={self.light_connections}",
        )
        return problems

    def __repr__(self) -> str:
        return (
            f"AccessLog(downloads={self.page_downloads}, "
            f"light={self.light_connections}, failed={self.failed_requests}, "
            f"bytes={self.bytes_downloaded})"
        )


@dataclass
class _FetchOutcome:
    """Result of fetching one URL with retries (pure; no log mutation).

    ``shared`` marks an outcome obtained from another lane's in-flight
    download through single-flight dedup: the resource is real, but this
    caller pays nothing (zero pages, zero time — the leader's accounting
    already covers the network work)."""

    url: str
    resource: Optional[WebResource] = None
    seconds: float = 0.0
    attempts: int = 0
    transient_failures: int = 0
    error: Optional[Exception] = None
    shared: bool = False


#: Internal sentinel: the cache could not serve this URL, go to network.
_MISS = object()


class WebClient:
    """GET/HEAD access to a :class:`SimulatedWebServer`, with accounting.

    ``network`` translates accesses into simulated wall time (defaults to
    the 1998-flavoured model); purely informational — the optimizer's cost
    function counts pages, as in the paper.  ``retry_policy`` governs how
    transient failures are retried (it only matters when the server carries
    a :class:`~repro.web.server.FaultPolicy`).  ``cache`` attaches a
    :class:`~repro.web.cache.PageCache` consulted (and filled) by ``get``
    and ``get_batch``; without one — or with policy ``off`` — the client
    behaves bit-for-bit like the uncached engine."""

    def __init__(
        self,
        server: SimulatedWebServer,
        network: Optional[NetworkModel] = None,
        retry_policy: Optional[RetryPolicy] = None,
        cache: Optional[PageCache] = None,
    ):
        self.server = server
        self.network = network or MODEM_1998
        self.retry_policy = retry_policy or DEFAULT_RETRY_POLICY
        self.cache = cache
        self.log = AccessLog()
        self._single_flight = SingleFlight()
        #: Observability hook (:mod:`repro.obs.trace`): the executor swaps
        #: in a RecordingTracer for traced runs.  Instrumentation guards on
        #: ``tracer.enabled`` and never mutates the log, the cache, or the
        #: server — tracing on/off cannot change what a query observes.
        self.tracer = NULL_TRACER

    # ------------------------------------------------------------------ #
    # single-URL API
    # ------------------------------------------------------------------ #

    def get(
        self,
        url: str,
        retry: Optional[RetryPolicy] = None,
        cache: Optional[PageCache] = None,
    ) -> WebResource:
        """Download a page (one network access, retried on transient
        faults) — unless the page cache can serve it for zero pages (hit)
        or one light connection (cross-query revalidation).  Raises
        ResourceNotFound for missing pages and RetriesExhaustedError when
        the retry budget runs out — in both cases after counting the
        failed request.  ``cache`` overrides the client's attached cache
        for this call (pass :data:`~repro.web.cache.NO_CACHE` to bypass)."""
        cache = cache if cache is not None else self.cache
        served = self._serve_from_cache(url, cache)
        if served is not _MISS:
            assert isinstance(served, WebResource)
            return served
        outcome = self._fetch_shared(url, retry or self.retry_policy)
        self._account(outcome, concurrency=1, cache=cache)
        if outcome.error is not None:
            raise outcome.error
        assert outcome.resource is not None
        return outcome.resource

    def head(self, url: str) -> HeadResponse:
        """Open a light connection: returns error flag + modification date
        without downloading the page (paper, Section 8).  Never raises —
        a missing page is reported through ``ok=False``.

        This is the *only* place light connections are counted: the
        materialized store's URLCheck and the cache's cross-query
        revalidation both come through here (via
        :func:`~repro.web.cache.check_freshness`), so the two code paths
        can never double-account a HEAD."""
        self._record_light_connection()
        METRICS.counter(
            "repro_light_connections_total", "HEAD requests issued"
        ).inc()
        if self.tracer.enabled:
            self.tracer.event("head", url=url)
        if not self.server.exists(url):
            return HeadResponse(url=url, ok=False, last_modified=0)
        resource = self.server.resource(url)
        return HeadResponse(url=url, ok=True, last_modified=resource.last_modified)

    def head_batch(
        self, urls: Sequence[str], workers: Optional[int] = None
    ) -> dict[str, HeadResponse]:
        """Open many light connections as one ``k``-lane batch.

        Every HEAD still goes through :meth:`head` — the single accounting
        point — so counts (``light_connections``, ``attempts``) are
        identical at every pool size.  Only simulated wall time changes:
        with ``workers > 1`` the serial per-HEAD times are re-placed on a
        greedy :class:`~repro.clock.Timeline` of ``workers`` lanes and the
        batch is charged its makespan, exactly like :meth:`get_batch` —
        this is what lets a sharded-store refresh overlap its revalidation
        traffic the way query fetch batches already do.  ``workers=None``
        follows the network model's ``parallel_connections``; duplicates
        are checked once; with one lane the accounting is bit-for-bit the
        serial loop.
        """
        distinct: list[str] = []
        seen: set[str] = set()
        for url in urls:
            if url not in seen:
                seen.add(url)
                distinct.append(url)
        if not distinct:
            return {}
        lanes = max(
            1,
            workers if workers is not None else self.network.parallel_connections,
        )
        lanes = min(lanes, len(distinct))
        with self.tracer.span(
            "head_batch", kind="fetch", urls=len(distinct), workers=lanes
        ):
            t0 = self.log.simulated_seconds
            responses = {url: self.head(url) for url in distinct}
            if lanes > 1:
                timeline = Timeline(lanes)
                for _ in distinct:
                    timeline.add(self.network.head_seconds())
                self.log.simulated_seconds = t0 + timeline.makespan
        METRICS.counter(
            "repro_head_batches_total", "light-connection batches by pool size"
        ).inc(workers=lanes)
        return responses

    # ------------------------------------------------------------------ #
    # batch API
    # ------------------------------------------------------------------ #

    def get_batch(
        self,
        urls: Sequence[str],
        config: Optional[FetchConfig] = None,
        retry: Optional[RetryPolicy] = None,
        cache: Optional[PageCache] = None,
        schedule: Optional[BatchSchedule] = None,
    ) -> dict[str, Optional[WebResource]]:
        """Download many pages as one batch through a bounded worker pool.

        Duplicate URLs are fetched once (and concurrent batches issued by
        other threads share in-flight downloads through single-flight
        dedup).  Returns ``url → resource`` with ``None`` for missing pages
        (dangling links are tolerated, as in the single-URL path).  If any
        fetch exhausts its retry budget the first such
        RetriesExhaustedError is raised — after the whole batch has been
        accounted, so partial work still shows up in the log.

        When a page cache is active, cached URLs are resolved *first*, on
        the calling thread in submission order — hits for free,
        cross-query entries for one light connection each — and only the
        misses go to the worker pool.  Accounting is deterministic
        regardless of thread interleaving: the pool only performs the
        fetches; counters, ``downloaded_urls`` order and per-fetch records
        follow submission order, and simulated wall time is the greedy
        ``k``-lane makespan of the per-fetch durations.  With one worker
        this degenerates to the exact serial accumulation.

        ``schedule`` (a :class:`~repro.clock.BatchSchedule`) switches the
        batch from the private per-batch timeline to a *shared* one: each
        fetch is placed on the shared ``k``-lane schedule no earlier than
        ``schedule.ready``, nothing is added to ``log.simulated_seconds``
        (the pipelined executor charges the shared makespan once at query
        end), and ``schedule.completed`` receives the batch's completion
        time.  Page accounting — counts, records, cache interaction — is
        byte-identical to the unscheduled path; only the time placement
        changes.
        """
        config = config or DEFAULT_FETCH_CONFIG
        retry = retry or self.retry_policy
        cache = cache if cache is not None else self.cache
        distinct: list[str] = []
        seen: set[str] = set()
        for url in urls:
            if url not in seen:
                seen.add(url)
                distinct.append(url)
        if not distinct:
            return {}
        with self.tracer.span(
            "fetch_batch", kind="fetch", urls=len(distinct)
        ) as span:
            result: dict[str, Optional[WebResource]] = {}
            to_fetch: list[str] = []
            for url in distinct:
                served = self._serve_from_cache(url, cache)
                if served is _MISS:
                    to_fetch.append(url)
                else:
                    assert isinstance(served, WebResource)
                    result[url] = served
            if schedule is not None:
                schedule.completed = max(schedule.completed, schedule.ready)
            if not to_fetch:
                span.set(from_cache=len(result), fetched=0)
                return result
            workers = max(
                1, min(config.effective_workers(self.network), len(to_fetch))
            )
            batch_t0 = self.log.simulated_seconds
            if schedule is not None:
                lanes = schedule.timeline.lanes
                if workers == 1:
                    outcomes = [self._fetch_shared(u, retry) for u in to_fetch]
                else:
                    with ThreadPoolExecutor(max_workers=workers) as pool:
                        outcomes = list(
                            pool.map(
                                lambda u: self._fetch_shared(u, retry),
                                to_fetch,
                            )
                        )
                completed = schedule.ready
                for outcome in outcomes:
                    end = schedule.timeline.add(
                        outcome.seconds, ready=schedule.ready
                    )
                    lane, start, _ = schedule.timeline.intervals[-1]
                    completed = max(completed, end)
                    self._account(
                        outcome,
                        concurrency=lanes,
                        charge_time=False,
                        cache=cache,
                        lane=lane,
                        lane_start=schedule.base + start,
                        lane_end=schedule.base + end,
                    )
                schedule.completed = max(schedule.completed, completed)
            elif workers == 1:
                offset = 0.0
                outcomes = [self._fetch_shared(u, retry) for u in to_fetch]
                for outcome in outcomes:
                    self._account(
                        outcome,
                        concurrency=1,
                        cache=cache,
                        lane=0,
                        lane_start=batch_t0 + offset,
                        lane_end=batch_t0 + offset + outcome.seconds,
                    )
                    offset += outcome.seconds
            else:
                with ThreadPoolExecutor(max_workers=workers) as pool:
                    outcomes = list(
                        pool.map(lambda u: self._fetch_shared(u, retry), to_fetch)
                    )
                timeline = Timeline(workers)
                for outcome in outcomes:
                    end = timeline.add(outcome.seconds)
                    lane, start, _ = timeline.intervals[-1]
                    self._account(
                        outcome,
                        concurrency=workers,
                        charge_time=False,
                        cache=cache,
                        lane=lane,
                        lane_start=batch_t0 + start,
                        lane_end=batch_t0 + end,
                    )
                self.log.simulated_seconds += timeline.makespan
            METRICS.counter(
                "repro_fetch_batches_total", "fetch batches by pool size"
            ).inc(workers=workers)
            if schedule is not None:
                span.set(
                    from_cache=len(result),
                    fetched=len(to_fetch),
                    workers=workers,
                    t0=schedule.base + schedule.ready,
                    batch_seconds=schedule.completed - schedule.ready,
                )
            else:
                span.set(
                    from_cache=len(result),
                    fetched=len(to_fetch),
                    workers=workers,
                    t0=batch_t0,
                    batch_seconds=self.log.simulated_seconds - batch_t0,
                )
            exhausted: Optional[Exception] = None
            for outcome in outcomes:
                result[outcome.url] = outcome.resource
                if exhausted is None and isinstance(
                    outcome.error, RetriesExhaustedError
                ):
                    exhausted = outcome.error
            if exhausted is not None:
                raise exhausted
            return result

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #

    def _record_light_connection(self) -> None:
        """The single accounting point for light connections (HEADs)."""
        self.log.light_connections += 1
        self.log.attempts += 1
        self.log.simulated_seconds += self.network.head_seconds()

    def _serve_from_cache(self, url: str, cache: Optional[PageCache]):
        """Try to satisfy ``url`` from ``cache`` per its policy.

        Returns a :class:`WebResource` snapshot on success (accounting the
        hit or revalidation), or :data:`_MISS` when the URL must go to the
        network — because caching is off, the entry is absent, the page
        changed, or it vanished (the subsequent GET then reports the
        failure through the ordinary code path)."""
        if cache is None or cache.policy is CachePolicy.OFF:
            return _MISS
        entry = cache.lookup(url)
        if entry is None:
            cache.note_miss()
            self._observe_cache("miss", url, cache)
            return _MISS
        if cache.policy is CachePolicy.PER_QUERY or cache.is_validated(url):
            # trusted for this query: zero connections, zero pages
            cache.note_hit()
            self.log.cache_hits += 1
            self.log.pages_saved += 1
            self._observe_cache("hit", url, cache, entry.page_scheme)
            return entry.as_resource()
        # cross-query entry on first touch this query: one light connection
        # (counted through head(), the shared §8 code path)
        freshness = check_freshness(self, url, entry.last_modified)
        if freshness is Freshness.FRESH:
            cache.mark_validated(url)
            cache.note_revalidation()
            self.log.revalidations += 1
            self.log.pages_saved += 1
            self._observe_cache("revalidation", url, cache, entry.page_scheme)
            return entry.as_resource()
        cache.invalidate(url)  # stale or vanished: re-fetch (or fail) live
        cache.note_miss()
        self._observe_cache("stale", url, cache, entry.page_scheme)
        return _MISS

    def _observe_cache(
        self, event: str, url: str, cache: PageCache, scheme: str = ""
    ) -> None:
        """Record one cache outcome (metrics + trace event; observational)."""
        METRICS.counter(
            "repro_cache_events_total",
            "page-cache lookup outcomes by event, policy, and page scheme",
        ).inc(event=event, policy=cache.policy.value, scheme=scheme)
        if self.tracer.enabled:
            self.tracer.event(f"cache_{event}", url=url, scheme=scheme)

    def _fetch_shared(self, url: str, retry: RetryPolicy) -> _FetchOutcome:
        """Fetch through the single-flight group: if another thread is
        already downloading ``url``, wait for its result instead of issuing
        a second request; the follower's outcome is marked ``shared`` so it
        is charged zero pages and zero time."""
        outcome, leader = self._single_flight.do(
            url, lambda: self._fetch_with_retries(url, retry)
        )
        if leader:
            return outcome
        return _FetchOutcome(
            url=url,
            resource=outcome.resource,
            seconds=0.0,
            attempts=0,
            transient_failures=0,
            error=outcome.error,
            shared=True,
        )

    def _fetch_with_retries(
        self, url: str, retry: RetryPolicy
    ) -> _FetchOutcome:
        """Fetch one URL, retrying transient faults.  Pure with respect to
        the log (safe to run on a pool worker); accounting happens later in
        :meth:`_account` on the calling thread."""
        outcome = _FetchOutcome(url)
        last: Optional[Exception] = None
        for attempt in range(1, retry.max_attempts + 1):
            outcome.attempts = attempt
            outcome.seconds += retry.backoff_before(attempt)
            try:
                resource = self.server.serve(url)
            except ResourceNotFound as err:
                outcome.error = err  # permanent: no retry, no time charged
                return outcome
            except TransientFetchError as err:
                last = err
                outcome.transient_failures += 1
                outcome.seconds += self.network.head_seconds()  # wasted RTT
                continue
            outcome.resource = resource
            outcome.seconds += self.network.get_seconds(len(resource.html))
            return outcome
        outcome.error = RetriesExhaustedError(url, outcome.attempts, last)
        return outcome

    def _account(
        self,
        outcome: _FetchOutcome,
        concurrency: int,
        charge_time: bool = True,
        cache: Optional[PageCache] = None,
        lane: Optional[int] = None,
        lane_start: Optional[float] = None,
        lane_end: Optional[float] = None,
    ) -> None:
        log = self.log
        if lane_start is None:
            # single-URL path: the fetch occupies one lane starting now
            lane = 0
            lane_start = log.simulated_seconds
            lane_end = lane_start + outcome.seconds
        if outcome.shared:
            # single-flight follower: the leader paid for the download
            if outcome.resource is not None:
                log.cache_hits += 1
                log.pages_saved += 1
            self._observe_fetch(outcome, concurrency, lane, lane_start, lane_end)
            return
        log.attempts += outcome.attempts
        log.failed_requests += outcome.transient_failures
        if isinstance(outcome.error, ResourceNotFound):
            log.failed_requests += 1
        if outcome.resource is not None:
            log.page_downloads += 1
            log.bytes_downloaded += len(outcome.resource.html)
            log.downloaded_urls.append(outcome.url)
            if cache is not None and cache.policy is not CachePolicy.OFF:
                cache.store(outcome.resource)
                cache.mark_validated(outcome.url)
        if charge_time:
            log.simulated_seconds += outcome.seconds
        error = ""
        if isinstance(outcome.error, ResourceNotFound):
            error = "not_found"
        elif isinstance(outcome.error, RetriesExhaustedError):
            error = "exhausted"
        log.records.append(
            FetchRecord(
                url=outcome.url,
                seconds=outcome.seconds,
                attempts=outcome.attempts,
                concurrency=concurrency,
                ok=outcome.resource is not None,
                transient_failures=outcome.transient_failures,
                error=error,
            )
        )
        self._observe_fetch(
            outcome, concurrency, lane, lane_start, lane_end, error
        )

    def _observe_fetch(
        self,
        outcome: _FetchOutcome,
        concurrency: int,
        lane: Optional[int],
        lane_start: Optional[float],
        lane_end: Optional[float],
        error: str = "",
    ) -> None:
        """Record one fetch outcome (metrics + trace event; observational).

        ``lane``/``lane_start``/``lane_end`` place the fetch on the
        simulated k-lane schedule (absolute simulated seconds) so the
        Chrome-trace exporter can reconstruct the batch timeline."""
        scheme = (
            outcome.resource.page_scheme if outcome.resource is not None else ""
        )
        if outcome.shared:
            status = "shared"
        elif error:
            status = error
        else:
            status = "ok"
        METRICS.counter(
            "repro_fetch_total", "page fetches by outcome and page scheme"
        ).inc(scheme=scheme, outcome=status)
        if outcome.shared:
            METRICS.counter(
                "repro_single_flight_dedup_total",
                "downloads shared with another in-flight fetch",
            ).inc(scheme=scheme)
        else:
            if outcome.resource is not None:
                METRICS.counter(
                    "repro_fetch_bytes_total", "page bytes downloaded"
                ).inc(len(outcome.resource.html), scheme=scheme)
            if outcome.transient_failures:
                METRICS.counter(
                    "repro_fetch_transient_faults_total",
                    "injected transient faults absorbed by retries",
                ).inc(outcome.transient_failures, scheme=scheme)
            if outcome.attempts > 1:
                METRICS.counter(
                    "repro_fetch_retries_total", "retry attempts beyond the first"
                ).inc(outcome.attempts - 1, scheme=scheme)
            METRICS.histogram(
                "repro_fetch_seconds", "simulated seconds per fetch"
            ).observe(outcome.seconds, scheme=scheme)
        if self.tracer.enabled:
            self.tracer.event(
                "fetch",
                url=outcome.url,
                scheme=scheme,
                outcome=status,
                seconds=outcome.seconds,
                attempts=outcome.attempts,
                transient_failures=outcome.transient_failures,
                shared=outcome.shared,
                concurrency=concurrency,
                lane=lane,
                start=lane_start,
                end=lane_end,
            )

    def __repr__(self) -> str:
        return f"WebClient({self.log!r})"
