"""The simulated web server.

Holds the URL → :class:`WebResource` map and exposes the *site manager's*
mutation API: publishing, updating and deleting pages.  Every mutation
advances the shared logical clock and stamps the affected resource, so light
connections observe fresh ``Last-Modified`` dates — exactly the signal the
paper's Section 8 maintenance algorithms rely on.

The server itself never counts accesses; accounting lives in the client so
that concurrent clients (virtual-view executor, materializer, statistics
crawler) can be measured independently.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.clock import SimClock
from repro.errors import ResourceNotFound, WebError
from repro.web.resources import WebResource

__all__ = ["SimulatedWebServer"]


class SimulatedWebServer:
    """In-process map of URLs to resources, with a mutation API."""

    def __init__(self, clock: Optional[SimClock] = None):
        self.clock = clock or SimClock()
        self._resources: dict[str, WebResource] = {}

    # ------------------------------------------------------------------ #
    # site-manager API (publish / update / delete)
    # ------------------------------------------------------------------ #

    def publish(self, url: str, html: str, page_scheme: str = "") -> WebResource:
        """Create or replace the page at ``url`` (advances the clock)."""
        if not url:
            raise WebError("cannot publish at an empty URL")
        stamp = self.clock.tick()
        resource = WebResource(
            url=url, html=html, last_modified=stamp, page_scheme=page_scheme
        )
        self._resources[url] = resource
        return resource

    def update(self, url: str, html: str) -> WebResource:
        """Replace the HTML of an existing page (advances the clock)."""
        existing = self._require(url)
        stamp = self.clock.tick()
        existing.html = html
        existing.last_modified = stamp
        return existing

    def delete(self, url: str) -> None:
        """Remove the page at ``url``; later GET/HEADs see it as missing."""
        self._require(url)
        del self._resources[url]
        self.clock.tick()

    def touch(self, url: str) -> WebResource:
        """Bump a page's modification date without changing its content
        (models a no-op edit; forces maintenance to re-download)."""
        existing = self._require(url)
        existing.last_modified = self.clock.tick()
        return existing

    # ------------------------------------------------------------------ #
    # serving API (used by WebClient only)
    # ------------------------------------------------------------------ #

    def resource(self, url: str) -> WebResource:
        """Return the live resource (raises ResourceNotFound)."""
        return self._require(url)

    def exists(self, url: str) -> bool:
        return url in self._resources

    def urls(self) -> Iterator[str]:
        """All currently served URLs (site-manager view, not crawlable)."""
        return iter(sorted(self._resources))

    def urls_of_scheme(self, page_scheme: str) -> list[str]:
        """URLs whose resource was published for ``page_scheme`` (oracle
        helper for tests and exact statistics; not part of the web model)."""
        return sorted(
            url
            for url, res in self._resources.items()
            if res.page_scheme == page_scheme
        )

    def __len__(self) -> int:
        return len(self._resources)

    def _require(self, url: str) -> WebResource:
        try:
            return self._resources[url]
        except KeyError:
            raise ResourceNotFound(url) from None

    def __repr__(self) -> str:
        return f"SimulatedWebServer({len(self._resources)} resources)"
