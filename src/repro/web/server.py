"""The simulated web server.

Holds the URL → :class:`WebResource` map and exposes the *site manager's*
mutation API: publishing, updating and deleting pages.  Every mutation
advances the shared logical clock and stamps the affected resource, so light
connections observe fresh ``Last-Modified`` dates — exactly the signal the
paper's Section 8 maintenance algorithms rely on.

The server itself never counts accesses; accounting lives in the client so
that concurrent clients (virtual-view executor, materializer, statistics
crawler) can be measured independently.

:class:`FaultPolicy` injects *transient* failures (timeouts, 5xx-style
server errors) into the serving path so retry/backoff behaviour can be
exercised deterministically: whether attempt *n* on a URL fails is a pure
hash of ``(seed, url, n)``, independent of thread interleaving, so a seeded
run is exactly reproducible even under a concurrent fetch pool.
"""

from __future__ import annotations

import hashlib
import threading
from typing import Iterator, Optional, Sequence

from repro.clock import SimClock
from repro.errors import ResourceNotFound, TransientFetchError, WebError
from repro.web.resources import WebResource

__all__ = ["FaultPolicy", "SimulatedWebServer"]


class FaultPolicy:
    """Deterministic transient-fault injector for the serving path.

    ``failure_rate`` is the per-attempt probability that a request fails
    transiently; the decision for attempt *n* on a URL is derived from a
    hash of ``(seed, url, n)``, so it does not depend on the order in which
    a worker pool happens to issue requests.  Per-URL attempt counters are
    kept internally (thread-safe); :meth:`reset` restarts them.
    """

    KINDS = ("timeout", "server_error")

    def __init__(
        self,
        failure_rate: float = 0.1,
        seed: int = 0,
        kinds: Sequence[str] = KINDS,
    ):
        if not 0.0 <= failure_rate < 1.0:
            raise WebError("failure_rate must be in [0, 1)")
        if not kinds or any(k not in self.KINDS for k in kinds):
            raise WebError(f"kinds must be a non-empty subset of {self.KINDS}")
        self.failure_rate = failure_rate
        self.seed = seed
        self.kinds = tuple(kinds)
        self._attempts: dict[str, int] = {}
        self._lock = threading.Lock()

    def _draw(self, url: str, attempt: int) -> float:
        digest = hashlib.blake2b(
            f"{self.seed}:{url}:{attempt}".encode(), digest_size=8
        ).digest()
        return int.from_bytes(digest, "big") / 2**64

    def will_fail(self, url: str, attempt: int) -> bool:
        """Whether attempt ``attempt`` (1-based) at ``url`` is scheduled to
        fail.  Pure: depends only on ``(seed, url, attempt)`` — never on
        which plan, worker, or request ordering reached the URL — so any
        two executions that issue the same per-URL attempt sequence observe
        identical faults.  The QA oracle and the plan-independence
        regression tests pin this property."""
        return self._draw(url, attempt) < self.failure_rate

    def fault_for(self, url: str, attempt: int) -> Optional[TransientFetchError]:
        """The fault scheduled for ``(url, attempt)``, or None (pure)."""
        draw = self._draw(url, attempt)
        if draw >= self.failure_rate:
            return None
        kind = self.kinds[
            int(draw / self.failure_rate * len(self.kinds)) % len(self.kinds)
        ]
        return TransientFetchError(url, kind=kind, attempt=attempt)

    def check(self, url: str) -> None:
        """Count one attempt at ``url``; raise TransientFetchError if this
        attempt is chosen to fail."""
        with self._lock:
            attempt = self._attempts.get(url, 0) + 1
            self._attempts[url] = attempt
        fault = self.fault_for(url, attempt)
        if fault is not None:
            raise fault

    def attempts_made(self, url: str) -> int:
        """Attempts counted so far for ``url`` (0 when never requested)."""
        with self._lock:
            return self._attempts.get(url, 0)

    def reset(self) -> None:
        """Forget all attempt counters (restart the deterministic stream)."""
        with self._lock:
            self._attempts.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultPolicy(rate={self.failure_rate}, seed={self.seed}, "
            f"kinds={self.kinds})"
        )


class SimulatedWebServer:
    """In-process map of URLs to resources, with a mutation API."""

    def __init__(
        self,
        clock: Optional[SimClock] = None,
        fault_policy: Optional[FaultPolicy] = None,
    ):
        self.clock = clock or SimClock()
        self.fault_policy = fault_policy
        self._resources: dict[str, WebResource] = {}

    # ------------------------------------------------------------------ #
    # site-manager API (publish / update / delete)
    # ------------------------------------------------------------------ #

    def publish(self, url: str, html: str, page_scheme: str = "") -> WebResource:
        """Create or replace the page at ``url`` (advances the clock)."""
        if not url:
            raise WebError("cannot publish at an empty URL")
        stamp = self.clock.tick()
        resource = WebResource(
            url=url, html=html, last_modified=stamp, page_scheme=page_scheme
        )
        self._resources[url] = resource
        return resource

    def update(self, url: str, html: str) -> WebResource:
        """Replace the HTML of an existing page (advances the clock)."""
        existing = self._require(url)
        stamp = self.clock.tick()
        existing.html = html
        existing.last_modified = stamp
        return existing

    def delete(self, url: str) -> None:
        """Remove the page at ``url``; later GET/HEADs see it as missing."""
        self._require(url)
        del self._resources[url]
        self.clock.tick()

    def touch(self, url: str) -> WebResource:
        """Bump a page's modification date without changing its content
        (models a no-op edit; forces maintenance to re-download)."""
        existing = self._require(url)
        existing.last_modified = self.clock.tick()
        return existing

    # ------------------------------------------------------------------ #
    # serving API (used by WebClient only)
    # ------------------------------------------------------------------ #

    def resource(self, url: str) -> WebResource:
        """Return the live resource (raises ResourceNotFound).  Bypasses the
        fault policy: this is the oracle/internal accessor; network-facing
        requests go through :meth:`serve`."""
        return self._require(url)

    def serve(self, url: str) -> WebResource:
        """Serve one network request for ``url``: raises ResourceNotFound
        for missing pages and, when a :class:`FaultPolicy` is installed,
        TransientFetchError for injected timeouts / server errors."""
        resource = self._require(url)
        if self.fault_policy is not None:
            self.fault_policy.check(url)
        return resource

    def exists(self, url: str) -> bool:
        return url in self._resources

    def urls(self) -> Iterator[str]:
        """All currently served URLs (site-manager view, not crawlable)."""
        return iter(sorted(self._resources))

    def urls_of_scheme(self, page_scheme: str) -> list[str]:
        """URLs whose resource was published for ``page_scheme`` (oracle
        helper for tests and exact statistics; not part of the web model)."""
        return sorted(
            url
            for url, res in self._resources.items()
            if res.page_scheme == page_scheme
        )

    def __len__(self) -> int:
        return len(self._resources)

    def _require(self, url: str) -> WebResource:
        try:
            return self._resources[url]
        except KeyError:
            raise ResourceNotFound(url) from None

    def __repr__(self) -> str:
        return f"SimulatedWebServer({len(self._resources)} resources)"
