"""The plan-space differential oracle.

The paper's central semantic claim (Sections 6–7): every rewrite in rules
1–9 — and hence every plan Algorithm 1 enumerates — computes the *same
relation*, differing only in page accesses.  PR 1 added concurrent,
fault-tolerant fetching and PR 2 added three cache policies; both promise
their own transparency properties (page counts invariant under the worker
pool, ``off`` bit-for-bit equal to no cache, warm caches only trading
downloads for light connections).  This oracle enforces all of it
mechanically.

For one query it enumerates **all** candidate plans
(:meth:`repro.optimizer.planner.Planner.enumerate_plans`), then executes
each under a configurable matrix of

* **cache modes** — ``off``, ``per_query``, ``cross_query_cold``,
  ``cross_query_warm`` (pre-warmed with the same plan), and
  ``cross_query_stale`` (pre-warmed, then a seeded subset of pages
  silently touched via :func:`repro.sitegen.mutations.perturb_server`);
* **fault schedules** — ``none``, ``transient`` (deterministic
  hash-scheduled faults absorbed by retries), ``exhausted`` (every
  attempt fails; the query must abort with RetriesExhaustedError unless
  a warm cache can answer it without the network);
* **worker counts** — serial and pooled.

PR 6 added a fourth axis: **execution strategy** now includes ``server``
cells, which push the plan through the multi-query server's plan-level
sharing machinery (:func:`repro.server.service.execute_shared`) — a
shared navigator evaluates the plan's navigation prefixes on its own
client, the query runs on a clone with those pages injected, and the
*combined* footprint (navigator + query) must obey every law a solo run
does, plus the sharing-attribution arithmetic
(``own pages + revalidations + pages_shared == reference pages``).

PR 8 added ``adaptive`` / ``adaptive_pipelined`` cells: the runtime
executor may prune provably irrelevant fetches and switch pointer-join ↔
pointer-chase mid-query (:mod:`repro.engine.adaptive`), so those cells
keep the digest-equality law verbatim but relax every cost equality to a
one-sided bound against the static reference (never *more* pages, bytes,
attempts, or URLs — ``pages_adaptive ≤ pages_staged`` in every cell).

and asserts, cell by cell:

1. *relation equality* — every successful cell's canonical answer equals
   the query's baseline (plan 0, serial, uncached, fault-free);
2. *cost accounting* — the :class:`~repro.web.client.AccessLog`
   reconciles (``pages_saved == cache_hits + revalidations``, aggregate
   counters re-derivable from the per-fetch records);
3. *mode-specific cost laws* — e.g. a serial uncached fault-free cell is
   bit-for-bit the reference execution; page counts are invariant under
   the worker count; a fully warm cross-query cache downloads zero pages
   and revalidates exactly the reference page set; a stale cache
   re-downloads exactly the touched pages.

Any violation lands in the cell's report record with a reproducible cell
id (see :mod:`repro.qa.report` and ``docs/TESTING.md``).
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from repro.engine.pipeline import EXECUTION_MODES
from repro.errors import RetriesExhaustedError
from repro.nested.relation import relation_digest
from repro.obs import NULL_TRACER, RecordingTracer
from repro.obs.journal import Journal
from repro.options import QueryOptions
from repro.qa.report import CellRecord, ConformanceReport
from repro.server.prefix import SharedNavigator
from repro.server.service import execute_shared
from repro.sitegen.mutations import perturb_server
from repro.sites import SiteEnv
from repro.views.conjunctive import ConjunctiveQuery
from repro.web.cache import CachePolicy, NO_CACHE, PageCache
from repro.web.client import AccessLog, CostSummary, FetchConfig, RetryPolicy
from repro.web.server import FaultPolicy

__all__ = [
    "CACHE_MODES",
    "EXEC_MODES",
    "FAULT_MODES",
    "TRACE_MODES",
    "JOURNAL_MODES",
    "Cell",
    "DifferentialOracle",
    "MatrixSpec",
    "relation_digest",
]

#: All cache-matrix dimensions, in canonical order.
CACHE_MODES = (
    "off",
    "per_query",
    "cross_query_cold",
    "cross_query_warm",
    "cross_query_stale",
)

#: All fault-schedule dimensions, in canonical order.
FAULT_MODES = ("none", "transient", "exhausted")

#: All execution-mode dimensions, in canonical order.  ``pipelined``
#: cells must be indistinguishable from ``staged`` ones in every checked
#: invariant — pages, URL sets, digests — which is exactly the
#: non-speculation guarantee of :mod:`repro.engine.pipeline`; the
#: compiled ``columnar`` and ``columnar_pipelined`` cells are held to the
#: same bit-for-bit laws, making the matrix the digest-level oracle for
#: the batch engine (:mod:`repro.engine.compile`).
#: ``adaptive`` / ``adaptive_pipelined`` cells run the runtime-pruning,
#: strategy-switching executor (:mod:`repro.engine.adaptive`): digests
#: stay bit-for-bit equal to the baseline, but the cost laws become
#: one-sided — pages, bytes, attempts, and the downloaded URL set are
#: bounded *above* by (resp. subsets of) the static reference's, which
#: is exactly the "provably irrelevant fetches only" guarantee.
#: ``server`` cells run through the multi-query server's prefix-sharing
#: machinery and are held to the same invariants on the *combined*
#: navigator + query footprint, plus the attribution arithmetic.
EXEC_MODES = EXECUTION_MODES + ("server",)

#: Tracer configurations the matrix can run under.  Tracing must never
#: change an answer or a page count, so the matrix is re-runnable with a
#: recording tracer attached and compared bit-for-bit against ``off``.
TRACE_MODES = ("off", "noop", "recording")

#: Journal configurations: ``on`` attaches a fresh event journal to every
#: measured run (one request block per cell, keyed by the cell id).  Like
#: tracing, journaling must be digest- and cost-neutral — the matrix is
#: re-runnable with journaling on and compared bit-for-bit against
#: ``off`` (tests/test_obs_journal.py pins this).
JOURNAL_MODES = ("off", "on")


# --------------------------------------------------------------------- #
# the matrix
# --------------------------------------------------------------------- #

# relation_digest moved next to Relation itself so the event journal can
# record per-request digests without importing the QA layer; the import
# above keeps the oracle's historical public name working.


@dataclass(frozen=True)
class MatrixSpec:
    """Which dimensions of the conformance matrix to run, and how."""

    cache_modes: Sequence[str] = CACHE_MODES
    fault_modes: Sequence[str] = FAULT_MODES
    worker_counts: Sequence[int] = (1, 4)
    #: execution strategies each cell is run under; pipelined cells are
    #: held to the same invariants as staged ones (same pages, same
    #: digests) — the pipeline's non-speculation guarantee
    exec_modes: Sequence[str] = EXEC_MODES
    #: per-attempt transient failure probability (absorbed by retries)
    transient_rate: float = 0.25
    #: per-attempt failure probability for the retries-exhausted schedule
    exhausted_rate: float = 0.999999999
    retry: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(
            max_attempts=8, backoff_seconds=0.01
        )
    )
    #: fraction of pages silently touched for ``cross_query_stale``
    stale_fraction: float = 0.5
    #: keep only the N cheapest candidate plans (None: the full space)
    max_plans: Optional[int] = None
    cache_capacity: int = 4096
    #: tracer attached to every measured run: ``off`` (no tracer at all),
    #: ``noop`` (the shared null tracer), or ``recording`` (a fresh
    #: :class:`~repro.obs.RecordingTracer` per cell, whose rendering is
    #: attached to any violation the cell produces)
    trace: str = "off"
    #: event journal attached to every measured run: ``off`` or ``on`` (a
    #: fresh :class:`~repro.obs.journal.Journal` per cell, request id =
    #: cell id) — answers and page counts must be identical in both modes
    journal: str = "off"

    def __post_init__(self) -> None:
        for mode in self.cache_modes:
            if mode not in CACHE_MODES:
                raise ValueError(f"unknown cache mode {mode!r}")
        for mode in self.fault_modes:
            if mode not in FAULT_MODES:
                raise ValueError(f"unknown fault mode {mode!r}")
        for mode in self.exec_modes:
            if mode not in EXEC_MODES:
                raise ValueError(f"unknown exec mode {mode!r}")
        if any(w < 1 for w in self.worker_counts):
            raise ValueError("worker counts must be >= 1")
        if self.trace not in TRACE_MODES:
            raise ValueError(
                f"unknown trace mode {self.trace!r} "
                f"(choose from {', '.join(TRACE_MODES)})"
            )
        if self.journal not in JOURNAL_MODES:
            raise ValueError(
                f"unknown journal mode {self.journal!r} "
                f"(choose from {', '.join(JOURNAL_MODES)})"
            )


@dataclass(frozen=True)
class Cell:
    """One point of the conformance matrix."""

    query_id: str
    plan_index: int
    cache_mode: str
    fault_mode: str
    workers: int
    exec_mode: str = "staged"

    @property
    def cell_id(self) -> str:
        """Reproducible id.  The exec component is appended only for
        non-staged cells, so every pre-pipeline cell id stays valid (and
        parses back to the same cell)."""
        base = (
            f"{self.query_id}/p{self.plan_index}/{self.cache_mode}/"
            f"{self.fault_mode}/w{self.workers}"
        )
        if self.exec_mode == "staged":
            return base
        return f"{base}/{self.exec_mode}"

    @classmethod
    def parse(cls, cell_id: str) -> "Cell":
        """Inverse of :attr:`cell_id` (used by ``--cell`` reproduction).

        Accepts both the 5-part pre-pipeline form (exec mode defaults to
        ``staged``) and the 6-part form with an explicit exec mode."""
        parts = cell_id.split("/")
        if len(parts) not in (5, 6) or not parts[1].startswith("p") \
                or not parts[4].startswith("w"):
            raise ValueError(
                f"bad cell id {cell_id!r} (expected "
                f"query/p<plan>/<cache>/<fault>/w<workers>[/<exec>])"
            )
        exec_mode = parts[5] if len(parts) == 6 else "staged"
        if exec_mode not in EXEC_MODES:
            raise ValueError(
                f"bad cell id {cell_id!r} (unknown exec mode "
                f"{exec_mode!r}; choose from {', '.join(EXEC_MODES)})"
            )
        return cls(
            query_id=parts[0],
            plan_index=int(parts[1][1:]),
            cache_mode=parts[2],
            fault_mode=parts[3],
            workers=int(parts[4][1:]),
            exec_mode=exec_mode,
        )


@dataclass
class _Reference:
    """Serial, uncached, fault-free execution of one plan."""

    digest: str
    rows: int
    cost: CostSummary
    urls: frozenset


class DifferentialOracle:
    """Runs the conformance matrix for a set of queries over one site.

    The oracle owns the environment for the duration of a run: it installs
    and removes fault policies on the site's server and attaches fresh
    page caches per cell, so every cell is hermetic and reproducible from
    its id alone (given the site and the oracle seed)."""

    def __init__(
        self,
        env: SiteEnv,
        queries: dict,
        site_name: str = "",
        seed: int = 0,
        spec: Optional[MatrixSpec] = None,
    ):
        self.env = env
        self.site_name = site_name or getattr(env.scheme, "name", "site")
        self.seed = seed
        self.spec = spec or MatrixSpec()
        self.queries: dict[str, ConjunctiveQuery] = {
            qid: env.sql(q) if isinstance(q, str) else q
            for qid, q in queries.items()
        }
        #: raw SQL per query id (journal metadata; replay re-plans from it)
        self.query_text: dict[str, str] = {
            qid: q if isinstance(q, str) else str(q)
            for qid, q in queries.items()
        }
        self._plans: dict[str, list] = {}
        self._references: dict[tuple, _Reference] = {}
        #: the journal of the most recent journaled cell (tests inspect it)
        self.last_journal: Optional[Journal] = None

    # ------------------------------------------------------------------ #
    # the plan space
    # ------------------------------------------------------------------ #

    def plans(self, query_id: str) -> list:
        """All candidate plans for ``query_id`` (cheapest first, capped by
        ``spec.max_plans``)."""
        if query_id not in self._plans:
            self._plans[query_id] = self.env.enumerate_plans(
                self.queries[query_id], limit=self.spec.max_plans
            )
        return self._plans[query_id]

    def cells(self) -> list[Cell]:
        """The full matrix, in canonical (deterministic) order."""
        out = []
        for query_id in sorted(self.queries):
            for plan_index in range(len(self.plans(query_id))):
                for cache_mode in self.spec.cache_modes:
                    for fault_mode in self.spec.fault_modes:
                        for workers in self.spec.worker_counts:
                            for exec_mode in self.spec.exec_modes:
                                out.append(
                                    Cell(
                                        query_id=query_id,
                                        plan_index=plan_index,
                                        cache_mode=cache_mode,
                                        fault_mode=fault_mode,
                                        workers=workers,
                                        exec_mode=exec_mode,
                                    )
                                )
        return out

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #

    def run(
        self,
        shard_index: int = 0,
        shard_count: int = 1,
    ) -> ConformanceReport:
        """Execute one shard of the matrix (cell ``i`` belongs to shard
        ``i % shard_count``) and return the conformance report."""
        if not (0 <= shard_index < shard_count):
            raise ValueError(
                f"shard index {shard_index} outside 0..{shard_count - 1}"
            )
        all_cells = self.cells()
        report = ConformanceReport(
            site=self.site_name,
            seed=self.seed,
            shard_index=shard_index,
            shard_count=shard_count,
            total_cells=len(all_cells),
            queries={
                qid: str(self.queries[qid]) for qid in sorted(self.queries)
            },
        )
        for index, cell in enumerate(all_cells):
            if index % shard_count == shard_index:
                report.cells.append(self.run_cell(cell))
        return report

    def run_cell(self, cell: Union[Cell, str]) -> CellRecord:
        """Execute one matrix cell hermetically and check its invariants."""
        if isinstance(cell, str):
            cell = Cell.parse(cell)
        plans = self.plans(cell.query_id)
        if not (0 <= cell.plan_index < len(plans)):
            raise ValueError(
                f"{cell.query_id} has {len(plans)} plans; "
                f"no plan {cell.plan_index}"
            )
        plan = plans[cell.plan_index]
        reference = self._reference(cell.query_id, cell.plan_index)
        baseline = self._reference(cell.query_id, 0)
        env = self.env
        server = env.site.server

        record = CellRecord(
            cell_id=cell.cell_id,
            query_id=cell.query_id,
            plan_index=cell.plan_index,
            cache_mode=cell.cache_mode,
            fault_mode=cell.fault_mode,
            workers=cell.workers,
            exec_mode=cell.exec_mode,
            ok=True,
            plan_text=plan.render(scheme=env.scheme),
        )
        violations: list[str] = []

        # -- cache setup (plus prewarm / stale perturbation) ------------ #
        cache = self._make_cache(cell.cache_mode)
        touched: frozenset = frozenset()
        if cell.cache_mode in ("cross_query_warm", "cross_query_stale"):
            server.fault_policy = None
            prewarm = env.executor.execute(
                plan.expr,
                options=QueryOptions(
                    cache=cache, fetch=FetchConfig(max_workers=1)
                ),
            )
            if relation_digest(prewarm.relation) != reference.digest:
                violations.append(
                    "prewarm run disagrees with the uncached reference"
                )
            if cell.cache_mode == "cross_query_stale":
                touched = frozenset(
                    perturb_server(
                        server,
                        seed=self._cell_seed(cell),
                        fraction=self.spec.stale_fraction,
                    )
                )

        # -- fault schedule --------------------------------------------- #
        fault = self._make_fault(cell.fault_mode)
        expected_failure = self._expect_failure(cell, reference, touched)

        # -- the measured run ------------------------------------------- #
        tracer = self._make_tracer()
        journal = self._make_journal(cell)
        server.fault_policy = fault
        result = None
        error: Optional[RetriesExhaustedError] = None
        query_delta: Optional[AccessLog] = None
        navigator: Optional[SharedNavigator] = None
        if cell.exec_mode == "server":
            # the multi-query server's sharing machinery, single-threaded:
            # a fresh navigator resolves the plan's navigation prefixes on
            # its own client, the query runs on a clone with those pages
            # injected.  Invariants below are checked on the COMBINED
            # footprint, which must match a solo run's law for the cell's
            # cache/fault mode; the sharing attribution is checked on the
            # split logs afterwards.
            navigator, clone = self._make_server(env)
            options = QueryOptions(
                cache=cache,
                fetch=FetchConfig(max_workers=cell.workers),
                retry=self.spec.retry,
                tracer=tracer,
                journal=journal,
            )
            try:
                shared_run = execute_shared(
                    env,
                    plan.expr,
                    options,
                    navigator=navigator,
                    client=clone,
                    request_id=cell.cell_id,
                )
                result = shared_run.result
                query_delta = result.log
            except RetriesExhaustedError as err:
                error = err
                query_delta = clone.log.snapshot()
            finally:
                server.fault_policy = None
            delta = navigator.log.merge(query_delta)
        else:
            before = env.client.log.snapshot()
            try:
                result = env.executor.execute(
                    plan.expr,
                    options=QueryOptions(
                        cache=cache,
                        fetch=FetchConfig(max_workers=cell.workers),
                        retry=self.spec.retry,
                        tracer=tracer,
                        execution=cell.exec_mode,
                        journal=journal,
                    ),
                    request_id=cell.cell_id,
                )
            except RetriesExhaustedError as err:
                error = err
            finally:
                server.fault_policy = None
            delta = env.client.log.delta(before)

        # -- invariants -------------------------------------------------- #
        violations.extend(delta.reconcile())
        cost = delta.cost
        record.pages = cost.pages
        record.light_connections = cost.light_connections
        record.bytes = cost.bytes
        record.attempts = cost.attempts
        record.cache_hits = cost.cache_hits
        record.revalidations = cost.revalidations
        record.pages_saved = cost.pages_saved
        record.pages_shared = cost.pages_shared
        record.simulated_seconds = cost.simulated_seconds

        if error is not None:
            record.expected_failure = True
            if not expected_failure and not self._doomed(fault, error):
                record.expected_failure = False
                violations.append(
                    f"unexpected retries-exhausted abort on {error.url!r}"
                )
            if delta.page_downloads != 0:
                violations.append(
                    f"{delta.page_downloads} downloads succeeded under an "
                    "exhausted fault schedule"
                )
        elif expected_failure:
            if cell.exec_mode in ("adaptive", "adaptive_pipelined") and (
                delta.page_downloads == 0
            ):
                # an adaptive cell may legitimately survive an exhausted
                # schedule by pruning the very fetch that would have
                # aborted — but only if it touched the network zero times
                # (any download under an exhausted schedule would fail)
                record.rows = len(result.relation)
                record.relation_digest = relation_digest(result.relation)
                if record.relation_digest != baseline.digest:
                    violations.append(
                        f"relation mismatch: {record.rows} rows, digest "
                        f"{record.relation_digest} != baseline "
                        f"{baseline.digest} ({baseline.rows} rows)"
                    )
            else:
                violations.append(
                    "expected a retries-exhausted abort, but the query "
                    "succeeded"
                )
        else:
            record.rows = len(result.relation)
            record.relation_digest = relation_digest(result.relation)
            if record.relation_digest != baseline.digest:
                violations.append(
                    f"relation mismatch: {record.rows} rows, digest "
                    f"{record.relation_digest} != baseline {baseline.digest} "
                    f"({baseline.rows} rows)"
                )
            violations.extend(self._check_costs(cell, delta, reference, touched))
            if cell.exec_mode == "server":
                violations.extend(
                    self._check_sharing(query_delta, navigator.log, reference)
                )

        record.violations = violations
        record.ok = not violations
        if isinstance(tracer, RecordingTracer):
            record.trace_spans = len(tracer.spans())
            if violations:
                # every conformance violation ships with its trace: the
                # cell id reproduces the run, the excerpt explains it
                record.trace_excerpt = tracer.render(
                    max_events=4, max_lines=80
                )
        return record

    # ------------------------------------------------------------------ #
    # per-cell machinery
    # ------------------------------------------------------------------ #

    def _make_tracer(self):
        if self.spec.trace == "noop":
            return NULL_TRACER
        if self.spec.trace == "recording":
            return RecordingTracer()
        return None

    def _make_journal(self, cell: Cell) -> Optional[Journal]:
        """A fresh per-cell journal (``journal="on"``), its request block
        opened under the cell id with enough metadata to replay: the site
        name and the query's SQL text.  Retained on ``last_journal`` so
        tests can reconstruct the cell they just ran."""
        if self.spec.journal != "on":
            return None
        journal = Journal()
        journal.begin_request(
            cell.cell_id,
            site=self.site_name,
            query=self.query_text.get(cell.query_id, ""),
            cell=cell.cell_id,
            plan_index=cell.plan_index,
        )
        self.last_journal = journal
        return journal

    def _make_server(self, env: SiteEnv):
        """A fresh navigator + query-client clone for one ``server`` cell
        (hermetic: nothing is retained across cells, so every cell's
        prefixes are led by its own navigator)."""
        from repro.web.client import WebClient

        navigator = SharedNavigator(env.scheme, env.client, env.registry)
        clone = WebClient(
            env.client.server, env.client.network, env.client.retry_policy
        )
        return navigator, clone

    def _check_sharing(
        self,
        query_log: AccessLog,
        nav_log: AccessLog,
        reference: _Reference,
    ) -> list[str]:
        """The sharing-attribution arithmetic for a successful server cell.

        The navigator's fetches and the query's own fetches partition the
        reference page set, with ``pages_shared`` marking the hand-off:
        every page is either fetched (or revalidated) by exactly one of
        the two logs, and the query's share of the navigator's work is
        exactly the pages it was handed."""
        problems: list[str] = []
        ref = reference.cost
        accounted = (
            query_log.page_downloads
            + query_log.revalidations
            + query_log.pages_shared
        )
        if accounted != ref.pages:
            problems.append(
                f"sharing attribution: own {query_log.page_downloads} + "
                f"revalidated {query_log.revalidations} + shared "
                f"{query_log.pages_shared} != reference pages {ref.pages}"
            )
        provided = nav_log.page_downloads + nav_log.revalidations
        if provided != query_log.pages_shared:
            problems.append(
                f"sharing attribution: navigator provided {provided} pages "
                f"but the query was credited {query_log.pages_shared}"
            )
        if query_log.pages_shared <= 0:
            problems.append(
                "server cell shared no pages (every plan has at least its "
                "entry-point prefix)"
            )
        return problems

    def _make_cache(self, cache_mode: str) -> PageCache:
        if cache_mode == "off":
            return NO_CACHE
        policy = (
            CachePolicy.PER_QUERY
            if cache_mode == "per_query"
            else CachePolicy.CROSS_QUERY
        )
        return PageCache(capacity=self.spec.cache_capacity, policy=policy)

    def _make_fault(self, fault_mode: str) -> Optional[FaultPolicy]:
        if fault_mode == "none":
            return None
        rate = (
            self.spec.transient_rate
            if fault_mode == "transient"
            else self.spec.exhausted_rate
        )
        return FaultPolicy(failure_rate=rate, seed=self.seed)

    def _cell_seed(self, cell: Cell) -> int:
        digest = hashlib.blake2b(
            f"{self.seed}:{cell.cell_id}".encode(), digest_size=4
        ).digest()
        return int.from_bytes(digest, "big")

    def _expect_failure(
        self, cell: Cell, reference: _Reference, touched: frozenset
    ) -> bool:
        """Must this cell abort with RetriesExhaustedError?

        Only the ``exhausted`` schedule ever aborts — and only when the
        plan has to touch the network at all: a fully warm cross-query
        cache answers through light connections (HEADs bypass the fault
        policy), and a stale one aborts iff the perturbation touched a
        page this plan actually needs."""
        if cell.fault_mode != "exhausted":
            return False
        if cell.cache_mode == "cross_query_warm":
            return False
        if cell.cache_mode == "cross_query_stale":
            return bool(touched & reference.urls)
        return True

    def _doomed(
        self, fault: Optional[FaultPolicy], error: RetriesExhaustedError
    ) -> bool:
        """Whether the deterministic schedule genuinely dooms this URL —
        every allowed attempt was scheduled to fail.  Under the
        ``transient`` schedule this is astronomically rare but legitimate;
        anything else is a real violation."""
        if fault is None:
            return False
        return all(
            fault.will_fail(error.url, attempt)
            for attempt in range(1, self.spec.retry.max_attempts + 1)
        )

    def _check_costs(
        self,
        cell: Cell,
        delta,
        reference: _Reference,
        touched: frozenset,
    ) -> list[str]:
        """Mode-specific cost laws for a successful cell.

        Static modes are held to *equalities* against the serial uncached
        reference.  The ``adaptive`` / ``adaptive_pipelined`` modes may
        prune provably irrelevant fetches (docs/ADAPTIVE.md), so their
        laws relax to one-sided bounds: never more pages, bytes, or URLs
        than the reference — and the relation digest (checked by the
        caller) must still be bit-for-bit the baseline's."""
        problems: list[str] = []
        ref = reference.cost
        adaptive = cell.exec_mode in ("adaptive", "adaptive_pipelined")

        def check(condition: bool, message: str) -> None:
            if not condition:
                problems.append(message)

        if cell.cache_mode in ("off", "per_query", "cross_query_cold"):
            # the cache cannot help a cold / scoped-out run: downloads are
            # exactly the reference's, at every worker count (bounded
            # above by it for the adaptive modes)
            check(
                delta.page_downloads <= ref.pages
                if adaptive
                else delta.page_downloads == ref.pages,
                f"pages={delta.page_downloads} "
                f"{'>' if adaptive else '!='} reference {ref.pages}",
            )
            check(
                delta.bytes_downloaded <= ref.bytes
                if adaptive
                else delta.bytes_downloaded == ref.bytes,
                f"bytes={delta.bytes_downloaded} "
                f"{'>' if adaptive else '!='} reference {ref.bytes}",
            )
            check(
                delta.cache_hits == 0 and delta.revalidations == 0,
                f"cold cell served {delta.cache_hits} hits / "
                f"{delta.revalidations} revalidations from the cache",
            )
            check(
                set(delta.downloaded_urls) <= set(reference.urls)
                if adaptive
                else set(delta.downloaded_urls) == set(reference.urls),
                "downloaded URL set is not a subset of the reference"
                if adaptive
                else "downloaded URL set differs from the reference",
            )
            if cell.fault_mode == "none":
                check(
                    delta.attempts <= ref.attempts
                    if adaptive
                    else delta.attempts == ref.attempts,
                    f"attempts={delta.attempts} "
                    f"{'>' if adaptive else '!='} reference {ref.attempts} "
                    "without faults",
                )
                if cell.workers == 1 and cell.cache_mode == "off" and (
                    not adaptive
                ):
                    # the serial uncached cell IS the reference execution:
                    # every counter bit-for-bit, wall time up to float
                    # accumulation error (log deltas subtract running sums)
                    cost = delta.cost
                    check(
                        (cost.pages, cost.light_connections, cost.bytes,
                         cost.attempts, cost.cache_hits, cost.revalidations,
                         cost.pages_saved)
                        == (ref.pages, ref.light_connections, ref.bytes,
                            ref.attempts, ref.cache_hits, ref.revalidations,
                            ref.pages_saved),
                        f"serial k=1 cost {cost} != reference {ref}",
                    )
                    check(
                        math.isclose(
                            cost.simulated_seconds,
                            ref.simulated_seconds,
                            rel_tol=1e-9,
                            abs_tol=1e-9,
                        ),
                        f"serial k=1 wall time {cost.simulated_seconds!r} "
                        f"!= reference {ref.simulated_seconds!r}",
                    )
            else:
                check(
                    delta.attempts >= delta.page_downloads,
                    "fewer attempts than downloads under faults",
                )
        elif cell.cache_mode == "cross_query_warm":
            check(
                delta.page_downloads == 0,
                f"warm cache still downloaded {delta.page_downloads} pages",
            )
            check(
                delta.revalidations <= ref.pages
                if adaptive
                else delta.revalidations == ref.pages,
                f"revalidations={delta.revalidations} "
                f"{'>' if adaptive else '!='} reference pages {ref.pages}",
            )
            check(
                delta.pages_saved <= ref.pages
                if adaptive
                else delta.pages_saved == ref.pages,
                f"pages_saved={delta.pages_saved} "
                f"{'>' if adaptive else '!='} reference pages {ref.pages}",
            )
        elif cell.cache_mode == "cross_query_stale":
            stale = len(touched & reference.urls)
            fresh = int(ref.pages) - stale
            check(
                delta.page_downloads <= stale
                if adaptive
                else delta.page_downloads == stale,
                f"stale cache re-downloaded {delta.page_downloads} pages, "
                f"expected {'at most' if adaptive else 'exactly'} the "
                f"{stale} touched ones",
            )
            check(
                delta.revalidations <= fresh
                if adaptive
                else delta.revalidations == fresh,
                f"revalidations={delta.revalidations} "
                f"{'>' if adaptive else '!='} untouched pages {fresh}",
            )
            check(
                delta.light_connections <= ref.pages
                if adaptive
                else delta.light_connections == ref.pages,
                f"light={delta.light_connections} "
                f"{'>' if adaptive else '!='} one HEAD per cached "
                f"page ({ref.pages})",
            )
            check(
                delta.page_downloads + delta.pages_saved <= ref.pages
                if adaptive
                else delta.page_downloads + delta.pages_saved == ref.pages,
                f"downloads + pages_saved "
                f"{'>' if adaptive else '!='} reference pages",
            )
        return problems

    # ------------------------------------------------------------------ #
    # references
    # ------------------------------------------------------------------ #

    def _reference(self, query_id: str, plan_index: int) -> _Reference:
        """The serial, uncached, fault-free execution of one plan (cached).

        Plan 0's reference doubles as the query's *baseline*: the answer
        every other cell must reproduce."""
        key = (query_id, plan_index)
        if key not in self._references:
            env = self.env
            server = env.site.server
            previous = server.fault_policy
            server.fault_policy = None
            try:
                before = env.client.log.snapshot()
                result = env.executor.execute(
                    self.plans(query_id)[plan_index].expr,
                    options=QueryOptions(
                        cache=NO_CACHE, fetch=FetchConfig(max_workers=1)
                    ),
                )
                delta = env.client.log.delta(before)
            finally:
                server.fault_policy = previous
            self._references[key] = _Reference(
                digest=relation_digest(result.relation),
                rows=len(result.relation),
                cost=delta.cost,
                urls=frozenset(delta.downloaded_urls),
            )
        return self._references[key]
