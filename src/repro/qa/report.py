"""Machine-readable conformance reports for the QA matrix.

A report is one JSON document per oracle run: the matrix definition, one
record per executed cell, and every violation found.  Each cell carries a
stable ``cell id`` — ``query/p<plan>/<cache>/<fault>/w<workers>[/<exec>]``
(the exec component appears only for non-staged execution modes) — from
which the exact execution can be reproduced::

    python -m repro.qa --site movies --seed 7 \\
        --cell q_join/p1/cross_query_warm/transient/w4

(see ``docs/TESTING.md`` for the full recipe, including how to pin a
found violation as a regression test).
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass, field
from typing import Optional

__all__ = ["CellRecord", "ConformanceReport", "summary_path"]


def summary_path(path: str) -> str:
    """The compact-summary path written alongside a full report."""
    base = path[:-5] if path.endswith(".json") else path
    return f"{base}-summary.json"


@dataclass
class CellRecord:
    """The outcome of one matrix cell (one plan execution)."""

    cell_id: str
    query_id: str
    plan_index: int
    cache_mode: str
    fault_mode: str
    workers: int
    ok: bool
    #: execution strategy the cell ran under (staged | pipelined |
    #: columnar | columnar_pipelined | server)
    exec_mode: str = "staged"
    #: cell was expected to abort with RetriesExhaustedError, and did
    expected_failure: bool = False
    rows: Optional[int] = None
    #: stable digest of the canonical relation (equality across cells ⇔
    #: identical answers); None when the cell expectedly failed
    relation_digest: Optional[str] = None
    pages: float = 0.0
    light_connections: float = 0.0
    bytes: float = 0.0
    attempts: float = 0.0
    cache_hits: float = 0.0
    revalidations: float = 0.0
    pages_saved: float = 0.0
    #: pages handed over by the multi-query server's shared navigator
    #: (``server`` exec cells only; 0 elsewhere)
    pages_shared: float = 0.0
    simulated_seconds: float = 0.0
    plan_text: str = ""
    violations: list = field(default_factory=list)
    #: number of spans the cell's tracer recorded (None: untraced run)
    trace_spans: Optional[int] = None
    #: rendered span tree, attached when a traced cell found violations
    trace_excerpt: Optional[str] = None


@dataclass
class ConformanceReport:
    """Everything one ``repro.qa`` run measured, JSON-round-trippable."""

    site: str
    seed: int
    shard_index: int = 0
    shard_count: int = 1
    total_cells: int = 0
    queries: dict = field(default_factory=dict)
    cells: list = field(default_factory=list)

    @property
    def cells_run(self) -> int:
        return len(self.cells)

    @property
    def violations(self) -> list[str]:
        """Every violation across all cells, prefixed with its cell id."""
        out = []
        for cell in self.cells:
            for violation in cell.violations:
                out.append(f"{cell.cell_id}: {violation}")
        return out

    @property
    def ok(self) -> bool:
        return all(cell.ok for cell in self.cells)

    # ------------------------------------------------------------------ #
    # serialization
    # ------------------------------------------------------------------ #

    def to_json(self) -> dict:
        return {
            "site": self.site,
            "seed": self.seed,
            "shard": f"{self.shard_index}/{self.shard_count}",
            "total_cells": self.total_cells,
            "cells_run": self.cells_run,
            "ok": self.ok,
            "violations": self.violations,
            "queries": dict(self.queries),
            "cells": [asdict(cell) for cell in self.cells],
        }

    def digest(self) -> str:
        """Stable digest over the executed cells: id, outcome, answer.

        Two runs of the same shard agree iff their digests agree, so
        summaries are comparable without shipping the multi-megabyte full
        report."""
        payload = repr(
            sorted(
                (cell.cell_id, cell.ok, cell.relation_digest, cell.rows)
                for cell in self.cells
            )
        ).encode()
        return hashlib.sha256(payload).hexdigest()[:16]

    def summary_json(self) -> dict:
        """The compact machine-readable summary (no per-cell payloads)."""
        return {
            "site": self.site,
            "seed": self.seed,
            "shard": f"{self.shard_index}/{self.shard_count}",
            "total_cells": self.total_cells,
            "cells_run": self.cells_run,
            "ok": self.ok,
            "violation_count": len(self.violations),
            "violations": self.violations[:50],
            "digest": self.digest(),
        }

    def write(self, path: str) -> str:
        """Write the full report plus a ``...-summary.json`` beside it.

        Full reports are work products (gitignored — they run to
        megabytes); the compact summary is small enough to commit as the
        run's durable record."""
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(path, "w") as handle:
            json.dump(self.to_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        with open(summary_path(path), "w") as handle:
            json.dump(self.summary_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path

    @classmethod
    def load(cls, path: str) -> "ConformanceReport":
        with open(path) as handle:
            data = json.load(handle)
        shard_index, _, shard_count = data.get("shard", "0/1").partition("/")
        report = cls(
            site=data["site"],
            seed=data["seed"],
            shard_index=int(shard_index),
            shard_count=int(shard_count or 1),
            total_cells=data.get("total_cells", 0),
            queries=dict(data.get("queries", {})),
        )
        for raw in data.get("cells", []):
            report.cells.append(CellRecord(**raw))
        return report

    # ------------------------------------------------------------------ #
    # presentation
    # ------------------------------------------------------------------ #

    def summary(self) -> str:
        lines = [
            f"conformance: site={self.site} seed={self.seed} "
            f"shard={self.shard_index}/{self.shard_count} — "
            f"{self.cells_run} of {self.total_cells} matrix cells run, "
            f"{len(self.violations)} violation(s)"
        ]
        digests: dict[str, set] = {}
        for cell in self.cells:
            if cell.relation_digest is not None:
                digests.setdefault(cell.query_id, set()).add(
                    cell.relation_digest
                )
        for query_id in sorted(self.queries):
            seen = digests.get(query_id, set())
            mark = "≡" if len(seen) <= 1 else "≠"
            cells = [c for c in self.cells if c.query_id == query_id]
            lines.append(
                f"  {mark} {query_id}: {len(cells)} cells, "
                f"{len(seen)} distinct answer(s)"
            )
        for violation in self.violations[:20]:
            lines.append(f"  VIOLATION {violation}")
        if len(self.violations) > 20:
            lines.append(f"  ... {len(self.violations) - 20} more")
        return "\n".join(lines)
