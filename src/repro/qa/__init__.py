"""Conformance QA: the plan-space differential oracle.

The paper proves (Section 6) that every rewrite in its plan-generation
rules preserves the query's answer — so *every* candidate plan Algorithm 1
enumerates must compute the same relation, and the cache/fault/concurrency
machinery added on top (PRs 1–2) must be answer- and page-count-
transparent.  This package checks all of that empirically:

* :class:`~repro.qa.oracle.DifferentialOracle` executes every candidate
  plan of every query under a matrix of cache policies, fault schedules,
  and worker counts, asserting relation equality against a serial
  uncached baseline plus per-mode cost-accounting laws;
* :mod:`~repro.qa.report` renders runs as machine-readable JSON
  conformance reports with stable, reproducible cell ids;
* :mod:`~repro.qa.cli` (``python -m repro.qa``) runs matrix shards from
  the shell — see ``docs/TESTING.md``.
"""

from repro.qa.oracle import (
    CACHE_MODES,
    FAULT_MODES,
    Cell,
    DifferentialOracle,
    MatrixSpec,
    relation_digest,
)
from repro.qa.report import CellRecord, ConformanceReport
from repro.qa.cli import build_oracle, main

__all__ = [
    "CACHE_MODES",
    "FAULT_MODES",
    "Cell",
    "CellRecord",
    "ConformanceReport",
    "DifferentialOracle",
    "MatrixSpec",
    "build_oracle",
    "main",
    "relation_digest",
]
