"""``python -m repro.qa`` — run a conformance-matrix shard from the shell.

Examples::

    # fast shard (CI per-push): a quarter of the movies matrix
    python -m repro.qa --site movies --shard 0/4 --seed 7

    # the full matrix over a fuzzed site
    python -m repro.qa --site fuzz:42

    # reproduce one failing cell by its id (from a report's violations)
    python -m repro.qa --site movies --seed 7 \\
        --cell "md_join/p2/cross_query_warm/transient/w4"

Exit status is 0 iff every executed cell satisfied all invariants; the
machine-readable report lands under ``benchmarks/results/`` (or ``--out``).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.qa.oracle import (
    CACHE_MODES,
    EXEC_MODES,
    FAULT_MODES,
    JOURNAL_MODES,
    TRACE_MODES,
    DifferentialOracle,
    MatrixSpec,
)
from repro.qa.report import summary_path
from repro.sites import SiteEnv, bibliography, fuzzed, movies, university
from repro.sitegen.bibliography import BibliographyConfig
from repro.sitegen.university import UniversityConfig

__all__ = ["build_oracle", "main"]

#: Example 7.1 / 7.2, verbatim (named QA cases per the paper).
EX71_SQL = (
    "SELECT Course.CName, Description FROM Professor, CourseInstructor, "
    "Course WHERE Professor.PName = CourseInstructor.PName "
    "AND CourseInstructor.CName = Course.CName "
    "AND Rank = 'Full' AND Session = 'Fall'"
)
EX72_SQL = (
    "SELECT Professor.PName, email FROM Course, CourseInstructor, "
    "Professor, ProfDept WHERE Course.CName = CourseInstructor.CName "
    "AND CourseInstructor.PName = Professor.PName "
    "AND Professor.PName = ProfDept.PName "
    "AND ProfDept.DName = 'Computer Science' AND Type = 'Graduate'"
)

#: Default query suites.  Sites stay small so the full matrix runs in
#: seconds; the queries cover single-relation scans, selections, the
#: paper's named examples, and multi-way joins (which is where the plan
#: space fans out).
UNIVERSITY_QUERIES = {
    "depts": "SELECT DName, Address FROM Dept",
    "profs": "SELECT PName, Rank FROM Professor WHERE Rank = 'Full'",
    "course_instr": "SELECT CName, PName FROM CourseInstructor",
    "ex71": EX71_SQL,
    "ex72": EX72_SQL,
}

BIBLIOGRAPHY_QUERIES = {
    "editions": "SELECT ConfName, Year, Editors FROM Edition",
    "papers": "SELECT ConfName, Year, Title, AName FROM PaperAuthor "
              "WHERE ConfName = 'Conf1'",
}

MOVIE_QUERIES = {
    "movies": "SELECT Title, Year, Genre FROM Movie",
    "directors": "SELECT DName FROM Director",
    "movie_director": "SELECT Title, DName FROM MovieDirector",
    "md_join": "SELECT Movie.Title, Genre, MovieDirector.DName "
               "FROM Movie, MovieDirector "
               "WHERE Movie.Title = MovieDirector.Title",
    "mdd_join": "SELECT Movie.Title, Director.DName "
                "FROM Movie, MovieDirector, Director "
                "WHERE Movie.Title = MovieDirector.Title "
                "AND MovieDirector.DName = Director.DName",
}

#: Small site shapes: big enough for interesting plans, small enough that
#: a full matrix stays in CI-friendly territory.
_UNIVERSITY_CONFIG = UniversityConfig(n_depts=2, n_profs=6, n_courses=12)
_BIBLIOGRAPHY_CONFIG = BibliographyConfig(
    n_conferences=4, n_db_conferences=2, years_per_conf=3
)


def build_site(site: str) -> tuple[SiteEnv, dict]:
    """Resolve a ``--site`` argument to an environment and query suite."""
    if site == "university":
        return university(_UNIVERSITY_CONFIG), dict(UNIVERSITY_QUERIES)
    if site == "bibliography":
        return bibliography(_BIBLIOGRAPHY_CONFIG), dict(BIBLIOGRAPHY_QUERIES)
    if site == "movies":
        return movies(), dict(MOVIE_QUERIES)
    if site.startswith("fuzz:"):
        try:
            fuzz_seed = int(site[len("fuzz:"):])
        except ValueError:
            raise SystemExit(f"bad fuzz site {site!r} (want fuzz:<int>)")
        env = fuzzed(fuzz_seed)
        return env, env.site.queries()
    raise SystemExit(
        f"unknown site {site!r} (university, bibliography, movies, "
        f"or fuzz:<seed>)"
    )


def build_oracle(
    site: str,
    seed: int = 0,
    spec: Optional[MatrixSpec] = None,
) -> DifferentialOracle:
    """The oracle the CLI runs — importable for tests and notebooks."""
    env, queries = build_site(site)
    return DifferentialOracle(
        env, queries, site_name=site, seed=seed, spec=spec
    )


def _parse_shard(text: str) -> tuple[int, int]:
    index, sep, count = text.partition("/")
    if not sep:
        raise SystemExit(f"bad shard {text!r} (want K/N, e.g. 0/4)")
    try:
        return int(index), int(count)
    except ValueError:
        raise SystemExit(f"bad shard {text!r} (want K/N, e.g. 0/4)")


def _parse_csv(text: str, universe: Sequence[str], what: str) -> tuple:
    if text == "all":
        return tuple(universe)
    chosen = tuple(part.strip() for part in text.split(",") if part.strip())
    for part in chosen:
        if part not in universe:
            raise SystemExit(
                f"unknown {what} {part!r} (choose from "
                f"{', '.join(universe)})"
            )
    return chosen


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.qa",
        description="Plan-space differential oracle: execute every candidate "
        "plan under a cache/fault/concurrency matrix and check conformance.",
    )
    parser.add_argument(
        "--site",
        default="movies",
        help="university | bibliography | movies | fuzz:<seed> "
        "(default: movies)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="oracle seed: drives fault schedules and stale perturbations",
    )
    parser.add_argument(
        "--shard", default="0/1", metavar="K/N",
        help="run cells with index %% N == K (default: 0/1, everything)",
    )
    parser.add_argument(
        "--workers", default="1,4",
        help="comma-separated worker counts (default: 1,4)",
    )
    parser.add_argument(
        "--cache", default="all",
        help=f"comma-separated cache modes or 'all' "
        f"({', '.join(CACHE_MODES)})",
    )
    parser.add_argument(
        "--faults", default="all",
        help=f"comma-separated fault modes or 'all' "
        f"({', '.join(FAULT_MODES)})",
    )
    parser.add_argument(
        "--exec", dest="exec_modes", default="all",
        help=f"comma-separated execution modes or 'all' "
        f"({', '.join(EXEC_MODES)}); pipelined and columnar cells must "
        f"match staged ones on every page count and digest",
    )
    parser.add_argument(
        "--max-plans", type=int, default=None, metavar="N",
        help="cap the candidate plans per query (default: the full space)",
    )
    parser.add_argument(
        "--trace", default="off", choices=TRACE_MODES,
        help="tracer attached to every measured run (default: off); "
        "'recording' attaches the span tree to each violation — answers "
        "and page counts must be identical in all three modes",
    )
    parser.add_argument(
        "--journal", default="off", choices=JOURNAL_MODES,
        help="attach a fresh event journal to every measured run "
        "(default: off); journaling must be digest- and cost-neutral",
    )
    parser.add_argument(
        "--cell", action="append", default=[], metavar="CELL_ID",
        help="run only this cell (repeatable); overrides --shard",
    )
    parser.add_argument(
        "--list-cells", action="store_true",
        help="print every cell id in the matrix and exit",
    )
    parser.add_argument(
        "--out", default=None,
        help="report path (default: benchmarks/results/"
        "QA-<site>-s<seed>-shard<K>of<N>.json)",
    )
    args = parser.parse_args(argv)

    shard_index, shard_count = _parse_shard(args.shard)
    try:
        workers = tuple(
            int(part) for part in args.workers.split(",") if part.strip()
        )
    except ValueError:
        raise SystemExit(f"bad --workers {args.workers!r}")
    spec = MatrixSpec(
        cache_modes=_parse_csv(args.cache, CACHE_MODES, "cache mode"),
        fault_modes=_parse_csv(args.faults, FAULT_MODES, "fault mode"),
        worker_counts=workers,
        exec_modes=_parse_csv(args.exec_modes, EXEC_MODES, "exec mode"),
        max_plans=args.max_plans,
        trace=args.trace,
        journal=args.journal,
    )
    oracle = build_oracle(args.site, seed=args.seed, spec=spec)

    if args.list_cells:
        try:
            for cell in oracle.cells():
                print(cell.cell_id)
        except BrokenPipeError:  # `... --list-cells | head` is fine
            sys.stderr.close()
        return 0

    if args.cell:
        ok = True
        for cell_id in args.cell:
            record = oracle.run_cell(cell_id)
            status = "ok" if record.ok else "FAIL"
            print(f"{status} {record.cell_id}: rows={record.rows} "
                  f"digest={record.relation_digest} pages={record.pages:g} "
                  f"light={record.light_connections:g} "
                  f"saved={record.pages_saved:g}")
            for violation in record.violations:
                print(f"  VIOLATION {violation}")
            ok = ok and record.ok
        return 0 if ok else 1

    report = oracle.run(shard_index=shard_index, shard_count=shard_count)
    site_slug = args.site.replace(":", "")
    out = args.out or (
        f"benchmarks/results/QA-{site_slug}-s{args.seed}"
        f"-shard{shard_index}of{shard_count}.json"
    )
    report.write(out)
    print(report.summary())
    print(f"report: {out}")
    print(f"summary: {summary_path(out)}")
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
