"""Entry point for ``python -m repro.qa``."""

import sys

from repro.qa.cli import main

sys.exit(main())
