"""Algorithm 1: Navigation Plan Selection (paper, Section 6.3).

Given a conjunctive query over external relations the planner:

1. translates it into relational algebra over external-relation scans
   (:mod:`repro.views.translate`);
2. replaces each external relation with its default navigations *in all
   possible ways* (rule 1);
3. eliminates repeated navigations (rule 4, to closure);
4. pushes and prunes joins (rules 8 and 9, to closure);
5. pushes selections (rule 6, an improvement pass);
6. substitutes projections (rule 7, to closure);
7. eliminates unnecessary navigations and unnests (rules 5/3);
8. estimates C(E) for every surviving candidate and picks the cheapest.

Candidates that became ill-typed (e.g. rule 9 dropped a side whose
attributes the query still needs — the paper's π_X side condition) are
silently discarded during validation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.adm.scheme import WebScheme
from repro.algebra.ast import Expr, ExternalRelScan
from repro.algebra.computable import is_computable
from repro.algebra.printer import render_expr
from repro.algebra.visitors import replace_at, walk
from repro.errors import (
    AlgebraError,
    OptimizerError,
    PredicateError,
    SchemaError,
)
from repro.obs.rewrite import RewriteTrace
from repro.optimizer.cost import CacheEstimate, CostModel
from repro.optimizer.rewriter import closure
from repro.optimizer.rules import (
    JoinPushdown,
    MergeRepeatedNavigation,
    PointerChase,
    PointerJoin,
    ProjectionSubstitution,
    eliminate_unused_navigation,
    push_selections,
    substitute_attrs,
)
from repro.views.conjunctive import ConjunctiveQuery
from repro.views.external import ExternalView, realias_navigation
from repro.views.translate import translate
from repro.web.client import CostSummary

__all__ = ["PlanCandidate", "PlannerResult", "Planner", "PlannerOptions"]

#: Cap on rule-1 expansion combinations (navigation choices multiply).
MAX_EXPANSIONS = 256


@dataclass(frozen=True)
class PlanCandidate:
    """One costed execution plan.

    ``cost`` is the paper's page-count C(E); ``bytes_cost`` is the footnote-8
    refinement used to break page-count ties (a smaller list page beats a
    bigger one, as in the Introduction's path 2 vs path 1).
    """

    expr: Expr
    cost: float
    cardinality: float
    bytes_cost: float = 0.0

    def render(self, compact: bool = True, scheme: Optional[WebScheme] = None) -> str:
        return render_expr(self.expr, compact=compact, scheme=scheme)


@dataclass
class PlannerResult:
    """The chosen plan plus everything the optimizer considered.

    When the plan was selected under a :class:`CacheEstimate`,
    ``cache_estimate`` records it and ``uncached_cost`` is the chosen
    plan's plain C(E) — so ``uncached_cost - best.cost`` is the page
    saving the optimizer expects from the warm cache."""

    best: PlanCandidate
    candidates: list  # all valid candidates, sorted by cost
    generated: int    # plans generated before validation
    cache_estimate: Optional[CacheEstimate] = None
    uncached_cost: Optional[float] = None
    #: candidate lineage (which rule produced which plan, with C(E) at
    #: each step) when the run was traced; see :meth:`why`
    rewrite_trace: Optional[RewriteTrace] = None

    @property
    def cost(self) -> CostSummary:
        """Estimated cost of the chosen plan in the shared summary shape
        (same fields as ``ExecutionResult.cost``).  ``attempts`` assumes one
        request per page; ``simulated_seconds`` and ``light_connections``
        are only measurable at run time and report 0.  Under a cache
        estimate, ``pages_saved`` is the expected download saving."""
        saved = 0.0
        if self.uncached_cost is not None:
            saved = max(0.0, self.uncached_cost - self.best.cost)
        return CostSummary(
            pages=self.best.cost,
            light_connections=0.0,
            bytes=self.best.bytes_cost,
            simulated_seconds=0.0,
            attempts=self.best.cost,
            pages_saved=saved,
        )

    def describe(self, scheme: Optional[WebScheme] = None, limit: int = 10) -> str:
        lines = [
            f"{len(self.candidates)} valid plans "
            f"(of {self.generated} generated):"
        ]
        for i, cand in enumerate(self.candidates[:limit]):
            marker = "→" if cand is self.best else " "
            lines.append(
                f" {marker} [{cand.cost:10.2f} pages] "
                f"{cand.render(scheme=scheme)}"
            )
        if len(self.candidates) > limit:
            lines.append(f"   ... {len(self.candidates) - limit} more")
        return "\n".join(lines)

    def why(self, candidate: Optional[PlanCandidate] = None) -> str:
        """*Why this plan*: the lineage of ``candidate`` (default: the
        chosen plan) — which of rules 1–9 fired, in which planner phase,
        with the C(E) estimate at each step — ending with the access-path
        strategy (pointer-join vs pointer-chase) that produced it.
        Requires a traced run (``plan_query(..., trace=True)``)."""
        if self.rewrite_trace is None:
            return "(planner run was not traced; re-plan with trace=True)"
        target = candidate if candidate is not None else self.best
        return self.rewrite_trace.describe(render_expr(target.expr))


@dataclass(frozen=True)
class PlannerOptions:
    """Feature toggles for ablation studies.

    Each flag disables one rewrite family; the default enables everything
    (the paper's full Algorithm 1).  Disabling a family never breaks
    correctness — plans just get worse — which the ablation benchmark
    quantifies.
    """

    merge_repeated: bool = True        # rule 4
    pointer_join: bool = True          # rule 8
    pointer_chase: bool = True         # rule 9
    join_pushdown: bool = True         # the reassociation rules 8/9 need
    push_selections: bool = True       # rule 6
    substitute_projections: bool = True  # rule 7
    eliminate_navigations: bool = True   # rules 3/5


class Planner:
    """Algorithm 1 over a web scheme, an external view, and statistics."""

    def __init__(
        self,
        view: ExternalView,
        cost_model: CostModel,
        options: Optional[PlannerOptions] = None,
    ):
        self.view = view
        self.scheme = view.scheme
        self.cost_model = cost_model
        self.options = options or PlannerOptions()
        self._cache: dict = {}

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #

    def plan_query(
        self,
        query: ConjunctiveQuery,
        cache_estimate: Optional[CacheEstimate] = None,
        trace: bool = False,
    ) -> PlannerResult:
        """Plan a conjunctive query (steps 1–8).

        ``cache_estimate`` makes step 8 cache-aware: candidates are costed
        with per-page-scheme hit rates, so a plan whose pointer set is
        already cached can win over the cold-cache choice.

        ``trace=True`` records candidate lineage in a
        :class:`~repro.obs.rewrite.RewriteTrace` (attached to the result as
        ``rewrite_trace``) so :meth:`PlannerResult.why` can answer which
        rules produced the chosen plan.  Traced runs bypass the memo (the
        trace is per-run state); the plan chosen is identical either way.

        Results are memoized per planner instance and estimate (a planner
        is bound to one statistics snapshot; rebuilding the planner — as
        ``SiteEnv.refresh_statistics`` does — naturally drops the memo).
        """
        if trace:
            rewrite_trace = RewriteTrace(cost_fn=self.cost_model.cost)
            return self.plan_expr(
                translate(query, self.view),
                cache_estimate=cache_estimate,
                trace=rewrite_trace,
            )
        key = (str(query), cache_estimate)
        cached = self._cache.get(key)
        if cached is None:
            cached = self.plan_expr(
                translate(query, self.view), cache_estimate=cache_estimate
            )
            if len(self._cache) > 512:
                self._cache.clear()
            self._cache[key] = cached
        return cached

    def enumerate_plans(
        self,
        query: ConjunctiveQuery,
        cache_estimate: Optional[CacheEstimate] = None,
        limit: Optional[int] = None,
    ) -> list[PlanCandidate]:
        """Every valid candidate Algorithm 1 considered, cheapest first.

        This is the *full plan space* of the rewrite system (rules 1–9 to
        closure), not just the cost winner — the paper's semantic claim is
        that all of them compute the same relation, differing only in page
        accesses, and the QA differential oracle (:mod:`repro.qa`)
        executes each one to enforce exactly that.  ``limit`` keeps only
        the ``limit`` cheapest candidates."""
        candidates = self.plan_query(query, cache_estimate).candidates
        if limit is not None and limit >= 1:
            candidates = candidates[:limit]
        return list(candidates)

    def plan_expr(
        self,
        expr: Expr,
        cache_estimate: Optional[CacheEstimate] = None,
        trace: Optional[RewriteTrace] = None,
    ) -> PlannerResult:
        """Plan a relational-algebra expression over external relations."""
        opts = self.options
        # step 2: rule 1 — expand external relations in all possible ways
        expanded = self._expand_all(expr, trace=trace)
        # step 3: rule 4 — eliminate repeated navigations
        merge_rule = MergeRepeatedNavigation(stats=self.cost_model.stats)
        merged = expanded
        if opts.merge_repeated:
            merged = closure(
                expanded,
                [merge_rule],
                self.scheme,
                trace=trace,
                phase="merge repeated (rule 4)",
            )
        # step 4: rules 8, 9 — push and prune joins
        join_rules = []
        if opts.join_pushdown:
            join_rules.append(JoinPushdown())
        if opts.merge_repeated:
            join_rules.append(merge_rule)
        if opts.pointer_join:
            join_rules.append(PointerJoin())
        if opts.pointer_chase:
            join_rules.append(PointerChase())
        join_variants = (
            closure(
                merged,
                join_rules,
                self.scheme,
                trace=trace,
                phase="join rules (8/9)",
            )
            if join_rules
            else merged
        )
        # step 5: rule 6 — push selections
        pushed = join_variants
        if opts.push_selections:
            pushed = _dedup(
                _try_map(
                    join_variants,
                    lambda e: push_selections(e, self.scheme),
                    trace=trace,
                    phase="push selections (rule 6)",
                    rule="push_selections",
                )
            )
        # step 6: rule 7 — substitute projections
        projected = pushed
        if opts.substitute_projections:
            projected = closure(
                pushed,
                [ProjectionSubstitution()],
                self.scheme,
                trace=trace,
                phase="projection substitution (rule 7)",
            )
        # step 7: rules 5/3 — eliminate unnecessary navigations
        final = _dedup(projected)
        if opts.eliminate_navigations:
            final = _dedup(
                _try_map(
                    projected,
                    lambda e: eliminate_unused_navigation(e, self.scheme),
                    trace=trace,
                    phase="eliminate navigation (rules 3/5)",
                    rule="eliminate_unused_navigation",
                )
            )
        # step 8: validate, cost, choose (cache-aware when an estimate is
        # given: the effective per-access page cost shrinks by the expected
        # hit rate of the accessed page-scheme)
        model = (
            self.cost_model.with_cache(cache_estimate)
            if cache_estimate is not None
            else self.cost_model
        )
        candidates = []
        for plan in final:
            candidate = self._validate_and_cost(plan, model)
            if candidate is not None:
                candidates.append(candidate)
        if not candidates:
            raise OptimizerError(
                "no valid execution plan survived rewriting; check that "
                "the view's default navigations cover the queried attributes"
            )
        candidates.sort(key=lambda c: (c.cost, c.bytes_cost, c.render()))
        uncached_cost = None
        if cache_estimate is not None:
            try:
                uncached_cost = self.cost_model.cost(candidates[0].expr)
            except OptimizerError:  # pragma: no cover - defensive
                uncached_cost = None
        return PlannerResult(
            best=candidates[0],
            candidates=candidates,
            generated=len(final),
            cache_estimate=cache_estimate,
            uncached_cost=uncached_cost,
            rewrite_trace=trace,
        )

    # ------------------------------------------------------------------ #
    # rule 1: expansion
    # ------------------------------------------------------------------ #

    def _expand_all(
        self, expr: Expr, trace: Optional[RewriteTrace] = None
    ) -> list[Expr]:
        scans = [
            (path, node)
            for path, node in walk(expr)
            if isinstance(node, ExternalRelScan)
        ]
        if not scans:
            return [expr]
        # Self-joins: occurrences of the same relation must navigate under
        # distinct aliases, or rule 4 would wrongly collapse them.
        relation_counts: dict[str, int] = {}
        for _, scan in scans:
            relation_counts[scan.name] = relation_counts.get(scan.name, 0) + 1
        choice_lists = []
        for _, scan in scans:
            relation = self.view.relation(scan.name)
            navigations = list(relation.navigations)
            if relation_counts[scan.name] > 1:
                navigations = [
                    realias_navigation(nav, self.scheme, scan.qualifier)
                    for nav in navigations
                ]
            choice_lists.append(navigations)
        total = 1
        for choices in choice_lists:
            total *= len(choices)
        if total > MAX_EXPANSIONS:
            raise OptimizerError(
                f"query has {total} default-navigation combinations "
                f"(cap {MAX_EXPANSIONS})"
            )
        results = []
        for combo in itertools.product(*choice_lists):
            rewritten = expr
            mapping: dict[str, str] = {}
            # replace scans from the deepest paths first so shallower
            # replacements do not invalidate recorded paths
            for (path, scan), nav in sorted(
                zip(scans, combo), key=lambda item: -len(item[0][0])
            ):
                rewritten = replace_at(rewritten, path, nav.body)
                for attr, qualified in nav.mapping:
                    mapping[f"{scan.qualifier}.{attr}"] = qualified
            expanded = substitute_attrs(rewritten, mapping)
            results.append(expanded)
            if trace is not None:
                # rule-1 expansions are lineage roots (parent=None)
                trace.record(
                    "expansion (rule 1)",
                    "DefaultNavigation",
                    render_expr(expanded),
                    expr=expanded,
                )
        return _dedup(results)

    # ------------------------------------------------------------------ #
    # adaptive suffix re-planning
    # ------------------------------------------------------------------ #

    def replan_suffix(
        self,
        suffix: Expr,
        rule: str = "PointerJoin",
        trace: Optional[RewriteTrace] = None,
    ) -> Optional[Expr]:
        """Rewrite one unexecuted plan suffix with a strategy rule.

        The adaptive executor (:mod:`repro.engine.adaptive`) calls this
        when an observed fan-out crosses the cost model's crossover
        mid-query: ``suffix`` is the join (or navigation) subtree it has
        not yet executed, and ``rule`` names the Section 7 strategy to
        switch to (``"PointerJoin"`` for rule 8, ``"PointerChase"`` for
        rule 9).  Returns the first rewriting that validates and costs —
        the same :meth:`_validate_and_cost` bar every static candidate
        clears — or None when the rule does not apply.  With ``trace``
        the firing is recorded as an ``"adaptive re-planning"`` step, so
        EXPLAIN ANALYZE can show the switch in the plan's lineage.
        """
        if rule not in ("PointerJoin", "PointerChase"):
            raise OptimizerError(
                f"unknown strategy rule {rule!r} "
                f"(PointerJoin or PointerChase)"
            )
        rewriter = PointerJoin() if rule == "PointerJoin" else PointerChase()
        for rewritten in rewriter.rewrite_node(suffix, self.scheme):
            if self._validate_and_cost(rewritten) is None:
                continue
            if trace is not None:
                trace.record(
                    "adaptive re-planning",
                    rule,
                    render_expr(rewritten),
                    parent=render_expr(suffix),
                    expr=rewritten,
                )
            return rewritten
        return None

    # ------------------------------------------------------------------ #
    # validation + costing
    # ------------------------------------------------------------------ #

    def _validate_and_cost(
        self, plan: Expr, model: Optional[CostModel] = None
    ) -> Optional[PlanCandidate]:
        model = model or self.cost_model
        try:
            plan.output_schema(self.scheme)
            if not is_computable(plan, self.scheme):
                return None
            cost = model.cost(plan)
            card = model.cardinality(plan)
            bytes_cost = model.bytes_cost(plan)
        except (AlgebraError, SchemaError, PredicateError, OptimizerError):
            return None
        return PlanCandidate(
            expr=plan, cost=cost, cardinality=card, bytes_cost=bytes_cost
        )


def _try_map(
    exprs: Sequence[Expr],
    fn,
    trace: Optional[RewriteTrace] = None,
    phase: str = "",
    rule: str = "",
) -> list[Expr]:
    """Map ``fn`` over plans, dropping the ones it cannot handle.

    With ``trace``, every application that actually changed the plan is
    recorded as a lineage step (improvement passes rewrite in place, so
    the output's lineage chains through its input)."""
    results = []
    for expr in exprs:
        try:
            out = fn(expr)
        except (AlgebraError, SchemaError, PredicateError):
            continue
        results.append(out)
        if trace is not None:
            old_key = render_expr(expr)
            new_key = render_expr(out)
            if new_key != old_key:
                trace.record(phase, rule, new_key, parent=old_key, expr=out)
    return results


def _dedup(exprs: Sequence[Expr]) -> list[Expr]:
    seen: dict[str, Expr] = {}
    for expr in exprs:
        key = render_expr(expr)
        if key not in seen:
            seen[key] = expr
    return list(seen.values())
