"""Rewrite drivers.

:func:`closure` saturates a set of plans under a set of enumerative rules:
every rule is tried at every node of every plan, and newly produced plans
are fed back until no new plan appears (or a safety cap is hit).  Plans are
deduplicated by their canonical rendering.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Optional, Sequence

from repro.adm.scheme import WebScheme
from repro.algebra.ast import Expr
from repro.algebra.printer import render_expr
from repro.algebra.visitors import replace_at, walk
from repro.errors import OptimizerError
from repro.obs.rewrite import RewriteTrace
from repro.optimizer.rules import RewriteRule

__all__ = ["closure"]

#: Safety cap on the number of distinct plans one closure may produce.
MAX_PLANS = 2000


def closure(
    exprs: Iterable[Expr],
    rules: Sequence[RewriteRule],
    scheme: WebScheme,
    max_plans: int = MAX_PLANS,
    trace: Optional[RewriteTrace] = None,
    phase: str = "",
) -> list[Expr]:
    """All plans reachable from ``exprs`` by applying ``rules`` anywhere.

    ``trace`` (optional) records every *kept* rule application — the ones
    whose output survives dedup — as a :class:`~repro.obs.rewrite.
    RewriteStep` under ``phase``, keyed by the same canonical rendering
    used for deduplication, so lineage chains match the plans returned.
    """
    seen: dict[str, Expr] = {}
    queue: deque[Expr] = deque()
    for expr in exprs:
        key = render_expr(expr)
        if key not in seen:
            seen[key] = expr
            queue.append(expr)
    while queue:
        current = queue.popleft()
        current_key = render_expr(current) if trace is not None else ""
        for path, node in walk(current):
            for rule in rules:
                for replacement in rule.rewrite_node(node, scheme):
                    rewritten = replace_at(current, path, replacement)
                    key = render_expr(rewritten)
                    if key in seen:
                        continue
                    if len(seen) >= max_plans:
                        raise OptimizerError(
                            f"rewrite closure exceeded {max_plans} plans; "
                            "the query is too irregular for exhaustive "
                            "enumeration"
                        )
                    seen[key] = rewritten
                    queue.append(rewritten)
                    if trace is not None:
                        trace.record(
                            phase,
                            type(rule).__name__,
                            key,
                            parent=current_key,
                            subexpr=render_expr(node, compact=True),
                            expr=rewritten,
                        )
    return list(seen.values())
