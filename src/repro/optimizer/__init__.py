"""Query optimization (paper, Section 6).

* :mod:`repro.optimizer.cost` — cardinality estimation and the cost
  function C(E) of Section 6.2 (network page accesses only);
* :mod:`repro.optimizer.rules` — the rewrite rules of Section 6.1 (rules
  2–9), implemented over qualified-name NALG expressions;
* :mod:`repro.optimizer.rewriter` — closure/fixpoint drivers that apply
  rule sets over whole plans with deduplication;
* :mod:`repro.optimizer.planner` — Algorithm 1: staged enumeration of
  candidate plans and cost-based selection.
"""

from repro.optimizer.cost import CacheEstimate, CostModel
from repro.optimizer.rules import (
    JoinPushdown,
    MergeRepeatedNavigation,
    PointerJoin,
    PointerChase,
    push_selections,
    ProjectionSubstitution,
    eliminate_unused_navigation,
)
from repro.optimizer.rewriter import closure
from repro.optimizer.planner import (
    PlanCandidate,
    Planner,
    PlannerOptions,
    PlannerResult,
)

__all__ = [
    "CacheEstimate",
    "CostModel",
    "JoinPushdown",
    "MergeRepeatedNavigation",
    "PointerJoin",
    "PointerChase",
    "push_selections",
    "ProjectionSubstitution",
    "eliminate_unused_navigation",
    "closure",
    "Planner",
    "PlannerOptions",
    "PlanCandidate",
    "PlannerResult",
]
