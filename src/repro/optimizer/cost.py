"""Cardinality estimation and the cost function C(E) (paper, Section 6.2).

Step 1 estimates the cardinality of every intermediate result:

* ``|P1 ∘ L|   = |P1| × |L|``
* ``|σ_A(P)|   = |P| × s_A``
* ``|R1 ⋈ R2|  = |R1| × |R2| × σ_join``
* ``|π_A(P)|   = |P| / r_A``  (equivalently min(card, Π c_A))
* navigation preserves the source cardinality (each tuple joins with the
  single page its link references; the paper's ``|R → P| = |P|`` is the
  default-navigation special case where R covers all of P — both agree on
  every worked example).

Step 2 sums operator costs: only network operations cost anything —
an entry-point access costs 1 page, and a navigation ``R →L P`` costs the
number of *distinct* links followed, ``|π_L(R)| = |R| / r_L`` (capped by
``|P|``: a navigation can never download more pages than exist).

Statistics are reached through field provenance, so estimates work at any
depth.  Attributes whose provenance is unknown (e.g. computed columns) fall
back to :data:`DEFAULT_SELECTIVITY`.

**Cache awareness.**  When the engine runs with a cross-query
:class:`~repro.web.cache.PageCache`, part of a plan's pointer set may
already be held locally, and a cached page costs a light connection (or
nothing) instead of a download.  A :class:`CacheEstimate` carries the
expected hit rate per page-scheme — typically derived from the actual
cache contents via :meth:`CacheEstimate.from_cache` — and the model then
charges each network access of scheme *P* an effective
``(1 - h_P) + h_P × light_weight`` pages instead of 1, so Algorithm 1 can
re-rank pointer-join against pointer-chase plans under a warm cache.
Without an estimate the model is exactly the paper's C(E).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Optional

from repro.adm.scheme import WebScheme
from repro.algebra.ast import (
    EntryPointScan,
    Expr,
    ExternalRelScan,
    FollowLink,
    Join,
    Project,
    Select,
    Unnest,
)
from repro.algebra.predicates import AttrEq, Comparison, In
from repro.errors import OptimizerError, StatisticsError
from repro.nested.schema import Field
from repro.stats.statistics import SiteStatistics

__all__ = [
    "CacheEstimate",
    "CostModel",
    "DEFAULT_SELECTIVITY",
    "StrategyCrossover",
    "crossover_winner",
]

#: Selectivity assumed for predicates whose attribute has no usable
#: statistics (conservative-ish; the paper assumes full knowledge).
DEFAULT_SELECTIVITY = 0.1


def crossover_winner(chase_cost: float, join_cost: float) -> str:
    """Which of the Section 7 strategies wins at the given page costs.

    The single source of truth for the X-OVER decision rule: pointer
    chase wins at ``chase_cost <= join_cost`` (ties go to the chase — it
    needs no local join work, footnote 10), pointer join otherwise.
    ``bench_crossover.py`` charts this rule over site shapes and the
    adaptive executor (:mod:`repro.engine.adaptive`) applies it to
    *observed* fan-outs mid-query; both must call this function rather
    than re-deriving the comparison.
    """
    return "chase" if chase_cost <= join_cost else "join"


@dataclass(frozen=True)
class StrategyCrossover:
    """A costed pointer-chase vs pointer-join comparison (Section 7)."""

    chase_cost: float
    join_cost: float

    @property
    def winner(self) -> str:
        """``"chase"`` or ``"join"`` per :func:`crossover_winner`."""
        return crossover_winner(self.chase_cost, self.join_cost)


@dataclass
class _Estimate:
    cardinality: float
    cost: float


class CacheEstimate:
    """Expected page-cache hit rate per page-scheme, for cache-aware costing.

    ``hit_rates`` maps page-scheme names to the expected fraction of that
    scheme's accesses served from the cache (clamped to [0, 1]; unknown
    schemes default to 0 — a cold cache).  ``light_weight`` is the cost, in
    page units, charged for each avoided download: 0 treats revalidations
    as free (pure C(E) page counting, the paper's stance that light
    connections "are quite fast"), a small positive value lets byte-true
    tie-breaking see them.

    Instances are immutable, hashable (planner memo keys), and usually
    built from a live cache with :meth:`from_cache` — the optimizer
    inspecting its own prior accesses, not the web.
    """

    __slots__ = ("_rates", "light_weight")

    def __init__(
        self,
        hit_rates: Mapping[str, float],
        light_weight: float = 0.0,
    ):
        if not 0.0 <= light_weight <= 1.0:
            raise OptimizerError(
                f"light_weight must be in [0, 1], got {light_weight!r}"
            )
        self._rates: tuple[tuple[str, float], ...] = tuple(
            sorted(
                (name, min(1.0, max(0.0, float(rate))))
                for name, rate in hit_rates.items()
            )
        )
        self.light_weight = float(light_weight)

    @classmethod
    def from_cache(
        cls,
        cache,
        stats: SiteStatistics,
        light_weight: float = 0.0,
    ) -> "CacheEstimate":
        """Hit rates observed from actual cache contents: for each
        page-scheme, the fraction of its |P| pages currently cached."""
        rates: dict[str, float] = {}
        for scheme_name, count in cache.scheme_counts().items():
            try:
                card = stats.card(scheme_name)
            except StatisticsError:
                continue
            if card > 0:
                rates[scheme_name] = count / card
        return cls(rates, light_weight=light_weight)

    @property
    def hit_rates(self) -> dict[str, float]:
        return dict(self._rates)

    def rate(self, scheme_name: str) -> float:
        """Expected hit rate for ``scheme_name`` (0 when unknown)."""
        for name, rate in self._rates:
            if name == scheme_name:
                return rate
        return 0.0

    def page_factor(self, scheme_name: str) -> float:
        """Effective page cost of one access to a page of ``scheme_name``:
        a miss costs a full download, a hit costs ``light_weight``."""
        h = self.rate(scheme_name)
        return (1.0 - h) + h * self.light_weight

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, CacheEstimate)
            and self._rates == other._rates
            and self.light_weight == other.light_weight
        )

    def __hash__(self) -> int:
        return hash((self._rates, self.light_weight))

    def __repr__(self) -> str:
        rates = ", ".join(f"{n}={r:.2f}" for n, r in self._rates)
        return f"CacheEstimate({rates or 'cold'}, light={self.light_weight})"


class CostModel:
    """Estimates cardinalities and the page-access cost of NALG plans.

    With a :class:`CacheEstimate` attached the network costs shrink by the
    expected hit rate of the accessed page-scheme; without one (the
    default) every estimate is exactly the paper's Section 6.2 model.
    """

    def __init__(
        self,
        scheme: WebScheme,
        stats: SiteStatistics,
        cache_estimate: Optional[CacheEstimate] = None,
    ):
        self.scheme = scheme
        self.stats = stats
        self.cache_estimate = cache_estimate

    def with_cache(self, estimate: Optional[CacheEstimate]) -> "CostModel":
        """A view of this model costing plans under ``estimate``."""
        return CostModel(self.scheme, self.stats, cache_estimate=estimate)

    def _network_factor(self, scheme_name: str) -> float:
        if self.cache_estimate is None:
            return 1.0
        return self.cache_estimate.page_factor(scheme_name)

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #

    def cardinality(self, expr: Expr) -> float:
        """Estimated number of tuples in the result of ``expr``."""
        return self._estimate(expr).cardinality

    def cost(self, expr: Expr) -> float:
        """C(E): estimated number of pages downloaded to evaluate ``expr``."""
        return self._estimate(expr).cost

    def bytes_cost(self, expr: Expr) -> float:
        """Estimated bytes downloaded (footnote 8's refinement: pages of
        different page-schemes have different sizes — e.g. the Introduction
        prefers the *smaller* database-conference list when page counts
        tie).  Computed as Σ over network operations of
        (pages fetched × average page size of the fetched scheme)."""
        total = 0.0
        for node in self._walk(expr):
            if isinstance(node, EntryPointScan):
                total += self._network_factor(node.page_scheme) * self._page_size(
                    node.page_scheme
                )
            elif isinstance(node, FollowLink):
                own = (
                    self._estimate(node).cost
                    - self._estimate(node.child).cost
                )
                total += own * self._page_size(node.target_scheme(self.scheme))
        return total

    def local_work(self, expr: Expr) -> float:
        """Estimated local (zero-network-cost) tuple operations.

        Footnote 10: "in a more refined cost model, also some expensive
        local operations should be taken into account".  Purely
        informational — plans are still ranked by page accesses — but it
        quantifies the trade the pointer-join strategy makes: fewer pages,
        more local joining.  Counted as: tuples produced by unnests and
        selections, plus the input sizes of every join.
        """
        total = 0.0
        for node in self._walk(expr):
            if isinstance(node, (Unnest, Select)):
                total += self._estimate(node).cardinality
            elif isinstance(node, Join):
                total += (
                    self._estimate(node.left).cardinality
                    + self._estimate(node.right).cardinality
                )
        return total

    def estimated_makespan(
        self,
        expr: Expr,
        workers: int = 1,
        execution: str = "staged",
        network=None,
    ) -> float:
        """Estimated simulated seconds to run ``expr`` at ``workers``
        parallel connections under the given execution mode.

        Pages are the paper's cost; *makespan* is what concurrency and
        pipelining actually buy.  Staged execution drains the lanes at
        every operator barrier, so each network stage (entry access or
        follow-link) costs ``ceil(pages / k)`` rounds of its per-page
        time.  Pipelined execution overlaps stages on one shared
        timeline, bounded below by the two classical limits: total work
        divided by ``k``, and the critical path (one page through every
        stage of the deepest chain).  The pipelined estimate is clamped
        to never exceed the staged one — the executor's benchmarked
        guarantee.

        ``network`` is the :class:`~repro.web.network.NetworkModel` used
        for per-page seconds (default: the 1998 modem the simulated
        client uses).  Estimates ignore retries and light connections.
        """
        from repro.engine.pipeline import coerce_execution

        mode = coerce_execution(execution)
        if workers < 1:
            raise OptimizerError(f"workers must be >= 1, got {workers}")
        if network is None:
            from repro.web.network import MODEM_1998

            network = MODEM_1998
        stages, critical = self._network_stages(expr, network)
        k = workers
        staged = sum(math.ceil(pages / k) * t for pages, t in stages)
        # the columnar engine changes CPU, not network: staged access
        # pattern for "columnar", pipelined overlap for its pipelined
        # twin.  Adaptive execution prunes pages but never adds any, so
        # the static estimate is an upper bound with the same access
        # pattern as the mode it wraps.
        if mode in ("staged", "columnar", "adaptive"):
            return staged
        total_work = sum(pages * t for pages, t in stages)
        return min(staged, max(total_work / k, critical))

    def strategy_crossover(
        self, chase_expr: Expr, join_expr: Expr
    ) -> StrategyCrossover:
        """Cost a pointer-chase plan against a pointer-join plan.

        Returns a :class:`StrategyCrossover` whose ``winner`` applies
        :func:`crossover_winner` to the two C(E) estimates — the same
        rule the X-OVER benchmark charts and the adaptive executor
        re-evaluates with observed fan-outs at runtime.
        """
        return StrategyCrossover(
            chase_cost=self.cost(chase_expr), join_cost=self.cost(join_expr)
        )

    def _network_stages(
        self, expr: Expr, network
    ) -> tuple[list[tuple[float, float]], float]:
        """Per-stage ``(pages, seconds_per_page)`` in execution order,
        plus the critical-path seconds (one page per stage down the
        deepest chain of the plan)."""
        if isinstance(expr, EntryPointScan):
            t = network.get_seconds(int(self._page_size(expr.page_scheme)))
            return [(self._network_factor(expr.page_scheme), t)], t
        if isinstance(expr, FollowLink):
            stages, critical = self._network_stages(expr.child, network)
            own = self._estimate(expr).cost - self._estimate(expr.child).cost
            target = expr.target_scheme(self.scheme)
            t = network.get_seconds(int(self._page_size(target)))
            return stages + [(own, t)], critical + t
        if isinstance(expr, Join):
            left, lcrit = self._network_stages(expr.left, network)
            right, rcrit = self._network_stages(expr.right, network)
            return left + right, max(lcrit, rcrit)
        children = list(expr.children())
        if not children:
            return [], 0.0
        return self._network_stages(children[0], network)

    def _page_size(self, scheme_name: str) -> float:
        try:
            return self.stats.avg_page_bytes(scheme_name)
        except StatisticsError:
            return 1.0  # degrade to page counting

    def _walk(self, expr: Expr):
        yield expr
        for child in expr.children():
            yield from self._walk(child)

    def explain(self, expr: Expr) -> str:
        """Per-node breakdown of cardinality and cost (indented tree).

        Delegates to the shared plan-report renderer
        (:mod:`repro.obs.explain`) — the same code path that produces
        ``SiteEnv.explain``'s annotated tree, minus the measured columns.
        """
        from repro.obs.explain import render_cost_explain

        return render_cost_explain(expr, self)

    # ------------------------------------------------------------------ #
    # estimation
    # ------------------------------------------------------------------ #

    def _estimate(self, expr: Expr) -> _Estimate:
        if isinstance(expr, EntryPointScan):
            return _Estimate(
                cardinality=1.0,
                cost=self._network_factor(expr.page_scheme),
            )
        if isinstance(expr, ExternalRelScan):
            raise OptimizerError(
                f"cannot cost external relation {expr.name!r}; expand it "
                "with rule 1 first"
            )
        if isinstance(expr, Unnest):
            return self._estimate_unnest(expr)
        if isinstance(expr, Select):
            return self._estimate_select(expr)
        if isinstance(expr, Project):
            return self._estimate_project(expr)
        if isinstance(expr, Join):
            return self._estimate_join(expr)
        if isinstance(expr, FollowLink):
            return self._estimate_follow(expr)
        raise OptimizerError(f"cannot cost {type(expr).__name__}")

    def _field(self, expr: Expr, attr: str) -> Field:
        return expr.output_schema(self.scheme).field(attr)

    def _distinct(self, field: Field) -> float:
        """c_A via provenance; None when unknown."""
        prov = field.provenance
        if prov is None:
            return 0.0
        try:
            return self.stats.distinct(prov.base_scheme, prov.path)
        except StatisticsError:
            return 0.0

    def _estimate_unnest(self, expr: Unnest) -> _Estimate:
        child = self._estimate(expr.child)
        field = self._field(expr.child, expr.attr)
        size = 1.0
        if field.provenance is not None:
            try:
                size = self.stats.avg_list(
                    field.provenance.base_scheme, field.provenance.path
                )
            except StatisticsError:
                size = 1.0
        return _Estimate(child.cardinality * size, child.cost)

    def _estimate_select(self, expr: Select) -> _Estimate:
        child = self._estimate(expr.child)
        selectivity = 1.0
        schema_expr = expr.child
        for atom in expr.predicate.atoms:
            if isinstance(atom, Comparison):
                c = self._distinct(self._field(schema_expr, atom.attr))
                selectivity *= (1.0 / c) if c else DEFAULT_SELECTIVITY
            elif isinstance(atom, In):
                c = self._distinct(self._field(schema_expr, atom.attr))
                s = (1.0 / c) if c else DEFAULT_SELECTIVITY
                selectivity *= min(1.0, len(atom.values) * s)
            elif isinstance(atom, AttrEq):
                c1 = self._distinct(self._field(schema_expr, atom.left))
                c2 = self._distinct(self._field(schema_expr, atom.right))
                top = max(c1, c2)
                selectivity *= (1.0 / top) if top else DEFAULT_SELECTIVITY
        return _Estimate(child.cardinality * selectivity, child.cost)

    def _estimate_project(self, expr: Project) -> _Estimate:
        child = self._estimate(expr.child)
        # |π_A(P)| = |P| / r_A  ==  min(card, Π c_A) under uniformity
        distinct_product = 1.0
        known = True
        for _, in_name in expr.outputs:
            field = self._field(expr.child, in_name)
            if field.is_list:
                known = False
                break
            c = self._distinct(field)
            if not c:
                known = False
                break
            distinct_product *= c
        card = min(child.cardinality, distinct_product) if known else child.cardinality
        return _Estimate(card, child.cost)

    def _estimate_join(self, expr: Join) -> _Estimate:
        left = self._estimate(expr.left)
        right = self._estimate(expr.right)
        selectivity = 1.0
        for lname, rname in expr.on:
            lfield = self._field(expr.left, lname)
            rfield = self._field(expr.right, rname)
            if lfield.provenance is not None and rfield.provenance is not None:
                selectivity *= self.stats.join_selectivity(
                    lfield.provenance.base_scheme,
                    lfield.provenance.path,
                    rfield.provenance.base_scheme,
                    rfield.provenance.path,
                )
            else:
                selectivity *= DEFAULT_SELECTIVITY
        card = left.cardinality * right.cardinality * selectivity
        return _Estimate(card, left.cost + right.cost)

    def _estimate_follow(self, expr: FollowLink) -> _Estimate:
        child = self._estimate(expr.child)
        link_field = self._field(expr.child, expr.link_attr)
        target = expr.target_scheme(self.scheme)
        try:
            target_card = self.stats.card(target)
        except StatisticsError:
            target_card = float("inf")
        repetition = 1.0
        if link_field.provenance is not None:
            try:
                repetition = self.stats.repetition(
                    link_field.provenance.base_scheme, link_field.provenance.path
                )
            except StatisticsError:
                repetition = 1.0
        distinct_links = min(child.cardinality / repetition, target_card)
        return _Estimate(
            cardinality=child.cardinality,
            cost=child.cost + distinct_links * self._network_factor(target),
        )
