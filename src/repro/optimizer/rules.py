"""The NALG rewrite rules (paper, Section 6.1).

All rules operate on *qualified-name* expressions (external relations
already expanded by rule 1, which lives in the planner because it needs the
view catalog).  Enumerative rules implement ``rewrite_node(node, scheme) →
[replacement, ...]``: the rewriter tries them at every position of a plan.
Improvement passes (selection pushing, navigation elimination) are plain
functions applied once per plan — in this cost model they never hurt.

Correspondence with the paper:

=====================  =====================================================
Rule 1                 :meth:`repro.optimizer.planner.Planner` (expansion)
Rules 2, 3, 5          :func:`eliminate_unused_navigation` (unused
                       navigations and unnests dropped under a projection)
Rule 4                 :class:`MergeRepeatedNavigation`
Rule 6                 :func:`push_selections` (constraint-based attribute
                       substitution + physical pushdown)
Rule 7                 :class:`ProjectionSubstitution`
Rule 8                 :class:`PointerJoin`
Rule 9                 :class:`PointerChase`
=====================  =====================================================
"""

from __future__ import annotations

from typing import Optional

from repro.adm.constraints import AttrRef
from repro.adm.scheme import WebScheme
from repro.adm.webtypes import LinkType
from repro.algebra.ast import (
    EntryPointScan,
    Expr,
    FollowLink,
    Join,
    Project,
    Select,
    Unnest,
)
from repro.algebra.predicates import Atom, Comparison, In, Predicate
from repro.errors import AlgebraError, SchemaError
from repro.nested.schema import Field, RelationSchema

__all__ = [
    "RewriteRule",
    "JoinPushdown",
    "MergeRepeatedNavigation",
    "PointerJoin",
    "PointerChase",
    "ProjectionSubstitution",
    "push_selections",
    "eliminate_unused_navigation",
    "substitute_attrs",
]


# --------------------------------------------------------------------- #
# shared helpers
# --------------------------------------------------------------------- #


def spine(expr: Expr) -> list[Expr]:
    """Nodes along the unary-child chain from ``expr`` down to its leaf."""
    nodes = [expr]
    node = expr
    while True:
        kids = node.children()
        if len(kids) != 1:
            break
        node = kids[0]
        nodes.append(node)
    return nodes


def substitute_attrs(expr: Expr, mapping: dict[str, str]) -> Expr:
    """Rewrite attribute *references* (predicates, join pairs, projection
    inputs) throughout ``expr``.  Structural attributes (unnest targets,
    link attributes) are never renamed — mapping keys are external-view
    names, which cannot collide with internal qualified names."""
    if not mapping:
        return expr
    if isinstance(expr, Select):
        return Select(
            substitute_attrs(expr.child, mapping), expr.predicate.rename(mapping)
        )
    if isinstance(expr, Project):
        return Project(
            substitute_attrs(expr.child, mapping),
            tuple((o, mapping.get(i, i)) for o, i in expr.outputs),
        )
    if isinstance(expr, Join):
        return Join(
            substitute_attrs(expr.left, mapping),
            substitute_attrs(expr.right, mapping),
            tuple(
                (mapping.get(lhs, lhs), mapping.get(rhs, rhs))
                for lhs, rhs in expr.on
            ),
        )
    kids = expr.children()
    if not kids:
        return expr
    return expr.with_children(
        tuple(substitute_attrs(k, mapping) for k in kids)
    )


def _schema(expr: Expr, scheme: WebScheme) -> Optional[RelationSchema]:
    try:
        return expr.output_schema(scheme)
    except (AlgebraError, SchemaError):
        return None


def _source_attr_for(
    scheme: WebScheme,
    link_field: Field,
    target_path: str,
) -> Optional[str]:
    """Given a link field (with provenance) and an attribute path of the
    link's *target* page-scheme, return the qualified name of the redundant
    *source-side* attribute if a link constraint documents it."""
    prov = link_field.provenance
    if prov is None:
        return None
    constraint = scheme.find_link_constraint(
        prov.base_scheme, prov.path, target_path
    )
    if constraint is None:
        return None
    return f"{prov.scheme}.{constraint.source_attr}"


# --------------------------------------------------------------------- #
# rule base
# --------------------------------------------------------------------- #


class RewriteRule:
    """Base for enumerative rewrite rules."""

    name = "rule"

    def rewrite_node(self, node: Expr, scheme: WebScheme) -> list[Expr]:
        """Equivalent replacements for ``node`` (empty when no match)."""
        raise NotImplementedError


# --------------------------------------------------------------------- #
# Rule 4 — eliminate repeated navigations
# --------------------------------------------------------------------- #


class MergeRepeatedNavigation(RewriteRule):
    """``R ⋈_Y R = R`` and ``(R ∘ A) ⋈_Y R = R ∘ A`` (paper, rule 4).

    Matches a join whose one side occurs *verbatim* on the other side's
    operator spine and whose join pairs equate an attribute with itself;
    the join then adds nothing and the longer navigation survives.

    The equality requires the equated attributes to identify tuples of the
    shared navigation.  When constructed with site statistics the rule
    *verifies* this (``c_A ≥ |μ_A(P)|``, i.e. every value is unique at the
    attribute's level); without statistics it assumes it, which is sound
    for the key-like attributes (names, URLs) view expansion produces.
    """

    name = "rule4-merge-repeated-navigation"

    def __init__(self, stats=None):
        self.stats = stats

    def rewrite_node(self, node: Expr, scheme: WebScheme) -> list[Expr]:
        if not isinstance(node, Join) or not node.on:
            return []
        results = []
        if self._mergeable(node.left, node.right, node.on, scheme):
            results.append(node.right)
        if self._mergeable(
            node.right,
            node.left,
            [(rhs, lhs) for lhs, rhs in node.on],
            scheme,
        ):
            results.append(node.left)
        return results

    def _mergeable(self, short: Expr, long: Expr, on, scheme: WebScheme) -> bool:
        if short not in spine(long):
            return False
        schema = _schema(short, scheme)
        if schema is None:
            return False
        return all(
            lhs == rhs and lhs in schema and self._identifies(schema, lhs)
            for lhs, rhs in on
        )

    def _identifies(self, schema: RelationSchema, attr: str) -> bool:
        """True when values of ``attr`` are unique at its nesting level
        (statistics-verified when available)."""
        if self.stats is None:
            return True
        field = schema.field(attr)
        prov = field.provenance
        if prov is None:
            return False
        from repro.errors import StatisticsError

        try:
            distinct = self.stats.distinct(prov.base_scheme, prov.path)
            total = self.stats.unnested_card(prov.base_scheme, prov.path)
        except StatisticsError:
            return False
        return distinct >= total - 1e-9


# --------------------------------------------------------------------- #
# Rules 8 and 9 — pointer join and pointer chase
# --------------------------------------------------------------------- #


class _LinkJoinMatch:
    """A join of the paper's shape ``(R1 →L R3) ⋈_{R3.B = R2.A} R2``.

    ``nav_side``: the FollowLink side (R1 → R3); ``other``: R2; ``pair``:
    the (target_attr, other_attr) join pair realizing R3.B = R2.A;
    ``other_link``: the link field of R2 pointing at R3 whose constraint
    matches; ``rest``: remaining join pairs (none touching R3).
    """

    def __init__(self, nav, other, pair, other_link, rest, flipped):
        self.nav: FollowLink = nav
        self.other: Expr = other
        self.pair = pair
        self.other_link: Field = other_link
        self.rest = rest
        self.flipped = flipped


def _match_link_join(node: Expr, scheme: WebScheme) -> list[_LinkJoinMatch]:
    if not isinstance(node, Join) or not node.on:
        return []
    matches = []
    for flipped in (False, True):
        nav_side = node.right if flipped else node.left
        other = node.left if flipped else node.right
        if not isinstance(nav_side, FollowLink):
            continue
        nav_schema = _schema(nav_side, scheme)
        other_schema = _schema(other, scheme)
        if nav_schema is None or other_schema is None:
            continue
        target_alias = nav_side.target_alias(scheme)
        target_base = nav_side.target_scheme(scheme)
        oriented = [
            ((rhs, lhs) if flipped else (lhs, rhs))
            for lhs, rhs in node.on
        ]  # (nav_attr, other_attr)
        for index, (na, oa) in enumerate(oriented):
            if na not in nav_schema or oa not in other_schema:
                continue
            na_field = nav_schema.field(na)
            if na_field.provenance is None:
                continue
            if na_field.provenance.scheme != target_alias:
                continue  # not an attribute of R3
            b_path = na_field.provenance.path
            oa_field = other_schema.field(oa)
            if oa_field.provenance is None:
                continue
            rest = oriented[:index] + oriented[index + 1:]
            # remaining pairs must not involve R3's attributes
            if any(
                (p in nav_schema
                 and nav_schema.field(p).provenance is not None
                 and nav_schema.field(p).provenance.scheme == target_alias)
                for p, _ in rest
            ):
                continue
            # find R2's link to R3 whose constraint equates A with B
            for field in other_schema:
                if not isinstance(field.wtype, LinkType):
                    continue
                if field.wtype.target != target_base:
                    continue
                if field.provenance is None:
                    continue
                if field.provenance.scheme != oa_field.provenance.scheme:
                    continue
                constraint = scheme.find_link_constraint(
                    field.provenance.base_scheme,
                    field.provenance.path,
                    b_path,
                )
                if constraint is None:
                    continue
                if constraint.source_attr != oa_field.provenance.path:
                    continue
                matches.append(
                    _LinkJoinMatch(nav_side, other, (na, oa), field, rest, flipped)
                )
    return matches


class PointerJoin(RewriteRule):
    """Rule 8: push the join below the navigation —
    ``(R1 →L R3) ⋈_{R3.B=R2.A} R2  =  (R1 ⋈_{R1.L=R2.L'} R2) →L R3``.

    Joining the two pointer sets first means only pages in the intersection
    are downloaded.
    """

    name = "rule8-pointer-join"

    def rewrite_node(self, node: Expr, scheme: WebScheme) -> list[Expr]:
        results = []
        for match in _match_link_join(node, scheme):
            link_pair = (match.nav.link_attr, match.other_link.name)
            if match.flipped:
                pairs = [(b, a) for a, b in match.rest]
                pairs.append((link_pair[1], link_pair[0]))
                inner = Join(match.other, match.nav.child, tuple(pairs))
            else:
                pairs = list(match.rest)
                pairs.append(link_pair)
                inner = Join(match.nav.child, match.other, tuple(pairs))
            results.append(
                FollowLink(inner, match.nav.link_attr, match.nav.alias)
            )
        return results


class PointerChase(RewriteRule):
    """Rule 9: replace the join by navigation —
    ``π_X((R1 →L R3) ⋈_{R3.B=R2.A} R2) = π_X(R2 →L' R3)`` when the
    inclusion constraint ``R2.L' ⊆ R1.L`` holds.

    The R1 navigation is dropped entirely: since every R2 pointer is also an
    R1 pointer, chasing R2's links reaches exactly the joined pages.  Plans
    that still reference R1-side attributes above this node become ill-typed
    and are discarded by the planner — which is precisely the paper's side
    condition that X must not mention R1.
    """

    name = "rule9-pointer-chase"

    def rewrite_node(self, node: Expr, scheme: WebScheme) -> list[Expr]:
        results = []
        for match in _match_link_join(node, scheme):
            if match.rest:
                continue  # residual pairs may reference the dropped side
            nav_link_field = _schema(match.nav.child, scheme).field(
                match.nav.link_attr
            )
            if nav_link_field.provenance is None:
                continue
            subset = AttrRef(
                match.other_link.provenance.base_scheme,
                match.other_link.provenance.path,
            )
            superset = AttrRef(
                nav_link_field.provenance.base_scheme,
                nav_link_field.provenance.path,
            )
            if not scheme.includes(subset, superset):
                continue
            # R1 must be an unrestricted navigation covering the full
            # extent; at this stage selections are still at the query root,
            # so a pure navigation chain suffices.
            if not _is_pure_navigation(match.nav.child):
                continue
            target_alias = match.nav.target_alias(scheme)
            results.append(
                FollowLink(match.other, match.other_link.name, target_alias)
            )
        return results


def _is_pure_navigation(expr: Expr) -> bool:
    return all(
        isinstance(node, (EntryPointScan, Unnest, FollowLink))
        for node in spine(expr)
    )


class JoinPushdown(RewriteRule):
    """Push a join below unary operators on either input —
    ``Op(X) ⋈ R = Op(X ⋈ R)`` when the join condition only references
    attributes ``X`` already provides.

    The paper uses this silently: Example 7.2's derivation applies rule 9
    to the professor navigation even though the course navigation sits on
    top of it.  Unnest, follow-link and selection all commute with a join
    that does not touch the attributes they introduce (they act per-row on
    one side, independently of the other side), so exposing the buried
    FollowLink for rules 8/9 is sound.
    """

    name = "join-pushdown"

    def rewrite_node(self, node: Expr, scheme: WebScheme) -> list[Expr]:
        if not isinstance(node, Join):
            return []
        results = []
        # left side: Op(X) ⋈ R  →  Op(X ⋈ R)
        left = node.left
        if isinstance(left, (Unnest, FollowLink, Select)):
            inner = left.children()[0]
            inner_schema = _schema(inner, scheme)
            if inner_schema is not None and all(
                lhs in inner_schema for lhs, _ in node.on
            ):
                pushed = Join(inner, node.right, node.on)
                results.append(left.with_children((pushed,)))
        # right side: L ⋈ Op(X)  →  Op(L ⋈ X)
        right = node.right
        if isinstance(right, (Unnest, FollowLink, Select)):
            inner = right.children()[0]
            inner_schema = _schema(inner, scheme)
            if inner_schema is not None and all(
                r in inner_schema for _, r in node.on
            ):
                pushed = Join(node.left, inner, node.on)
                results.append(right.with_children((pushed,)))
        return results


# --------------------------------------------------------------------- #
# Rule 6 — selection pushing (with link-constraint substitution)
# --------------------------------------------------------------------- #


def push_selections(expr: Expr, scheme: WebScheme) -> Expr:
    """Move every selection atom as deep as it can go.

    Standard commutation moves atoms below projections, joins, unnests and
    navigations whose child already carries the atom's attribute.  When an
    atom is blocked at a navigation because it references a *target-page*
    attribute, rule 6 substitutes the redundant source-side attribute
    documented by a link constraint (``σ_{B=v}(R1 →L R2) = σ_{A=v}(R1 →L
    R2)``) and keeps pushing.  In the paper's cost model this is always
    beneficial: fewer tuples reach the navigation, so fewer pages are
    downloaded.
    """
    atoms: list[Atom] = []

    def strip(node: Expr) -> Expr:
        if isinstance(node, Select):
            atoms.extend(node.predicate.atoms)
            return strip(node.child)
        kids = node.children()
        if not kids:
            return node
        return node.with_children(tuple(strip(k) for k in kids))

    stripped = strip(expr)
    result = stripped
    for atom in atoms:
        result = _insert_atom(result, atom, scheme)
    return result


def _insert_atom(node: Expr, atom: Atom, scheme: WebScheme) -> Expr:
    """Insert ``σ_atom`` as deep as possible above/inside ``node``."""
    if isinstance(node, Project):
        # selections re-enter *below* projections (the translated query has
        # σ under π; the atom may reference attributes the π drops)
        mapping = {o: i for o, i in node.outputs}
        renamed = atom.rename(mapping)
        child_schema = _schema(node.child, scheme)
        if child_schema is not None and all(
            a in child_schema for a in renamed.attrs()
        ):
            return Project(
                _insert_atom(node.child, renamed, scheme), node.outputs
            )
        return Select(node, Predicate([atom]))

    schema = _schema(node, scheme)
    if schema is None or any(a not in schema for a in atom.attrs()):
        # attribute not available here: let the caller place the selection
        return Select(node, Predicate([atom]))

    if isinstance(node, Select):
        pushed = _insert_atom(node.child, atom, scheme)
        return Select(pushed, node.predicate)

    if isinstance(node, Join):
        left_schema = _schema(node.left, scheme)
        right_schema = _schema(node.right, scheme)
        if left_schema is not None and all(
            a in left_schema for a in atom.attrs()
        ):
            return Join(
                _insert_atom(node.left, atom, scheme), node.right, node.on
            )
        if right_schema is not None and all(
            a in right_schema for a in atom.attrs()
        ):
            return Join(
                node.left, _insert_atom(node.right, atom, scheme), node.on
            )
        return Select(node, Predicate([atom]))

    if isinstance(node, Unnest):
        child_schema = _schema(node.child, scheme)
        if child_schema is not None and all(
            a in child_schema for a in atom.attrs()
        ):
            return Unnest(_insert_atom(node.child, atom, scheme), node.attr)
        return Select(node, Predicate([atom]))

    if isinstance(node, FollowLink):
        child_schema = _schema(node.child, scheme)
        if child_schema is not None and all(
            a in child_schema for a in atom.attrs()
        ):
            return FollowLink(
                _insert_atom(node.child, atom, scheme),
                node.link_attr,
                node.alias,
            )
        # rule 6: substitute the redundant source attribute, if constrained
        if isinstance(atom, (Comparison, In)):
            attr = atom.attrs()[0]
            field = schema.field(attr)
            if (
                field.provenance is not None
                and field.provenance.scheme == node.target_alias(scheme)
                and child_schema is not None
            ):
                link_field = child_schema.field(node.link_attr)
                source = _source_attr_for(
                    scheme, link_field, str(field.provenance.path)
                )
                if source is not None and source in child_schema:
                    renamed = atom.rename({attr: source})
                    return FollowLink(
                        _insert_atom(node.child, renamed, scheme),
                        node.link_attr,
                        node.alias,
                    )
        return Select(node, Predicate([atom]))

    return Select(node, Predicate([atom]))


# --------------------------------------------------------------------- #
# Rule 7 — projection substitution
# --------------------------------------------------------------------- #


class ProjectionSubstitution(RewriteRule):
    """Rule 7: a projected target-page attribute can be read off the source
    page instead — ``π_B(R1 →L R2) = π_A(π_{A,L}(R1 →L R2))`` given the
    link constraint ``R1.A = R2.B``.

    Implemented as: in a projection, replace an input attribute of a
    navigated target page by the redundant source-side attribute.  Together
    with :func:`eliminate_unused_navigation` this produces the plans that
    skip downloading target pages entirely (e.g. reading department names
    from the department *list* page's anchors).
    """

    name = "rule7-projection-substitution"

    def rewrite_node(self, node: Expr, scheme: WebScheme) -> list[Expr]:
        if not isinstance(node, Project):
            return []
        schema = _schema(node.child, scheme)
        if schema is None:
            return []
        # index the navigations below by target alias
        navigations: dict[str, FollowLink] = {}
        for sub in _all_nodes(node.child):
            if isinstance(sub, FollowLink):
                try:
                    navigations[sub.target_alias(scheme)] = sub
                except (AlgebraError, SchemaError):
                    continue
        results = []
        for index, (out, in_name) in enumerate(node.outputs):
            if in_name not in schema:
                continue
            field = schema.field(in_name)
            if field.provenance is None:
                continue
            nav = navigations.get(field.provenance.scheme)
            if nav is None:
                continue
            child_schema = _schema(nav.child, scheme)
            if child_schema is None:
                continue
            link_field = child_schema.field(nav.link_attr)
            source = _source_attr_for(
                scheme, link_field, str(field.provenance.path)
            )
            if source is None or source not in schema or source == in_name:
                continue
            new_outputs = list(node.outputs)
            new_outputs[index] = (out, source)
            results.append(Project(node.child, tuple(new_outputs)))
        return results


def _all_nodes(expr: Expr):
    yield expr
    for child in expr.children():
        yield from _all_nodes(child)


# --------------------------------------------------------------------- #
# Rules 2/3/5 — eliminate navigations and unnests that feed nothing
# --------------------------------------------------------------------- #


def eliminate_unused_navigation(expr: Expr, scheme: WebScheme) -> Expr:
    """Drop navigations (rule 5) and unnests (rule 3) whose attributes are
    never used above them.  Only applies under a root projection (the rules
    are stated modulo π); non-optional links only (optional links filter
    rows, so removing them would change the result)."""
    if not isinstance(expr, Project):
        return expr

    changed = True
    current = expr
    while changed:
        changed = False
        used = _used_attrs(current)
        rebuilt = _drop_unused(current, used, scheme)
        if rebuilt != current:
            current = rebuilt
            changed = True
    return current


def _used_attrs(expr: Expr) -> set[str]:
    used: set[str] = set()
    for node in _all_nodes(expr):
        if isinstance(node, Select):
            used.update(node.predicate.attrs())
        elif isinstance(node, Project):
            used.update(node.in_names())
        elif isinstance(node, Join):
            for lhs, rhs in node.on:
                used.add(lhs)
                used.add(rhs)
        elif isinstance(node, FollowLink):
            used.add(node.link_attr)
    return used


def _drop_unused(expr: Expr, used: set[str], scheme: WebScheme) -> Expr:
    kids = expr.children()
    if not kids:
        return expr
    rebuilt = expr.with_children(
        tuple(_drop_unused(k, used, scheme) for k in kids)
    )
    if isinstance(rebuilt, FollowLink):
        try:
            link_type = rebuilt.link_type(scheme)
            target_alias = rebuilt.target_alias(scheme)
        except (AlgebraError, SchemaError):
            return rebuilt
        if link_type.optional:
            return rebuilt
        # every attribute of the navigated page is qualified by its alias
        prefix = f"{target_alias}."
        if not any(u.startswith(prefix) for u in used):
            return rebuilt.child
    elif isinstance(rebuilt, Unnest):
        # element fields are qualified below the list attribute's name
        prefix = f"{rebuilt.attr}."
        if not any(u.startswith(prefix) for u in used):
            return rebuilt.child
    return rebuilt
