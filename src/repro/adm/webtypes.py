"""The web type system of the ADM subset (paper, Section 3.1).

The paper defines web types inductively:

* each base type (``text``, ``image``) is a mono-valued web type;
* ``link to P`` is a mono-valued web type for each page-scheme name ``P``;
* ``list of (A1:T1, ..., An:Tn)`` is a multi-valued web type;
* nothing else is a web type.

We add a ``UrlType`` used only for the implicit ``URL`` key attribute of
every page-scheme; it never appears as a user-declared attribute type.

Types are immutable and hashable, so they can be compared structurally and
used in sets/dicts.  :func:`link` and :func:`list_of` are convenience
constructors used throughout the library and by the fluent scheme builder.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

__all__ = [
    "WebType",
    "TextType",
    "ImageType",
    "UrlType",
    "LinkType",
    "ListType",
    "TEXT",
    "IMAGE",
    "URL_TYPE",
    "link",
    "list_of",
]


@dataclass(frozen=True)
class WebType:
    """Abstract base for all web types."""

    def is_mono_valued(self) -> bool:
        """True when the type holds a single value per tuple."""
        return True

    def is_nested(self) -> bool:
        """True for multi-valued (``list of``) types."""
        return False

    def is_link(self) -> bool:
        """True for ``link to P`` types."""
        return False


@dataclass(frozen=True)
class TextType(WebType):
    """The base ``text`` type: free text displayed in a page."""

    def __str__(self) -> str:
        return "text"


@dataclass(frozen=True)
class ImageType(WebType):
    """The base ``image`` type: an inline image (we store its src URL)."""

    def __str__(self) -> str:
        return "image"


@dataclass(frozen=True)
class UrlType(WebType):
    """The type of the implicit ``URL`` key attribute of page-schemes."""

    def __str__(self) -> str:
        return "url"


@dataclass(frozen=True)
class LinkType(WebType):
    """``link to P``: a reference to a page of page-scheme ``target``.

    A link is formally a pair *(reference, anchor)*; following the paper we
    model the reference here and anchors as independent text attributes.
    ``optional`` marks attributes that may generate null values (the paper
    allows optional attributes; rule 5 requires non-optional links).
    """

    target: str = ""
    optional: bool = False

    def __post_init__(self) -> None:
        if not self.target:
            raise ValueError("LinkType requires a target page-scheme name")

    def is_link(self) -> bool:
        return True

    def __str__(self) -> str:
        suffix = "?" if self.optional else ""
        return f"link to {self.target}{suffix}"


@dataclass(frozen=True)
class ListType(WebType):
    """``list of (A1:T1, ..., An:Tn)``: a multi-valued nested type.

    ``fields`` is an ordered tuple of ``(attribute_name, web_type)`` pairs.
    Nested lists (lists inside lists) are permitted by the model and
    supported throughout the library.
    """

    fields: Tuple[Tuple[str, WebType], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.fields:
            raise ValueError("ListType requires at least one field")
        names = [name for name, _ in self.fields]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate field names in list type: {names}")
        for name, wtype in self.fields:
            if not name:
                raise ValueError("list field names must be non-empty")
            if not isinstance(wtype, WebType):
                raise TypeError(f"field {name!r} has non-WebType {wtype!r}")

    def is_mono_valued(self) -> bool:
        return False

    def is_nested(self) -> bool:
        return True

    def field_type(self, name: str) -> WebType:
        """Return the type of field ``name``; raise KeyError if absent."""
        for fname, wtype in self.fields:
            if fname == name:
                return wtype
        raise KeyError(name)

    def field_names(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self.fields)

    def __str__(self) -> str:
        inner = ", ".join(f"{name}: {wtype}" for name, wtype in self.fields)
        return f"list of ({inner})"


#: Singleton instances for the base types.
TEXT = TextType()
IMAGE = ImageType()
URL_TYPE = UrlType()


def link(target: str, optional: bool = False) -> LinkType:
    """Convenience constructor for ``link to target``."""
    return LinkType(target=target, optional=optional)


def list_of(*fields: Tuple[str, WebType]) -> ListType:
    """Convenience constructor, e.g.
    ``list_of(("PName", TEXT), ("ToProf", link("ProfPage")))``."""
    return ListType(fields=tuple(fields))
