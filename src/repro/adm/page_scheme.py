"""Page-schemes and attribute paths (paper, Section 3.1).

A page-scheme has the form ``P(URL, A1:T1, ..., An:Tn)`` where ``URL`` is the
implicit key.  Attributes inside ``list of`` types are addressed with dotted
*attribute paths* such as ``ProfList.PName`` (relative to a page-scheme) or
``ProfPage.ProfList.PName`` (absolute, i.e. qualified with the page-scheme
name).  :class:`AttrPath` implements both forms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

from repro.adm.webtypes import LinkType, ListType, WebType, URL_TYPE
from repro.errors import SchemeError

__all__ = ["Attribute", "AttrPath", "PageScheme", "URL_ATTR"]

#: Name of the implicit key attribute carried by every page-scheme.
URL_ATTR = "URL"


@dataclass(frozen=True)
class Attribute:
    """A named, typed attribute of a page-scheme or nested list."""

    name: str
    wtype: WebType

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("attribute names must be non-empty")
        if "." in self.name:
            raise ValueError(f"attribute name {self.name!r} must not contain '.'")

    def __str__(self) -> str:
        return f"{self.name}: {self.wtype}"


@dataclass(frozen=True)
class AttrPath:
    """A dotted path to a (possibly nested) attribute.

    ``AttrPath(("ProfList", "PName"))`` addresses field ``PName`` of the
    nested list ``ProfList``.  Paths are relative to a page-scheme; use
    :meth:`qualified` to render the absolute form used in constraints
    (``ProfPage.ProfList.PName``).
    """

    steps: Tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.steps:
            raise ValueError("attribute paths must have at least one step")
        for step in self.steps:
            if not step or "." in step:
                raise ValueError(f"bad path step {step!r}")

    @classmethod
    def parse(cls, text: str) -> "AttrPath":
        """Parse ``"ProfList.PName"`` into an :class:`AttrPath`."""
        return cls(tuple(text.split(".")))

    @property
    def leaf(self) -> str:
        """The final attribute name on the path."""
        return self.steps[-1]

    @property
    def parent(self) -> Optional["AttrPath"]:
        """The path without its leaf, or None for top-level attributes."""
        if len(self.steps) == 1:
            return None
        return AttrPath(self.steps[:-1])

    def child(self, name: str) -> "AttrPath":
        """Extend the path by one step."""
        return AttrPath(self.steps + (name,))

    def qualified(self, scheme_name: str) -> str:
        """Absolute rendering: ``scheme_name.step1.step2``."""
        return ".".join((scheme_name,) + self.steps)

    def __str__(self) -> str:
        return ".".join(self.steps)

    def __len__(self) -> int:
        return len(self.steps)


class PageScheme:
    """A page-scheme ``P(URL, A1:T1, ..., An:Tn)``.

    The ``URL`` attribute is implicit: it is always present, has
    :data:`~repro.adm.webtypes.URL_TYPE`, and forms the key of the
    page-relation.  ``attributes`` are the declared attributes, in order.

    >>> from repro.adm import TEXT, link, list_of
    >>> dept = PageScheme("DeptPage", [
    ...     Attribute("DName", TEXT),
    ...     Attribute("Address", TEXT),
    ...     Attribute("ProfList",
    ...               list_of(("PName", TEXT), ("ToProf", link("ProfPage")))),
    ... ])
    >>> dept.attr_type(AttrPath.parse("ProfList.PName"))
    TextType()
    """

    def __init__(self, name: str, attributes: list[Attribute]):
        if not name:
            raise SchemeError("page-scheme names must be non-empty")
        if "." in name:
            raise SchemeError(f"page-scheme name {name!r} must not contain '.'")
        seen: set[str] = set()
        for attr in attributes:
            if attr.name == URL_ATTR:
                raise SchemeError(
                    f"{name}: attribute {URL_ATTR!r} is implicit and "
                    f"must not be declared"
                )
            if attr.name in seen:
                raise SchemeError(f"{name}: duplicate attribute {attr.name!r}")
            seen.add(attr.name)
        self.name = name
        self.attributes: Tuple[Attribute, ...] = tuple(attributes)

    # ------------------------------------------------------------------ #
    # attribute lookup
    # ------------------------------------------------------------------ #

    def attr(self, name: str) -> Attribute:
        """Return the top-level attribute ``name``; raise SchemeError if absent."""
        if name == URL_ATTR:
            return Attribute(URL_ATTR, URL_TYPE)
        for attr in self.attributes:
            if attr.name == name:
                return attr
        raise SchemeError(f"page-scheme {self.name} has no attribute {name!r}")

    def has_attr(self, name: str) -> bool:
        return name == URL_ATTR or any(a.name == name for a in self.attributes)

    def attr_type(self, path: AttrPath | str) -> WebType:
        """Resolve a (possibly nested) attribute path to its web type."""
        if isinstance(path, str):
            path = AttrPath.parse(path)
        wtype: WebType = self.attr(path.steps[0]).wtype
        for step in path.steps[1:]:
            if not isinstance(wtype, ListType):
                raise SchemeError(
                    f"{self.name}: {path} descends into non-list attribute"
                )
            try:
                wtype = wtype.field_type(step)
            except KeyError:
                raise SchemeError(
                    f"{self.name}: list has no field {step!r} (path {path})"
                ) from None
        return wtype

    def has_path(self, path: AttrPath | str) -> bool:
        try:
            self.attr_type(path)
            return True
        except SchemeError:
            return False

    # ------------------------------------------------------------------ #
    # enumeration helpers
    # ------------------------------------------------------------------ #

    def iter_paths(self) -> Iterator[Tuple[AttrPath, WebType]]:
        """Yield every attribute path (including nested ones) with its type.

        The implicit ``URL`` attribute is included first.  List attributes
        are yielded both as list-valued paths and recursively as their
        fields, in declaration order.
        """
        yield AttrPath((URL_ATTR,)), URL_TYPE

        def walk(prefix: Tuple[str, ...], fields: Tuple[Tuple[str, WebType], ...]):
            for fname, ftype in fields:
                path = AttrPath(prefix + (fname,))
                yield path, ftype
                if isinstance(ftype, ListType):
                    yield from walk(path.steps, ftype.fields)

        yield from walk((), tuple((a.name, a.wtype) for a in self.attributes))

    def link_paths(self) -> Iterator[Tuple[AttrPath, LinkType]]:
        """Yield every link-typed attribute path with its :class:`LinkType`."""
        for path, wtype in self.iter_paths():
            if isinstance(wtype, LinkType):
                yield path, wtype

    def list_paths(self) -> Iterator[Tuple[AttrPath, ListType]]:
        """Yield every list-typed attribute path with its :class:`ListType`."""
        for path, wtype in self.iter_paths():
            if isinstance(wtype, ListType):
                yield path, wtype

    def links_to(self, target: str) -> list[AttrPath]:
        """All link paths whose target page-scheme is ``target``."""
        return [path for path, lt in self.link_paths() if lt.target == target]

    # ------------------------------------------------------------------ #

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, PageScheme)
            and self.name == other.name
            and self.attributes == other.attributes
        )

    def __hash__(self) -> int:
        return hash((self.name, self.attributes))

    def __repr__(self) -> str:
        attrs = ", ".join(str(a) for a in self.attributes)
        return f"PageScheme({self.name}: URL, {attrs})"
