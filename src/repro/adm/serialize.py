"""Serialization of web schemes to and from plain dicts (JSON-ready).

The reverse-engineering workflow produces schemes and constraints worth
persisting; this module round-trips a :class:`~repro.adm.scheme.WebScheme`
through a plain-dict representation::

    {
      "name": "university",
      "page_schemes": {
        "DeptPage": {
          "DName": "text",
          "ProfList": {"list": {"PName": "text",
                                 "ToProf": {"link": "ProfPage"}}}
        }, ...
      },
      "entry_points": {"DeptListPage": "http://..."},
      "link_constraints": [
        {"link": "DeptListPage.DeptList.ToDept",
         "equals": "DeptListPage.DeptList.DName = DeptPage.DName"}, ...
      ],
      "inclusion_constraints": ["A.L <= B.L", ...]
    }

Types: ``"text"``, ``"image"``, ``{"link": target}`` (optionally
``{"link": target, "optional": true}``), ``{"list": {fields...}}``.
"""

from __future__ import annotations

from typing import Any

from repro.adm.constraints import InclusionConstraint, LinkConstraint
from repro.adm.page_scheme import Attribute, PageScheme
from repro.adm.scheme import EntryPoint, WebScheme
from repro.adm.webtypes import (
    IMAGE,
    TEXT,
    ImageType,
    LinkType,
    ListType,
    TextType,
    WebType,
)
from repro.errors import SchemeError

__all__ = ["scheme_to_dict", "scheme_from_dict"]


def _type_to_value(wtype: WebType) -> Any:
    if isinstance(wtype, TextType):
        return "text"
    if isinstance(wtype, ImageType):
        return "image"
    if isinstance(wtype, LinkType):
        value: dict = {"link": wtype.target}
        if wtype.optional:
            value["optional"] = True
        return value
    if isinstance(wtype, ListType):
        return {
            "list": {name: _type_to_value(t) for name, t in wtype.fields}
        }
    raise SchemeError(f"cannot serialize web type {wtype!r}")


def _type_from_value(value: Any) -> WebType:
    if value == "text":
        return TEXT
    if value == "image":
        return IMAGE
    if isinstance(value, dict) and "link" in value:
        return LinkType(
            target=value["link"], optional=bool(value.get("optional"))
        )
    if isinstance(value, dict) and "list" in value:
        fields = tuple(
            (name, _type_from_value(sub))
            for name, sub in value["list"].items()
        )
        return ListType(fields=fields)
    raise SchemeError(f"cannot parse web type from {value!r}")


def scheme_to_dict(scheme: WebScheme) -> dict:
    """Plain-dict (JSON-serializable) form of a web scheme."""
    return {
        "name": scheme.name,
        "page_schemes": {
            name: {
                attr.name: _type_to_value(attr.wtype)
                for attr in ps.attributes
            }
            for name, ps in scheme.page_schemes.items()
        },
        "entry_points": {
            ep.scheme: ep.url for ep in scheme.entry_points.values()
        },
        "link_constraints": [
            {
                "link": f"{lc.source}.{lc.link_path}",
                "equals": (
                    f"{lc.source}.{lc.source_attr} = "
                    f"{lc.target}.{lc.target_attr}"
                ),
            }
            for lc in scheme.link_constraints
        ],
        "inclusion_constraints": [
            f"{ic.subset} <= {ic.superset}"
            for ic in scheme.inclusion_constraints
        ],
    }


def scheme_from_dict(data: dict) -> WebScheme:
    """Rebuild a validated web scheme from its plain-dict form."""
    try:
        page_schemes = [
            PageScheme(
                name,
                [
                    Attribute(attr_name, _type_from_value(value))
                    for attr_name, value in attrs.items()
                ],
            )
            for name, attrs in data["page_schemes"].items()
        ]
        entry_points = [
            EntryPoint(name, url)
            for name, url in data["entry_points"].items()
        ]
        link_constraints = [
            LinkConstraint.parse(item["link"], item["equals"])
            for item in data.get("link_constraints", ())
        ]
        inclusion_constraints = [
            InclusionConstraint.parse(text)
            for text in data.get("inclusion_constraints", ())
        ]
    except KeyError as exc:
        raise SchemeError(f"scheme dict is missing key {exc}") from None
    return WebScheme(
        page_schemes,
        entry_points,
        link_constraints,
        inclusion_constraints,
        name=data.get("name", "web"),
    )
