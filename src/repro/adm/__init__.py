"""ADM subset data model (paper, Section 3).

This package implements the slice of the Araneus Data Model the paper uses:

* :mod:`repro.adm.webtypes` — the web type system (``text``, ``image``,
  ``link to P``, ``list of (...)``);
* :mod:`repro.adm.page_scheme` — page-schemes and attribute paths;
* :mod:`repro.adm.constraints` — link constraints and inclusion constraints;
* :mod:`repro.adm.scheme` — web schemes (page-schemes + entry points +
  constraints) with validation and reachability helpers;
* :mod:`repro.adm.builder` — a fluent builder for declaring schemes.
"""

from repro.adm.webtypes import (
    WebType,
    TextType,
    ImageType,
    LinkType,
    ListType,
    UrlType,
    TEXT,
    IMAGE,
    URL_TYPE,
    link,
    list_of,
)
from repro.adm.page_scheme import Attribute, AttrPath, PageScheme
from repro.adm.constraints import LinkConstraint, InclusionConstraint
from repro.adm.scheme import EntryPoint, WebScheme
from repro.adm.builder import SchemeBuilder

__all__ = [
    "WebType",
    "TextType",
    "ImageType",
    "LinkType",
    "ListType",
    "UrlType",
    "TEXT",
    "IMAGE",
    "URL_TYPE",
    "link",
    "list_of",
    "Attribute",
    "AttrPath",
    "PageScheme",
    "LinkConstraint",
    "InclusionConstraint",
    "EntryPoint",
    "WebScheme",
    "SchemeBuilder",
]
