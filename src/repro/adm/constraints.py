"""Link and inclusion constraints (paper, Section 3.2).

*Link constraints* document attribute redundancy across a link:
``ProfPage.DName = DeptPage.DName`` associated with link ``ProfPage.ToDept``
says that the source page already carries the value of an attribute of the
target page.  The optimizer's rules 2, 6, 7, 8 and 9 are all driven by link
constraints.

*Inclusion constraints* document containment between navigation paths:
``CoursePage.ToProf ⊆ ProfListPage.ProfList.ToProf`` says every professor
reachable through a course is also on the global list of professors.  Rule 9
(pointer chase) is driven by inclusion constraints.

Both constraints reference attributes by page-scheme name plus attribute
path.  The link a link-constraint is *associated with* is identified the
same way (the paper attaches the predicate to a specific link attribute).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.adm.page_scheme import AttrPath, PageScheme
from repro.adm.webtypes import LinkType
from repro.errors import ConstraintError

__all__ = ["AttrRef", "LinkConstraint", "InclusionConstraint"]


@dataclass(frozen=True)
class AttrRef:
    """A reference to an attribute of a page-scheme: ``scheme.path``."""

    scheme: str
    path: AttrPath

    @classmethod
    def parse(cls, text: str) -> "AttrRef":
        """Parse ``"ProfPage.CourseList.ToCourse"`` (first step is the scheme)."""
        steps = text.split(".")
        if len(steps) < 2:
            raise ConstraintError(
                f"attribute reference {text!r} needs scheme and attribute"
            )
        return cls(steps[0], AttrPath(tuple(steps[1:])))

    def __str__(self) -> str:
        return f"{self.scheme}.{self.path}"


@dataclass(frozen=True)
class LinkConstraint:
    """``source_attr = target_attr`` associated with link ``link_path``.

    ``link_path`` is an attribute path in page-scheme ``source`` whose type
    is ``link to target``.  The constraint states: for tuples ``t1`` of the
    source and ``t2`` of the target, ``t1.link = t2.URL`` iff
    ``t1.source_attr = t2.target_attr``.

    The source attribute must live at the same nesting level as the link (or
    at an enclosing level); the target attribute is a mono-valued attribute
    of the target page-scheme.
    """

    source: str
    link_path: AttrPath
    source_attr: AttrPath
    target: str
    target_attr: AttrPath

    @classmethod
    def parse(cls, link: str, equality: str) -> "LinkConstraint":
        """Build from text: ``LinkConstraint.parse("ProfPage.ToDept",
        "ProfPage.DName = DeptPage.DName")``.

        The link's target scheme is taken from the right-hand side of the
        equality; it is validated against the scheme later.
        """
        link_ref = AttrRef.parse(link)
        left_text, sep, right_text = equality.partition("=")
        if not sep:
            raise ConstraintError(f"link constraint {equality!r} must contain '='")
        left = AttrRef.parse(left_text.strip())
        right = AttrRef.parse(right_text.strip())
        if left.scheme != link_ref.scheme:
            # allow the user to write the equality in either order
            left, right = right, left
        if left.scheme != link_ref.scheme:
            raise ConstraintError(
                f"neither side of {equality!r} belongs to link source "
                f"{link_ref.scheme!r}"
            )
        return cls(
            source=link_ref.scheme,
            link_path=link_ref.path,
            source_attr=left.path,
            target=right.scheme,
            target_attr=right.path,
        )

    def validate(self, schemes: dict[str, PageScheme]) -> None:
        """Check the constraint against the page-schemes; raise on error."""
        if self.source not in schemes:
            raise ConstraintError(f"unknown source page-scheme {self.source!r}")
        if self.target not in schemes:
            raise ConstraintError(f"unknown target page-scheme {self.target!r}")
        src = schemes[self.source]
        tgt = schemes[self.target]
        link_type = src.attr_type(self.link_path)
        if not isinstance(link_type, LinkType):
            raise ConstraintError(
                f"{self.source}.{self.link_path} is not a link attribute"
            )
        if link_type.target != self.target:
            raise ConstraintError(
                f"link {self.source}.{self.link_path} targets "
                f"{link_type.target!r}, not {self.target!r}"
            )
        src_type = src.attr_type(self.source_attr)
        if src_type.is_nested():
            raise ConstraintError(
                f"link-constraint source attribute {self.source_attr} is multi-valued"
            )
        tgt_type = tgt.attr_type(self.target_attr)
        if tgt_type.is_nested():
            raise ConstraintError(
                f"link-constraint target attribute {self.target_attr} is multi-valued"
            )
        # The source attribute must be visible wherever the link is: either a
        # top-level attribute or a sibling inside the same nested list.
        link_parent = self.link_path.parent
        attr_parent = self.source_attr.parent
        if attr_parent is not None and attr_parent != link_parent:
            raise ConstraintError(
                f"source attribute {self.source_attr} is not at the link's "
                f"nesting level ({self.link_path})"
            )

    def __str__(self) -> str:
        return (
            f"{self.source}.{self.source_attr} = {self.target}.{self.target_attr}"
            f" [on {self.source}.{self.link_path}]"
        )


@dataclass(frozen=True)
class InclusionConstraint:
    """``subset ⊆ superset`` between two link-valued attribute paths.

    Both sides must be link attributes targeting the *same* page-scheme.
    ``P1.L1 ⊆ P2.L2`` holds when every value of ``L1`` (over the instance of
    ``P1``) appears as a value of ``L2`` (over the instance of ``P2``).
    """

    subset: AttrRef
    superset: AttrRef

    @classmethod
    def parse(cls, text: str) -> "InclusionConstraint":
        """Parse ``"CoursePage.ToProf <= ProfListPage.ProfList.ToProf"``.

        Accepts ``<=`` or the unicode ``⊆`` as the containment symbol.
        """
        for symbol in ("<=", "⊆"):
            if symbol in text:
                left_text, _, right_text = text.partition(symbol)
                return cls(
                    AttrRef.parse(left_text.strip()),
                    AttrRef.parse(right_text.strip()),
                )
        raise ConstraintError(f"inclusion constraint {text!r} must contain '<=' or '⊆'")

    def validate(self, schemes: dict[str, PageScheme]) -> None:
        """Check both sides are links to the same target; raise on error."""
        targets = []
        for ref in (self.subset, self.superset):
            if ref.scheme not in schemes:
                raise ConstraintError(f"unknown page-scheme {ref.scheme!r}")
            wtype = schemes[ref.scheme].attr_type(ref.path)
            if not isinstance(wtype, LinkType):
                raise ConstraintError(f"{ref} is not a link attribute")
            targets.append(wtype.target)
        if targets[0] != targets[1]:
            raise ConstraintError(
                f"inclusion sides target different page-schemes: "
                f"{targets[0]!r} vs {targets[1]!r}"
            )

    def target_scheme(self, schemes: dict[str, PageScheme]) -> str:
        """The page-scheme both link attributes point to."""
        wtype = schemes[self.subset.scheme].attr_type(self.subset.path)
        assert isinstance(wtype, LinkType)
        return wtype.target

    def __str__(self) -> str:
        return f"{self.subset} ⊆ {self.superset}"
