"""Fluent builder for web schemes.

Declaring a scheme with raw constructors is verbose; :class:`SchemeBuilder`
offers a compact declaration style used by the site generators and the
examples:

>>> from repro.adm import SchemeBuilder, TEXT, link, list_of
>>> b = SchemeBuilder("university")
>>> b.page("DeptListPage").attr(
...     "DeptList", list_of(("DName", TEXT), ("ToDept", link("DeptPage")))
... ).entry_point("http://univ.example/depts")
PageBuilder(DeptListPage)
>>> b.page("DeptPage").attr("DName", TEXT).attr("Address", TEXT)
PageBuilder(DeptPage)
>>> b.link_constraint("DeptListPage.DeptList.ToDept",
...                   "DeptListPage.DeptList.DName = DeptPage.DName")
>>> scheme = b.build()
"""

from __future__ import annotations

from typing import Optional

from repro.adm.constraints import InclusionConstraint, LinkConstraint
from repro.adm.page_scheme import Attribute, PageScheme
from repro.adm.scheme import EntryPoint, WebScheme
from repro.adm.webtypes import WebType
from repro.errors import SchemeError

__all__ = ["SchemeBuilder", "PageBuilder"]


class PageBuilder:
    """Accumulates the attributes of a single page-scheme."""

    def __init__(self, parent: "SchemeBuilder", name: str):
        self._parent = parent
        self._name = name
        self._attributes: list[Attribute] = []
        self._entry_url: Optional[str] = None

    def attr(self, name: str, wtype: WebType) -> "PageBuilder":
        """Declare an attribute; returns self for chaining."""
        self._attributes.append(Attribute(name, wtype))
        return self

    def entry_point(self, url: str) -> "PageBuilder":
        """Mark this page-scheme as an entry point with the given URL."""
        self._entry_url = url
        return self

    def _build(self) -> PageScheme:
        return PageScheme(self._name, self._attributes)

    def __repr__(self) -> str:
        return f"PageBuilder({self._name})"


class SchemeBuilder:
    """Accumulates page-schemes and constraints, then builds a WebScheme."""

    def __init__(self, name: str = "web"):
        self._name = name
        self._pages: dict[str, PageBuilder] = {}
        self._link_constraints: list[LinkConstraint] = []
        self._inclusion_constraints: list[InclusionConstraint] = []

    def page(self, name: str) -> PageBuilder:
        """Start (or continue) declaring page-scheme ``name``."""
        if name in self._pages:
            return self._pages[name]
        builder = PageBuilder(self, name)
        self._pages[name] = builder
        return builder

    def link_constraint(self, link: str, equality: str) -> None:
        """Declare a link constraint, e.g.
        ``link_constraint("ProfPage.ToDept", "ProfPage.DName = DeptPage.DName")``."""
        self._link_constraints.append(LinkConstraint.parse(link, equality))

    def inclusion(self, text: str) -> None:
        """Declare an inclusion constraint, e.g.
        ``inclusion("CoursePage.ToProf <= ProfListPage.ProfList.ToProf")``."""
        self._inclusion_constraints.append(InclusionConstraint.parse(text))

    def equivalence(self, left: str, right: str) -> None:
        """Declare ``left ≡ right``: inclusions in both directions (the
        paper's compact ≡ notation)."""
        self.inclusion(f"{left} <= {right}")
        self.inclusion(f"{right} <= {left}")

    def build(self) -> WebScheme:
        """Validate everything and return the immutable WebScheme."""
        if not self._pages:
            raise SchemeError("a web scheme needs at least one page-scheme")
        page_schemes = [pb._build() for pb in self._pages.values()]
        entry_points = [
            EntryPoint(pb._name, pb._entry_url)
            for pb in self._pages.values()
            if pb._entry_url is not None
        ]
        if not entry_points:
            raise SchemeError("a web scheme needs at least one entry point")
        return WebScheme(
            page_schemes,
            entry_points,
            self._link_constraints,
            self._inclusion_constraints,
            name=self._name,
        )
