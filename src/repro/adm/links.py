"""Walking the link values of a wrapped tuple.

Both the statistics crawler and the materialized store need to enumerate
the outgoing links of a page tuple — ``outlinks(t)`` in the paper's
Function 2 — as ``(target page-scheme, URL)`` pairs.  Null links (optional
attributes) are skipped.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.adm.scheme import WebScheme
from repro.adm.webtypes import LinkType, ListType

__all__ = ["iter_outlinks", "outlink_set"]


def iter_outlinks(
    scheme: WebScheme, page_scheme: str, plain: dict
) -> Iterator[Tuple[str, str]]:
    """Yield ``(target_scheme, url)`` for every link value in the tuple."""
    ps = scheme.page_scheme(page_scheme)

    def walk(fields, row):
        for fname, ftype in fields:
            value = row.get(fname)
            if isinstance(ftype, LinkType):
                if value is not None:
                    yield ftype.target, value
            elif isinstance(ftype, ListType):
                for sub in value or []:
                    yield from walk(ftype.fields, sub)

    top_fields = [(a.name, a.wtype) for a in ps.attributes]
    yield from walk(top_fields, plain)


def outlink_set(scheme: WebScheme, page_scheme: str, plain: dict) -> set:
    """The paper's ``outlinks(t)``: the set of (URL, target scheme) pairs."""
    return {
        (url, target) for target, url in iter_outlinks(scheme, page_scheme, plain)
    }
