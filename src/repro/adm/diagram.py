"""Scheme diagrams (the paper's Figure 1 as an artifact).

:func:`scheme_to_dot` renders a web scheme as a Graphviz DOT graph: one
record node per page-scheme ("stacks" in the paper's notation, here marked
with their cardinality role), an edge per link attribute, doubled borders
for entry points, and dashed edges annotating inclusion constraints.  The
output is plain text; render it with ``dot -Tsvg`` or paste it into any
Graphviz viewer.
"""

from __future__ import annotations

from repro.adm.scheme import WebScheme
from repro.adm.webtypes import ListType

__all__ = ["scheme_to_dot"]


def _escape(text: str) -> str:
    return (
        text.replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("<", "\\<")
        .replace(">", "\\>")
        .replace("{", "\\{")
        .replace("}", "\\}")
        .replace("|", "\\|")
    )


def _attr_lines(ps) -> list[str]:
    lines = []
    for attr in ps.attributes:
        if isinstance(attr.wtype, ListType):
            inner = ", ".join(name for name, _ in attr.wtype.fields)
            lines.append(f"{attr.name} [{inner}]")
        else:
            lines.append(f"{attr.name}: {attr.wtype}")
    return lines


def scheme_to_dot(scheme: WebScheme) -> str:
    """A Graphviz DOT rendering of the web scheme."""
    out = [f'digraph "{_escape(scheme.name)}" {{']
    out.append("  rankdir=LR;")
    out.append('  node [shape=record, fontname="Helvetica", fontsize=10];')
    for name in sorted(scheme.page_schemes):
        ps = scheme.page_schemes[name]
        body = "\\l".join(_escape(line) for line in _attr_lines(ps))
        label = f"{{{_escape(name)}|{body}\\l}}" if body else _escape(name)
        peripheries = 2 if scheme.is_entry_point(name) else 1
        out.append(
            f'  "{name}" [label="{label}", peripheries={peripheries}];'
        )
    for name in sorted(scheme.page_schemes):
        for path, target in sorted(
            scheme.out_links(name), key=lambda item: str(item[0])
        ):
            out.append(
                f'  "{name}" -> "{target}" [label="{_escape(str(path))}"];'
            )
    for constraint in scheme.inclusion_constraints:
        out.append(
            f'  "{constraint.subset.scheme}" -> '
            f'"{constraint.superset.scheme}" '
            f'[style=dashed, color=gray, label="'
            f'{_escape(str(constraint.subset.path))} ⊆ '
            f'{_escape(str(constraint.superset.path))}"];'
        )
    out.append("}")
    return "\n".join(out)
