"""Web schemes (paper, Section 3.3).

A web scheme describes a portion of the Web:

1. a set of page-schemes connected by links;
2. a set of entry points (page-schemes whose single instance URL is known);
3. a set of link constraints and inclusion constraints.

:class:`WebScheme` validates all three parts together, and offers the lookup
helpers the optimizer needs: finding the link constraint attached to a link,
finding inclusion relationships between two link paths, and graph-style
reachability over links.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

from repro.adm.constraints import AttrRef, InclusionConstraint, LinkConstraint
from repro.adm.page_scheme import AttrPath, PageScheme
from repro.adm.webtypes import LinkType
from repro.errors import SchemeError

__all__ = ["EntryPoint", "WebScheme"]


@dataclass(frozen=True)
class EntryPoint:
    """An entry point: a page-scheme whose unique instance URL is known."""

    scheme: str
    url: str

    def __str__(self) -> str:
        return f"{self.scheme} @ {self.url}"


class WebScheme:
    """A validated web scheme: page-schemes + entry points + constraints."""

    def __init__(
        self,
        page_schemes: Iterable[PageScheme],
        entry_points: Iterable[EntryPoint],
        link_constraints: Iterable[LinkConstraint] = (),
        inclusion_constraints: Iterable[InclusionConstraint] = (),
        name: str = "web",
    ):
        self.name = name
        self.page_schemes: dict[str, PageScheme] = {}
        for ps in page_schemes:
            if ps.name in self.page_schemes:
                raise SchemeError(f"duplicate page-scheme {ps.name!r}")
            self.page_schemes[ps.name] = ps
        self.entry_points: dict[str, EntryPoint] = {}
        for ep in entry_points:
            if ep.scheme not in self.page_schemes:
                raise SchemeError(f"entry point for unknown page-scheme {ep.scheme!r}")
            if ep.scheme in self.entry_points:
                raise SchemeError(f"duplicate entry point for {ep.scheme!r}")
            self.entry_points[ep.scheme] = ep
        self.link_constraints: tuple[LinkConstraint, ...] = tuple(link_constraints)
        self.inclusion_constraints: tuple[InclusionConstraint, ...] = tuple(
            inclusion_constraints
        )
        self._validate()

    # ------------------------------------------------------------------ #
    # validation
    # ------------------------------------------------------------------ #

    def _validate(self) -> None:
        for ps in self.page_schemes.values():
            for path, lt in ps.link_paths():
                if lt.target not in self.page_schemes:
                    raise SchemeError(
                        f"{ps.name}.{path} links to unknown page-scheme "
                        f"{lt.target!r}"
                    )
        for lc in self.link_constraints:
            lc.validate(self.page_schemes)
        for ic in self.inclusion_constraints:
            ic.validate(self.page_schemes)

    # ------------------------------------------------------------------ #
    # lookup helpers
    # ------------------------------------------------------------------ #

    def page_scheme(self, name: str) -> PageScheme:
        try:
            return self.page_schemes[name]
        except KeyError:
            raise SchemeError(f"unknown page-scheme {name!r}") from None

    def is_entry_point(self, name: str) -> bool:
        return name in self.entry_points

    def entry_point(self, name: str) -> EntryPoint:
        try:
            return self.entry_points[name]
        except KeyError:
            raise SchemeError(f"{name!r} is not an entry point") from None

    def link_target(self, scheme: str, link_path: AttrPath | str) -> str:
        """The page-scheme a link attribute points to."""
        if isinstance(link_path, str):
            link_path = AttrPath.parse(link_path)
        wtype = self.page_scheme(scheme).attr_type(link_path)
        if not isinstance(wtype, LinkType):
            raise SchemeError(f"{scheme}.{link_path} is not a link attribute")
        return wtype.target

    def constraints_on_link(
        self, scheme: str, link_path: AttrPath | str
    ) -> list[LinkConstraint]:
        """All link constraints associated with ``scheme.link_path``."""
        if isinstance(link_path, str):
            link_path = AttrPath.parse(link_path)
        return [
            lc
            for lc in self.link_constraints
            if lc.source == scheme and lc.link_path == link_path
        ]

    def find_link_constraint(
        self,
        scheme: str,
        link_path: AttrPath | str,
        target_attr: AttrPath | str,
    ) -> Optional[LinkConstraint]:
        """The constraint on ``scheme.link_path`` whose target attribute is
        ``target_attr``, if any."""
        if isinstance(target_attr, str):
            target_attr = AttrPath.parse(target_attr)
        for lc in self.constraints_on_link(scheme, link_path):
            if lc.target_attr == target_attr:
                return lc
        return None

    def includes(self, subset: AttrRef, superset: AttrRef) -> bool:
        """True when ``subset ⊆ superset`` is entailed by the declared
        inclusion constraints (reflexive-transitive closure)."""
        if subset == superset:
            return True
        # breadth-first search over declared inclusions
        frontier = [subset]
        seen = {subset}
        while frontier:
            current = frontier.pop()
            for ic in self.inclusion_constraints:
                if ic.subset == current and ic.superset not in seen:
                    if ic.superset == superset:
                        return True
                    seen.add(ic.superset)
                    frontier.append(ic.superset)
        return False

    def inclusions_into(self, superset: AttrRef) -> list[AttrRef]:
        """All declared link refs known to be contained in ``superset``."""
        result = []
        refs = {ic.subset for ic in self.inclusion_constraints} | {
            ic.superset for ic in self.inclusion_constraints
        }
        for ref in refs:
            if ref != superset and self.includes(ref, superset):
                result.append(ref)
        return sorted(result, key=str)

    # ------------------------------------------------------------------ #
    # graph helpers
    # ------------------------------------------------------------------ #

    def out_links(self, scheme: str) -> Iterator[tuple[AttrPath, str]]:
        """Yield ``(link_path, target_scheme)`` for every link in ``scheme``."""
        for path, lt in self.page_scheme(scheme).link_paths():
            yield path, lt.target

    def in_links(self, target: str) -> Iterator[tuple[str, AttrPath]]:
        """Yield ``(source_scheme, link_path)`` for every link into ``target``."""
        for ps in self.page_schemes.values():
            for path in ps.links_to(target):
                yield ps.name, path

    def reachable_from(self, start: str) -> set[str]:
        """Page-schemes reachable from ``start`` by following links."""
        seen = {start}
        frontier = [start]
        while frontier:
            current = frontier.pop()
            for _, target in self.out_links(current):
                if target not in seen:
                    seen.add(target)
                    frontier.append(target)
        return seen

    def unreachable_page_schemes(self) -> set[str]:
        """Page-schemes not reachable from any entry point (a design smell:
        their instances can never be accessed, paper Section 3.1)."""
        reachable: set[str] = set()
        for ep in self.entry_points.values():
            reachable |= self.reachable_from(ep.scheme)
        return set(self.page_schemes) - reachable

    # ------------------------------------------------------------------ #

    def describe(self) -> str:
        """Human-readable multi-line rendering of the whole scheme."""
        lines = [f"web scheme {self.name!r}:"]
        for name in sorted(self.page_schemes):
            ps = self.page_schemes[name]
            marker = " (entry point)" if self.is_entry_point(name) else ""
            lines.append(f"  {ps!r}{marker}")
        if self.link_constraints:
            lines.append("  link constraints:")
            lines.extend(f"    {lc}" for lc in self.link_constraints)
        if self.inclusion_constraints:
            lines.append("  inclusion constraints:")
            lines.extend(f"    {ic}" for ic in self.inclusion_constraints)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"WebScheme({self.name!r}, {len(self.page_schemes)} page-schemes, "
            f"{len(self.entry_points)} entry points, "
            f"{len(self.link_constraints)} link constraints, "
            f"{len(self.inclusion_constraints)} inclusion constraints)"
        )
