"""The Navigational Algebra, NALG (paper, Section 4).

NALG is relational algebra over nested page-relations, extended with two
navigation operators:

* *unnest page* ``R ∘ A`` — navigate *inside* a page's nested structure;
* *follow link* ``R →L P`` — navigate *between* pages.

This package defines the expression AST (:mod:`repro.algebra.ast`),
conjunctive predicates (:mod:`repro.algebra.predicates`), the paper-style
pretty printer and plan-tree renderer (:mod:`repro.algebra.printer`), the
computability check (:mod:`repro.algebra.computable`) and generic tree
utilities used by the optimizer (:mod:`repro.algebra.visitors`).
"""

from repro.algebra.predicates import AttrEq, Comparison, In, Predicate
from repro.algebra.ast import (
    Expr,
    EntryPointScan,
    ExternalRelScan,
    Select,
    Project,
    Join,
    Unnest,
    FollowLink,
)
from repro.algebra.parser import parse_navigation
from repro.algebra.printer import render_expr, render_plan_tree
from repro.algebra.computable import is_computable, check_computable
from repro.algebra.visitors import children, replace_child, walk, replace_at, leaves

__all__ = [
    "Predicate",
    "Comparison",
    "AttrEq",
    "In",
    "Expr",
    "EntryPointScan",
    "ExternalRelScan",
    "Select",
    "Project",
    "Join",
    "Unnest",
    "FollowLink",
    "parse_navigation",
    "render_expr",
    "render_plan_tree",
    "is_computable",
    "check_computable",
    "children",
    "replace_child",
    "walk",
    "replace_at",
    "leaves",
]
