"""Rendering NALG expressions.

Two renderings are provided:

* :func:`render_expr` — the paper's compact infix notation, e.g.
  ``π_{PName,email}(σ_{DName='CS'}(ProfListPage ∘ ProfList →ToProf ProfPage))``.
  It is deterministic and injective enough to serve as the optimizer's
  deduplication key.
* :func:`render_plan_tree` — an ASCII query-plan tree in the spirit of the
  paper's Figures 2–4 (leaves are page-relations, inner nodes operators;
  unnests keep their infix rendering, links appear as upward edges).
"""

from __future__ import annotations

from repro.algebra.ast import (
    EntryPointScan,
    Expr,
    ExternalRelScan,
    FollowLink,
    Join,
    Project,
    Select,
    Unnest,
)
from repro.errors import AlgebraError

__all__ = ["render_expr", "render_plan_tree"]


def _short(attr: str) -> str:
    """Last path step of a qualified attribute (for compact display)."""
    return attr.rsplit(".", 1)[-1]


def render_expr(expr: Expr, compact: bool = False, scheme=None) -> str:
    """Paper-style infix rendering.

    ``compact=True`` shortens qualified attribute names to their last step,
    matching the paper's notation; the default keeps full qualified names
    (injective, suitable for deduplication).  When ``scheme`` is given,
    follow-link operators display their resolved target page-scheme.
    """

    def name(attr: str) -> str:
        return _short(attr) if compact else attr

    def go(node: Expr) -> str:
        if isinstance(node, EntryPointScan):
            return node.name
        if isinstance(node, ExternalRelScan):
            return node.name
        if isinstance(node, Select):
            atoms = str(node.predicate)
            if compact:
                mapping = {a: _short(a) for a in node.predicate.attrs()}
                atoms = str(node.predicate.rename(mapping))
            return f"σ_{{{atoms}}}({go(node.child)})"
        if isinstance(node, Project):
            cols = ",".join(
                name(i) if o == i or o == _short(i) else f"{name(i)} as {o}"
                for o, i in node.outputs
            )
            return f"π_{{{cols}}}({go(node.child)})"
        if isinstance(node, Join):
            cond = ",".join(
                f"{name(lhs)}={name(rhs)}" for lhs, rhs in node.on
            )
            return f"({go(node.left)} ⋈_{{{cond}}} {go(node.right)})"
        if isinstance(node, Unnest):
            return f"{go(node.child)} ∘ {name(node.attr)}"
        if isinstance(node, FollowLink):
            target = node.alias
            if target is None and scheme is not None:
                target = node.target_alias(scheme)
            return f"{go(node.child)} →{name(node.link_attr)} {target or '?'}"
        raise AlgebraError(f"cannot render {type(node).__name__}")

    return go(expr)


def render_plan_tree(expr: Expr, scheme=None) -> str:
    """ASCII plan tree (Figures 2–4 style).

    When ``scheme`` is given, follow-link nodes display their resolved
    target page-scheme.
    """

    lines: list[str] = []

    def label(node: Expr) -> str:
        if isinstance(node, EntryPointScan):
            return f"{node.name}  [entry point]"
        if isinstance(node, ExternalRelScan):
            return f"{node.name}  [external relation]"
        if isinstance(node, Select):
            return f"σ {node.predicate}"
        if isinstance(node, Project):
            cols = ", ".join(
                o if o == i else f"{i} as {o}" for o, i in node.outputs
            )
            return f"π {cols}"
        if isinstance(node, Join):
            cond = ", ".join(f"{lhs}={rhs}" for lhs, rhs in node.on)
            return f"⋈ {cond}"
        if isinstance(node, Unnest):
            return f"∘ {node.attr}"
        if isinstance(node, FollowLink):
            target = node.alias
            if scheme is not None:
                target = node.target_alias(scheme)
            return f"→ {node.link_attr}  (to {target or '?'})"
        raise AlgebraError(f"cannot render {type(node).__name__}")

    def go(node: Expr, prefix: str, is_last: bool, is_root: bool) -> None:
        connector = "" if is_root else ("└── " if is_last else "├── ")
        lines.append(prefix + connector + label(node))
        child_prefix = prefix if is_root else prefix + ("    " if is_last else "│   ")
        kids = node.children()
        for i, child in enumerate(kids):
            go(child, child_prefix, i == len(kids) - 1, False)

    go(expr, "", True, True)
    return "\n".join(lines)
