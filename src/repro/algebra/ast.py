"""The NALG expression AST.

Nodes are immutable, hashable dataclasses, so the optimizer can generate,
compare and deduplicate rewritten plans freely.  Every node can compute its
*output schema* against a web scheme; all runtime attribute names are
*qualified* — ``alias.Attr`` or ``alias.List.Field`` — so that joins and
repeated navigations never clash (a page-scheme navigated twice gets two
aliases).

Node inventory (paper, Section 4):

* :class:`EntryPointScan` — a leaf page-relation whose URL is known;
* :class:`ExternalRelScan` — a leaf naming an external relation (only valid
  before rule 1 replaces it by a default navigation; not computable);
* :class:`Unnest` — the unnest-page operator ``R ∘ A``;
* :class:`FollowLink` — the follow-link operator ``R →L P``;
* :class:`Select`, :class:`Project`, :class:`Join` — the relational core.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.adm.page_scheme import AttrPath, URL_ATTR
from repro.adm.scheme import WebScheme
from repro.adm.webtypes import LinkType, ListType, URL_TYPE, TEXT
from repro.algebra.predicates import Predicate
from repro.errors import AlgebraError
from repro.nested.schema import Field, Provenance, RelationSchema

__all__ = [
    "Expr",
    "EntryPointScan",
    "ExternalRelScan",
    "Select",
    "Project",
    "Join",
    "Unnest",
    "FollowLink",
    "page_relation_schema",
]


def _qualified_list_field(
    alias: str, base_scheme: str, path: AttrPath, wtype: ListType
) -> Field:
    """Build the schema Field for a list attribute, with fully qualified
    nested field names (``alias.Path.Field``)."""
    elem_fields: list[Field] = []
    for fname, ftype in wtype.fields:
        fpath = path.child(fname)
        if isinstance(ftype, ListType):
            elem_fields.append(
                _qualified_list_field(alias, base_scheme, fpath, ftype)
            )
        else:
            elem_fields.append(
                Field(
                    name=fpath.qualified(alias),
                    wtype=ftype,
                    provenance=Provenance(alias, fpath, base_scheme),
                )
            )
    return Field(
        name=path.qualified(alias),
        wtype=wtype,
        elem=RelationSchema(elem_fields),
        provenance=Provenance(alias, path, base_scheme),
    )


def page_relation_schema(
    scheme: WebScheme, page_scheme: str, alias: Optional[str] = None
) -> RelationSchema:
    """The qualified relation schema of a page-scheme's page-relation."""
    alias = alias or page_scheme
    ps = scheme.page_scheme(page_scheme)
    fields: list[Field] = [
        Field(
            name=f"{alias}.{URL_ATTR}",
            wtype=URL_TYPE,
            provenance=Provenance(alias, AttrPath((URL_ATTR,)), page_scheme),
        )
    ]
    for attr in ps.attributes:
        path = AttrPath((attr.name,))
        if isinstance(attr.wtype, ListType):
            fields.append(
                _qualified_list_field(alias, page_scheme, path, attr.wtype)
            )
        else:
            fields.append(
                Field(
                    name=path.qualified(alias),
                    wtype=attr.wtype,
                    provenance=Provenance(alias, path, page_scheme),
                )
            )
    return RelationSchema(fields)


@dataclass(frozen=True)
class Expr:
    """Abstract base of all NALG expressions."""

    def children(self) -> Tuple["Expr", ...]:
        return ()

    def with_children(self, new_children: Tuple["Expr", ...]) -> "Expr":
        if new_children:
            raise AlgebraError(f"{type(self).__name__} takes no children")
        return self

    def output_schema(self, scheme: WebScheme) -> RelationSchema:
        """The qualified schema of this expression's result."""
        return _schema_of(self, scheme)

    def _compute_schema(self, scheme: WebScheme) -> RelationSchema:
        raise NotImplementedError

    # convenience constructors for fluent plan building ----------------- #

    def unnest(self, attr: str) -> "Unnest":
        return Unnest(self, attr)

    def follow(self, link_attr: str, alias: Optional[str] = None) -> "FollowLink":
        return FollowLink(self, link_attr, alias)

    def where(self, predicate: Predicate) -> "Select":
        return Select(self, predicate)

    def select_eq(self, attr: str, value: str) -> "Select":
        return Select(self, Predicate.eq(attr, value))

    def project(self, *outputs) -> "Project":
        """``project("PName", ("Name", "ProfPage.PName"))`` — each output is
        either an attribute name (kept as-is) or ``(out_name, in_name)``."""
        pairs = tuple(
            (o, o) if isinstance(o, str) else (o[0], o[1]) for o in outputs
        )
        return Project(self, pairs)

    def join(self, other: "Expr", on) -> "Join":
        """``on`` is a list of ``(left_attr, right_attr)`` pairs."""
        return Join(self, other, tuple(tuple(pair) for pair in on))


# Schemas are cached per expression *on the scheme object itself*, so the
# cache's lifetime is exactly the scheme's (no id-reuse hazards) and schemes
# are treated as immutable after construction.


def _schema_of(expr: "Expr", scheme: WebScheme) -> RelationSchema:
    cache = scheme.__dict__.setdefault("_schema_cache", {})
    cached = cache.get(expr)
    if cached is None:
        cached = expr._compute_schema(scheme)
        if len(cache) > 65536:
            cache.clear()
        cache[expr] = cached
    return cached


@dataclass(frozen=True)
class EntryPointScan(Expr):
    """Access an entry-point page-relation through its known URL.

    ``alias`` defaults to the page-scheme name; give an explicit alias when
    the same page-scheme occurs twice in one expression.
    """

    page_scheme: str
    alias: Optional[str] = None

    @property
    def name(self) -> str:
        return self.alias or self.page_scheme

    def _compute_schema(self, scheme: WebScheme) -> RelationSchema:
        if not scheme.is_entry_point(self.page_scheme):
            raise AlgebraError(
                f"{self.page_scheme!r} is not an entry point; page-relations "
                "can only be accessed by navigation (paper, Section 3.1)"
            )
        return page_relation_schema(scheme, self.page_scheme, self.name)


@dataclass(frozen=True)
class ExternalRelScan(Expr):
    """A leaf naming an external relation of the relational view.

    Not computable: rule 1 must replace it by one of its default
    navigations before execution.  ``attrs`` are the external relation's
    attribute names; the output schema qualifies them with the occurrence
    ``alias`` (default: the relation name), so that a query may mention the
    same external relation twice.
    """

    name: str
    attrs: Tuple[str, ...]
    alias: Optional[str] = None

    @property
    def qualifier(self) -> str:
        return self.alias or self.name

    def qualified(self, attr: str) -> str:
        if attr not in self.attrs:
            raise AlgebraError(
                f"external relation {self.name!r} has no attribute {attr!r}"
            )
        return f"{self.qualifier}.{attr}"

    def _compute_schema(self, scheme: WebScheme) -> RelationSchema:
        return RelationSchema(
            [Field(f"{self.qualifier}.{a}", TEXT) for a in self.attrs]
        )


@dataclass(frozen=True)
class Select(Expr):
    """``σ_predicate(child)``."""

    child: Expr
    predicate: Predicate

    def children(self) -> Tuple[Expr, ...]:
        return (self.child,)

    def with_children(self, new_children: Tuple[Expr, ...]) -> "Select":
        (child,) = new_children
        return Select(child, self.predicate)

    def _compute_schema(self, scheme: WebScheme) -> RelationSchema:
        schema = self.child.output_schema(scheme)
        for attr in self.predicate.attrs():
            if attr not in schema:
                raise AlgebraError(
                    f"selection references unknown attribute {attr!r} "
                    f"(have {sorted(schema.names())})"
                )
            if schema.field(attr).is_list:
                raise AlgebraError(
                    f"selection on list-valued attribute {attr!r} (unnest first)"
                )
        return schema


@dataclass(frozen=True)
class Project(Expr):
    """``π_outputs(child)``: each output is ``(out_name, in_name)``."""

    child: Expr
    outputs: Tuple[Tuple[str, str], ...]

    def __post_init__(self) -> None:
        if not self.outputs:
            raise AlgebraError("projection needs at least one output")
        out_names = [o for o, _ in self.outputs]
        if len(set(out_names)) != len(out_names):
            raise AlgebraError(f"duplicate projection outputs: {out_names}")

    def children(self) -> Tuple[Expr, ...]:
        return (self.child,)

    def with_children(self, new_children: Tuple[Expr, ...]) -> "Project":
        (child,) = new_children
        return Project(child, self.outputs)

    def _compute_schema(self, scheme: WebScheme) -> RelationSchema:
        schema = self.child.output_schema(scheme)
        fields = []
        for out_name, in_name in self.outputs:
            if in_name not in schema:
                raise AlgebraError(
                    f"projection references unknown attribute {in_name!r} "
                    f"(have {sorted(schema.names())})"
                )
            fields.append(schema.field(in_name).renamed(out_name))
        return RelationSchema(fields)

    def in_names(self) -> Tuple[str, ...]:
        return tuple(i for _, i in self.outputs)


@dataclass(frozen=True)
class Join(Expr):
    """``left ⋈_on right`` with ``on`` a tuple of (left_attr, right_attr).

    An empty ``on`` is a cartesian product (a disconnected conjunctive
    query); the rewrite rules leave such joins alone.
    """

    left: Expr
    right: Expr
    on: Tuple[Tuple[str, str], ...]

    def children(self) -> Tuple[Expr, ...]:
        return (self.left, self.right)

    def with_children(self, new_children: Tuple[Expr, ...]) -> "Join":
        left, right = new_children
        return Join(left, right, self.on)

    def _compute_schema(self, scheme: WebScheme) -> RelationSchema:
        left_schema = self.left.output_schema(scheme)
        right_schema = self.right.output_schema(scheme)
        for lname, rname in self.on:
            if lname not in left_schema:
                raise AlgebraError(
                    f"join references unknown left attribute {lname!r}"
                )
            if rname not in right_schema:
                raise AlgebraError(
                    f"join references unknown right attribute {rname!r}"
                )
        return left_schema.concat(right_schema)


@dataclass(frozen=True)
class Unnest(Expr):
    """The unnest-page operator ``child ∘ attr`` (``attr`` qualified)."""

    child: Expr
    attr: str

    def children(self) -> Tuple[Expr, ...]:
        return (self.child,)

    def with_children(self, new_children: Tuple[Expr, ...]) -> "Unnest":
        (child,) = new_children
        return Unnest(child, self.attr)

    def _compute_schema(self, scheme: WebScheme) -> RelationSchema:
        schema = self.child.output_schema(scheme)
        if self.attr not in schema:
            raise AlgebraError(
                f"unnest references unknown attribute {self.attr!r} "
                f"(have {sorted(schema.names())})"
            )
        if not schema.field(self.attr).is_list:
            raise AlgebraError(f"cannot unnest mono-valued attribute {self.attr!r}")
        return schema.unnest(self.attr)


@dataclass(frozen=True)
class FollowLink(Expr):
    """The follow-link operator ``child →link_attr TargetPage``.

    ``link_attr`` is a qualified link attribute of the child's schema; the
    target page-scheme is determined by the link's type.  The result joins
    each child row with the page its link references (rows whose link is
    null are dropped — they have nothing to navigate to).
    """

    child: Expr
    link_attr: str
    alias: Optional[str] = None

    def children(self) -> Tuple[Expr, ...]:
        return (self.child,)

    def with_children(self, new_children: Tuple[Expr, ...]) -> "FollowLink":
        (child,) = new_children
        return FollowLink(child, self.link_attr, self.alias)

    def link_type(self, scheme: WebScheme) -> LinkType:
        schema = self.child.output_schema(scheme)
        if self.link_attr not in schema:
            raise AlgebraError(
                f"follow-link references unknown attribute {self.link_attr!r} "
                f"(have {sorted(schema.names())})"
            )
        wtype = schema.field(self.link_attr).wtype
        if not isinstance(wtype, LinkType):
            raise AlgebraError(f"{self.link_attr!r} is not a link attribute")
        return wtype

    def target_scheme(self, scheme: WebScheme) -> str:
        return self.link_type(scheme).target

    def target_alias(self, scheme: WebScheme) -> str:
        return self.alias or self.target_scheme(scheme)

    def target_url_attr(self, scheme: WebScheme) -> str:
        return f"{self.target_alias(scheme)}.{URL_ATTR}"

    def _compute_schema(self, scheme: WebScheme) -> RelationSchema:
        child_schema = self.child.output_schema(scheme)
        target = self.target_scheme(scheme)
        target_schema = page_relation_schema(
            scheme, target, self.target_alias(scheme)
        )
        return child_schema.concat(target_schema)
