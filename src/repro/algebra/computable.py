"""Computability of NALG expressions (paper, Section 4).

"The only page-relations in a Web scheme that are directly accessible are
the ones corresponding to entry-points ... we thus define the notion of
computable expression as a navigational algebra expression such that all
leaf nodes in the corresponding query plan are entry points."
"""

from __future__ import annotations

from repro.adm.scheme import WebScheme
from repro.algebra.ast import EntryPointScan, Expr, ExternalRelScan
from repro.algebra.visitors import leaves
from repro.errors import NotComputableError

__all__ = ["is_computable", "check_computable"]


def check_computable(expr: Expr, scheme: WebScheme) -> None:
    """Raise :class:`NotComputableError` unless every leaf is an entry point."""
    for leaf in leaves(expr):
        if isinstance(leaf, ExternalRelScan):
            raise NotComputableError(
                f"leaf references external relation {leaf.name!r}; apply "
                "rule 1 (default navigation) first"
            )
        if not isinstance(leaf, EntryPointScan):
            raise NotComputableError(
                f"leaf {type(leaf).__name__} is not an entry-point scan"
            )
        if not scheme.is_entry_point(leaf.page_scheme):
            raise NotComputableError(
                f"page-scheme {leaf.page_scheme!r} is not an entry point of "
                f"scheme {scheme.name!r}"
            )


def is_computable(expr: Expr, scheme: WebScheme) -> bool:
    """True when every leaf of ``expr`` is an entry point of ``scheme``."""
    try:
        check_computable(expr, scheme)
        return True
    except NotComputableError:
        return False
