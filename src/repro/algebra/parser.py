"""A Ulixes-style textual syntax for navigational-algebra expressions.

The paper's practical language Ulixes "implements the navigational
algebra"; this parser provides an equivalent text form, resolving short
attribute names against the web scheme as the chain is built::

    ProfListPage . ProfList -> ToProf
        where Rank = 'Full' and DName = 'Computer Science'
        project PName as Name, email

Grammar (keywords case-insensitive; ``∘`` may replace ``.`` and ``→`` may
replace ``->``)::

    expr    := entry step*
    entry   := NAME                                  -- an entry point
    step    := '.' NAME                              -- unnest
             | '->' NAME ['as' NAME]                 -- follow link (alias)
             | 'where' cond ('and' cond)*
             | 'project' col (',' col)*
    cond    := attr '=' STRING
             | attr 'in' '(' STRING (',' STRING)* ')'
             | attr '=' attr
    col     := attr ['as' NAME]
    attr    := NAME ('.' NAME)*                      -- resolved against the
                                                        current schema

Attribute references may be full qualified names (``ProfPage.PName``),
plain leaf names (``PName``), or dotted suffixes (``CourseList.CName``);
a reference must match exactly one attribute of the expression's current
schema or parsing fails with the matching candidates listed.
"""

from __future__ import annotations

import re
from typing import Optional

from repro.adm.scheme import WebScheme
from repro.algebra.ast import EntryPointScan, Expr, Project, Select
from repro.algebra.predicates import AttrEq, Atom, Comparison, In, Predicate
from repro.errors import ParseError

__all__ = ["parse_navigation"]

_TOKEN = re.compile(
    r"\s*(?:(?P<string>'(?:[^']|'')*')"
    r"|(?P<arrow>->|→)"
    r"|(?P<name>[A-Za-z_][A-Za-z_0-9@]*)"
    r"|(?P<punct>[.∘,()=]))"
)

_KEYWORDS = {"where", "and", "project", "as", "in"}


class _Tokens:
    def __init__(self, text: str):
        self.items: list[tuple[str, str]] = []
        pos = 0
        while pos < len(text):
            match = _TOKEN.match(text, pos)
            if match is None:
                if text[pos:].strip():
                    raise ParseError(
                        f"cannot tokenize navigation at: "
                        f"{text[pos:pos + 20]!r}"
                    )
                break
            pos = match.end()
            if match.lastgroup == "string":
                self.items.append(
                    ("string", match.group("string")[1:-1].replace("''", "'"))
                )
            elif match.lastgroup == "arrow":
                self.items.append(("punct", "->"))
            elif match.lastgroup == "name":
                name = match.group("name")
                kind = "kw" if name.lower() in _KEYWORDS else "name"
                value = name.lower() if kind == "kw" else name
                self.items.append((kind, value))
            else:
                punct = match.group("punct")
                self.items.append(("punct", "." if punct == "∘" else punct))
        self.pos = 0

    def peek(self) -> Optional[tuple[str, str]]:
        return self.items[self.pos] if self.pos < len(self.items) else None

    def next(self) -> tuple[str, str]:
        item = self.peek()
        if item is None:
            raise ParseError("unexpected end of navigation expression")
        self.pos += 1
        return item

    def accept(self, kind: str, value: Optional[str] = None) -> Optional[str]:
        item = self.peek()
        if item and item[0] == kind and (value is None or item[1] == value):
            self.pos += 1
            return item[1]
        return None

    def expect(self, kind: str, value: Optional[str] = None) -> str:
        got = self.next()
        if got[0] != kind or (value is not None and got[1] != value):
            raise ParseError(f"expected {value or kind}, got {got[1]!r}")
        return got[1]


def _resolve(expr: Expr, scheme: WebScheme, ref: str) -> str:
    """Resolve a possibly-short attribute reference against the current
    output schema: exact qualified name, or a dotted suffix.

    Link constraints make anchors duplicate page attributes (``PName``
    appears both as ``ProfListPage.ProfList.PName`` and
    ``ProfPage.PName``), so suffix matches are tie-broken toward the
    *shallowest* qualified name — the page attribute, not its anchor copy.
    Remaining ties are errors."""
    schema = expr.output_schema(scheme)
    if ref in schema:
        return ref
    matches = [
        name
        for name in schema.names()
        if name.endswith(f".{ref}")
    ]
    if not matches:
        raise ParseError(
            f"no attribute matches {ref!r}; have {sorted(schema.names())}"
        )
    min_depth = min(name.count(".") for name in matches)
    shallowest = [n for n in matches if n.count(".") == min_depth]
    if len(shallowest) == 1:
        return shallowest[0]
    raise ParseError(
        f"ambiguous attribute {ref!r}: matches {sorted(shallowest)}"
    )


def _parse_attr(tokens: _Tokens) -> str:
    parts = [tokens.expect("name")]
    while True:
        save = tokens.pos
        if tokens.accept("punct", "."):
            nxt = tokens.peek()
            if nxt and nxt[0] == "name":
                parts.append(tokens.next()[1])
                continue
            tokens.pos = save
        break
    return ".".join(parts)


def _parse_attr_resolving(
    tokens: _Tokens, expr: Expr, scheme: WebScheme
) -> str:
    """Parse a dotted attribute reference and resolve it, backtracking over
    trailing segments.  Needed because ``.`` is also the unnest operator:
    in ``-> ToDept . ProfList`` the reference is just ``ToDept`` and the
    dot starts the next step."""
    positions = [tokens.pos]
    parts = [tokens.expect("name")]
    positions.append(tokens.pos)
    while True:
        save = tokens.pos
        if tokens.accept("punct", "."):
            nxt = tokens.peek()
            if nxt and nxt[0] == "name":
                parts.append(tokens.next()[1])
                positions.append(tokens.pos)
                continue
            tokens.pos = save
        break
    first_error: Optional[ParseError] = None
    for length in range(len(parts), 0, -1):
        ref = ".".join(parts[:length])
        try:
            resolved = _resolve(expr, scheme, ref)
        except ParseError as exc:
            if first_error is None:
                first_error = exc
            continue
        tokens.pos = positions[length]
        return resolved
    assert first_error is not None
    raise first_error


def parse_navigation(text: str, scheme: WebScheme) -> Expr:
    """Parse a Ulixes-style navigation into a NALG expression."""
    tokens = _Tokens(text)
    entry = tokens.expect("name")
    expr: Expr = EntryPointScan(entry)
    expr.output_schema(scheme)  # validates the entry point eagerly

    while True:
        item = tokens.peek()
        if item is None:
            break
        kind, value = item
        if kind == "punct" and value == ".":
            tokens.next()
            attr = _parse_attr_resolving(tokens, expr, scheme)
            expr = expr.unnest(attr)
            expr.output_schema(scheme)
        elif kind == "punct" and value == "->":
            tokens.next()
            attr = _parse_attr_resolving(tokens, expr, scheme)
            alias = None
            if tokens.accept("kw", "as"):
                alias = tokens.expect("name")
            expr = expr.follow(attr, alias)
            expr.output_schema(scheme)
        elif kind == "kw" and value == "where":
            tokens.next()
            atoms = [_parse_condition(tokens, expr, scheme)]
            while tokens.accept("kw", "and"):
                atoms.append(_parse_condition(tokens, expr, scheme))
            expr = Select(expr, Predicate(atoms))
        elif kind == "kw" and value == "project":
            tokens.next()
            outputs = [_parse_column(tokens, expr, scheme)]
            while tokens.accept("punct", ","):
                outputs.append(_parse_column(tokens, expr, scheme))
            expr = Project(expr, tuple(outputs))
            expr.output_schema(scheme)
        else:
            raise ParseError(f"unexpected token {value!r}")
    return expr


def _parse_condition(tokens: _Tokens, expr: Expr, scheme: WebScheme) -> Atom:
    attr = _parse_attr_resolving(tokens, expr, scheme)
    if tokens.accept("kw", "in"):
        tokens.expect("punct", "(")
        values = [tokens.expect("string")]
        while tokens.accept("punct", ","):
            values.append(tokens.expect("string"))
        tokens.expect("punct", ")")
        return In(attr, tuple(values))
    tokens.expect("punct", "=")
    kind, value = tokens.next()
    if kind == "string":
        return Comparison(attr, value)
    if kind == "name":
        tokens.pos -= 1
        other = _parse_attr_resolving(tokens, expr, scheme)
        return AttrEq(attr, other)
    raise ParseError(f"bad comparison right-hand side {value!r}")


def _parse_column(
    tokens: _Tokens, expr: Expr, scheme: WebScheme
) -> tuple[str, str]:
    ref = _parse_attr(tokens)
    resolved = _resolve(expr, scheme, ref)
    out = ref.rsplit(".", 1)[-1]
    if tokens.accept("kw", "as"):
        out = tokens.expect("name")
    return (out, resolved)
