"""Conjunctive selection predicates.

The paper works with conjunctive queries (Section 5), so selections are
conjunctions of simple atoms over attributes:

* :class:`Comparison` — ``attr = constant``;
* :class:`AttrEq` — ``attr1 = attr2`` (used when translating join
  conditions into selections over products, and in tests);
* :class:`In` — ``attr ∈ {v1, ..., vk}``, a disjunction of equalities on a
  single attribute (needed by the Introduction's "last three VLDBs" query).

A :class:`Predicate` is an ordered conjunction of atoms.  All classes are
immutable and hashable so that rewritten expressions can be deduplicated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Tuple

from repro.errors import PredicateError

__all__ = ["Atom", "Comparison", "AttrEq", "In", "Predicate"]


@dataclass(frozen=True)
class Atom:
    """Abstract base for predicate atoms."""

    def attrs(self) -> Tuple[str, ...]:
        raise NotImplementedError

    def evaluate(self, row: dict) -> bool:
        raise NotImplementedError

    def rename(self, mapping: dict) -> "Atom":
        """The same atom with attribute names substituted per ``mapping``."""
        raise NotImplementedError


@dataclass(frozen=True)
class Comparison(Atom):
    """``attr = value`` (equality with a constant; nulls never match)."""

    attr: str
    value: str

    def attrs(self) -> Tuple[str, ...]:
        return (self.attr,)

    def evaluate(self, row: dict) -> bool:
        return row.get(self.attr) == self.value

    def rename(self, mapping: dict) -> "Comparison":
        return Comparison(mapping.get(self.attr, self.attr), self.value)

    def __str__(self) -> str:
        return f"{self.attr}='{self.value}'"


@dataclass(frozen=True)
class AttrEq(Atom):
    """``attr1 = attr2`` (equality between two attributes of one row)."""

    left: str
    right: str

    def attrs(self) -> Tuple[str, ...]:
        return (self.left, self.right)

    def evaluate(self, row: dict) -> bool:
        lval = row.get(self.left)
        return lval is not None and lval == row.get(self.right)

    def rename(self, mapping: dict) -> "AttrEq":
        return AttrEq(
            mapping.get(self.left, self.left), mapping.get(self.right, self.right)
        )

    def __str__(self) -> str:
        return f"{self.left}={self.right}"


@dataclass(frozen=True)
class In(Atom):
    """``attr ∈ values`` (disjunction of equalities on one attribute)."""

    attr: str
    values: Tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise PredicateError("In predicate needs at least one value")
        object.__setattr__(self, "values", tuple(self.values))

    def attrs(self) -> Tuple[str, ...]:
        return (self.attr,)

    def evaluate(self, row: dict) -> bool:
        return row.get(self.attr) in self.values

    def rename(self, mapping: dict) -> "In":
        return In(mapping.get(self.attr, self.attr), self.values)

    def __str__(self) -> str:
        inner = ",".join(f"'{v}'" for v in self.values)
        return f"{self.attr} in ({inner})"


class Predicate:
    """An ordered conjunction of atoms.

    >>> p = Predicate([Comparison("Rank", "Full"), Comparison("Session", "Fall")])
    >>> p.evaluate({"Rank": "Full", "Session": "Fall"})
    True
    """

    def __init__(self, atoms: Iterable[Atom]):
        self.atoms: Tuple[Atom, ...] = tuple(atoms)
        if not self.atoms:
            raise PredicateError("a predicate needs at least one atom")

    @classmethod
    def eq(cls, attr: str, value: str) -> "Predicate":
        return cls([Comparison(attr, value)])

    def attrs(self) -> Tuple[str, ...]:
        seen: list[str] = []
        for atom in self.atoms:
            for attr in atom.attrs():
                if attr not in seen:
                    seen.append(attr)
        return tuple(seen)

    def evaluate(self, row: dict) -> bool:
        return all(atom.evaluate(row) for atom in self.atoms)

    def rename(self, mapping: dict) -> "Predicate":
        return Predicate([atom.rename(mapping) for atom in self.atoms])

    def conjoin(self, other: "Predicate") -> "Predicate":
        return Predicate(self.atoms + other.atoms)

    def split(self) -> list["Predicate"]:
        """One single-atom predicate per conjunct (used by pushdown rules)."""
        return [Predicate([atom]) for atom in self.atoms]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Predicate) and set(self.atoms) == set(other.atoms)

    def __hash__(self) -> int:
        return hash(frozenset(self.atoms))

    def __str__(self) -> str:
        return " AND ".join(str(atom) for atom in self.atoms)

    def __repr__(self) -> str:
        return f"Predicate({self})"
