"""Generic tree utilities over NALG expressions.

The optimizer's rewrite driver needs to enumerate every subexpression of a
plan and splice in replacements.  Paths are tuples of child indexes from the
root (``()`` is the root itself).
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.algebra.ast import Expr
from repro.errors import AlgebraError

__all__ = ["children", "replace_child", "walk", "subexpr_at", "replace_at", "leaves"]

Path = Tuple[int, ...]


def children(expr: Expr) -> Tuple[Expr, ...]:
    """The direct subexpressions of ``expr``."""
    return expr.children()


def replace_child(expr: Expr, index: int, new_child: Expr) -> Expr:
    """``expr`` with its ``index``-th child replaced."""
    kids = list(expr.children())
    if not (0 <= index < len(kids)):
        raise AlgebraError(f"{type(expr).__name__} has no child {index}")
    kids[index] = new_child
    return expr.with_children(tuple(kids))


def walk(expr: Expr) -> Iterator[Tuple[Path, Expr]]:
    """Yield ``(path, subexpression)`` pairs, pre-order from the root."""

    def _walk(node: Expr, path: Path) -> Iterator[Tuple[Path, Expr]]:
        yield path, node
        for i, child in enumerate(node.children()):
            yield from _walk(child, path + (i,))

    return _walk(expr, ())


def subexpr_at(expr: Expr, path: Path) -> Expr:
    """The subexpression at ``path``."""
    node = expr
    for index in path:
        kids = node.children()
        if not (0 <= index < len(kids)):
            raise AlgebraError(f"bad path {path!r} at {type(node).__name__}")
        node = kids[index]
    return node


def replace_at(expr: Expr, path: Path, new_node: Expr) -> Expr:
    """``expr`` with the subexpression at ``path`` replaced by ``new_node``."""
    if not path:
        return new_node
    index, rest = path[0], path[1:]
    kids = expr.children()
    if not (0 <= index < len(kids)):
        raise AlgebraError(f"bad path {path!r} at {type(expr).__name__}")
    return replace_child(expr, index, replace_at(kids[index], rest, new_node))


def leaves(expr: Expr) -> list[Expr]:
    """All leaf subexpressions, left to right."""
    result = []
    for _, node in walk(expr):
        if not node.children():
            result.append(node)
    return result
