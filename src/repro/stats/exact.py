"""Exact statistics from a simulated server (oracle).

Bypasses the network model entirely: iterates every resource the server
holds (using the generator-recorded page-scheme tags) and wraps it.  Used to
validate the crawler's estimates and to reproduce the paper's worked cost
numbers without sampling noise.
"""

from __future__ import annotations

from repro.adm.scheme import WebScheme
from repro.stats.statistics import SiteStatistics, StatsCollector
from repro.web.server import SimulatedWebServer
from repro.wrapper.wrapper import WrapperRegistry

__all__ = ["exact_statistics"]


def exact_statistics(
    scheme: WebScheme,
    server: SimulatedWebServer,
    registry: WrapperRegistry,
) -> SiteStatistics:
    """Wrap every served page and build exact statistics."""
    collector = StatsCollector()
    for url in server.urls():
        resource = server.resource(url)
        if not resource.page_scheme or resource.page_scheme not in scheme.page_schemes:
            continue
        plain = registry.wrap(resource.page_scheme, url, resource.html)
        collector.observe(
            resource.page_scheme, plain, byte_size=len(resource.html)
        )
    return collector.build()
