"""Crawl-based statistics estimation (the paper's WebSQL exploration).

:class:`SiteExplorer` breadth-first crawls a site from its entry points,
wrapping every page it reaches and feeding the observations to a
:class:`~repro.stats.statistics.StatsCollector`.  The crawl uses its own
client, so its network cost is accounted separately from query execution —
the paper assumes statistics "have been initially estimated ... and are
updated on a regular basis", i.e. amortized outside query cost.

``max_pages`` bounds the crawl; a partial crawl yields *estimates* (pages
of a scheme seen so far, average list sizes over the sample) that the cost
model can still consume — the optimizer degrades gracefully with stale or
sampled statistics, which the sensitivity benchmark exercises.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.adm.links import iter_outlinks
from repro.adm.scheme import WebScheme
from repro.errors import ResourceNotFound, WrapperError
from repro.stats.statistics import SiteStatistics, StatsCollector
from repro.web.client import WebClient
from repro.web.server import SimulatedWebServer
from repro.wrapper.wrapper import WrapperRegistry

__all__ = ["SiteExplorer", "estimate_statistics"]


class SiteExplorer:
    """BFS crawler that estimates the Section 6.2 parameters."""

    def __init__(
        self,
        scheme: WebScheme,
        client: WebClient,
        registry: WrapperRegistry,
    ):
        self.scheme = scheme
        self.client = client
        self.registry = registry

    def explore(self, max_pages: Optional[int] = None) -> SiteStatistics:
        """Crawl from the entry points and build statistics.

        Pages that fail to download or wrap are skipped (real sites have
        dead links and irregular pages).
        """
        collector = StatsCollector()
        queue: deque = deque(
            (ep.scheme, ep.url) for ep in self.scheme.entry_points.values()
        )
        visited: set[str] = set()
        while queue:
            if max_pages is not None and len(visited) >= max_pages:
                break
            page_scheme, url = queue.popleft()
            if url in visited:
                continue
            visited.add(url)
            try:
                resource = self.client.get(url)
                plain = self.registry.wrap(page_scheme, url, resource.html)
            except (ResourceNotFound, WrapperError):
                continue
            collector.observe(
                page_scheme, plain, byte_size=len(resource.html)
            )
            for target_scheme, target_url in iter_outlinks(
                self.scheme, page_scheme, plain
            ):
                if target_url not in visited:
                    queue.append((target_scheme, target_url))
        return collector.build()


def estimate_statistics(
    scheme: WebScheme,
    server: SimulatedWebServer,
    registry: WrapperRegistry,
    max_pages: Optional[int] = None,
) -> SiteStatistics:
    """One-call crawl with a dedicated client."""
    explorer = SiteExplorer(scheme, WebClient(server), registry)
    return explorer.explore(max_pages=max_pages)
