"""The statistics container and the observation collector.

Statistics are keyed by *(base page-scheme, attribute path)* — the cost
model reaches them through the provenance carried on every schema field, so
estimates work at any depth of an algebraic expression.

Derived parameters follow Section 6.2 exactly:

* selectivity ``s_A = 1 / c_A``;
* repetition ``r_A = |μ_A(P)| / c_A`` where ``|μ_A(P)|`` is the cardinality
  of ``P`` unnested down to ``A``'s level (``|P|`` for top-level attributes,
  ``|P|·|L|`` for attributes one list deep, and so on);
* join selectivity ``σ = 1 / max(c_left, c_right)`` unless an explicit
  override was recorded.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.adm.page_scheme import AttrPath, URL_ATTR
from repro.errors import StatisticsError

__all__ = ["SiteStatistics", "StatsCollector"]

Key = tuple  # (scheme_name, path_string)


def _key(scheme: str, path: AttrPath | str) -> Key:
    return (scheme, str(path))


@dataclass
class SiteStatistics:
    """Quantitative description of a site instance."""

    scheme_cards: dict = field(default_factory=dict)      # scheme -> |P|
    list_sizes: dict = field(default_factory=dict)        # key -> avg |L|
    distinct_counts: dict = field(default_factory=dict)   # key -> c_A
    join_overrides: dict = field(default_factory=dict)    # (key, key) -> sel
    page_bytes: dict = field(default_factory=dict)        # scheme -> avg size

    # ------------------------------------------------------------------ #
    # base parameters
    # ------------------------------------------------------------------ #

    def card(self, scheme: str) -> float:
        """|P| — number of pages of ``scheme``."""
        try:
            return float(self.scheme_cards[scheme])
        except KeyError:
            raise StatisticsError(
                f"no cardinality for page-scheme {scheme!r}"
            ) from None

    def avg_page_bytes(self, scheme: str) -> float:
        """Average HTML size of a page of ``scheme`` (footnote 8: the cost
        model 'can be made more accurate by taking into account ... the
        size of pages')."""
        try:
            return float(self.page_bytes[scheme])
        except KeyError:
            raise StatisticsError(
                f"no page-size statistic for page-scheme {scheme!r}"
            ) from None

    def avg_list(self, scheme: str, path: AttrPath | str) -> float:
        """|L| — average number of items of list attribute ``path``."""
        try:
            return float(self.list_sizes[_key(scheme, path)])
        except KeyError:
            raise StatisticsError(
                f"no list-size statistic for {scheme}.{path}"
            ) from None

    def distinct(self, scheme: str, path: AttrPath | str) -> float:
        """c_A — number of distinct values of attribute ``path``."""
        if str(path) == URL_ATTR:
            return self.card(scheme)  # URL is a key
        try:
            return float(self.distinct_counts[_key(scheme, path)])
        except KeyError:
            raise StatisticsError(
                f"no distinct-count statistic for {scheme}.{path}"
            ) from None

    # ------------------------------------------------------------------ #
    # derived parameters (Section 6.2, items e and f)
    # ------------------------------------------------------------------ #

    def unnested_card(self, scheme: str, path: AttrPath | str) -> float:
        """|μ_A(P)| — cardinality of P unnested down to A's nesting level."""
        if isinstance(path, str):
            path = AttrPath.parse(path)
        total = self.card(scheme)
        for depth in range(1, len(path.steps)):
            prefix = AttrPath(path.steps[:depth])
            total *= self.avg_list(scheme, prefix)
        return total

    def selectivity(self, scheme: str, path: AttrPath | str) -> float:
        """s_A = 1 / c_A."""
        c = self.distinct(scheme, path)
        return 1.0 / c if c else 1.0

    def repetition(self, scheme: str, path: AttrPath | str) -> float:
        """r_A = |μ_A(P)| / c_A (average repetitions of each value)."""
        c = self.distinct(scheme, path)
        if not c:
            return 1.0
        return max(1.0, self.unnested_card(scheme, path) / c)

    def join_selectivity(
        self,
        left_scheme: str,
        left_path: AttrPath | str,
        right_scheme: str,
        right_path: AttrPath | str,
    ) -> float:
        """σ_{A,P1,P2} — defaults to 1/max(c_left, c_right)."""
        override = self.join_overrides.get(
            (_key(left_scheme, left_path), _key(right_scheme, right_path))
        )
        if override is None:
            override = self.join_overrides.get(
                (_key(right_scheme, right_path), _key(left_scheme, left_path))
            )
        if override is not None:
            return float(override)
        c_left = self.distinct(left_scheme, left_path)
        c_right = self.distinct(right_scheme, right_path)
        top = max(c_left, c_right)
        return 1.0 / top if top else 1.0

    def describe(self) -> str:
        """Human-readable dump of all recorded parameters."""
        lines = ["site statistics:"]
        for scheme in sorted(self.scheme_cards):
            lines.append(f"  |{scheme}| = {self.scheme_cards[scheme]}")
        for (scheme, path), size in sorted(self.list_sizes.items()):
            lines.append(f"  |{scheme}.{path}| = {size:.2f} items avg")
        for (scheme, path), count in sorted(self.distinct_counts.items()):
            lines.append(f"  c({scheme}.{path}) = {count}")
        return "\n".join(lines)


class StatsCollector:
    """Accumulates per-page observations into a :class:`SiteStatistics`.

    Feed it ``observe(page_scheme, plain_tuple)`` for every page seen (the
    crawler and the exact oracle both do this) and call :meth:`build`.
    """

    def __init__(self):
        self._page_counts: dict[str, int] = {}
        self._list_totals: dict[Key, int] = {}
        self._list_pages: dict[Key, int] = {}
        self._values: dict[Key, set] = {}
        self._byte_totals: dict[str, int] = {}

    def observe(
        self, page_scheme: str, plain: dict, byte_size: int = 0
    ) -> None:
        self._page_counts[page_scheme] = self._page_counts.get(page_scheme, 0) + 1
        self._byte_totals[page_scheme] = (
            self._byte_totals.get(page_scheme, 0) + byte_size
        )
        self._observe_fields(page_scheme, (), plain)

    def _observe_fields(self, scheme: str, prefix: tuple, row: dict) -> None:
        for name, value in row.items():
            if name == URL_ATTR and not prefix:
                continue
            path = prefix + (name,)
            key = (scheme, ".".join(path))
            if isinstance(value, list):
                # |L| averages item counts over every occurrence of the list
                self._list_totals[key] = self._list_totals.get(key, 0) + len(value)
                self._list_pages[key] = self._list_pages.get(key, 0) + 1
                for sub in value:
                    self._observe_fields(scheme, path, sub)
            else:
                if value is not None:
                    self._values.setdefault(key, set()).add(value)

    def build(self) -> SiteStatistics:
        stats = SiteStatistics()
        stats.scheme_cards = dict(self._page_counts)
        for key, total in self._list_totals.items():
            pages = self._list_pages.get(key, 0)
            stats.list_sizes[key] = total / pages if pages else 0.0
        for key, values in self._values.items():
            stats.distinct_counts[key] = len(values)
        for scheme, total in self._byte_totals.items():
            count = self._page_counts.get(scheme, 0)
            if count:
                stats.page_bytes[scheme] = total / count
        return stats
