"""Site statistics for the cost model (paper, Section 6.2).

The cost function assumes "the knowledge of several quantitative parameters
that describe data distribution in the site ... initially estimated
exploring the site by means of a tool such as WebSQL":

(a) ``|P|`` — page-scheme cardinality;
(b) ``|L|`` — average number of items in nested attribute L;
(c) ``c_A`` — number of distinct values for attribute A;
(d) join selectivities (derived from the distinct counts by default).

:class:`~repro.stats.statistics.SiteStatistics` stores them;
:class:`~repro.stats.estimator.SiteExplorer` estimates them by crawling (our
stand-in for WebSQL exploration); :mod:`repro.stats.exact` computes them
exactly from a simulated server (the oracle used to validate the
estimator and to reproduce the paper's formulas precisely).
"""

from repro.stats.statistics import SiteStatistics, StatsCollector
from repro.stats.estimator import SiteExplorer, estimate_statistics
from repro.stats.exact import exact_statistics

__all__ = [
    "SiteStatistics",
    "StatsCollector",
    "SiteExplorer",
    "estimate_statistics",
    "exact_statistics",
]
