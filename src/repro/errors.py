"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish model errors (bad schemes), algebra errors
(ill-typed expressions), wrapper errors (unparseable pages) and network
errors (missing resources).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SchemeError",
    "ConstraintError",
    "SchemaError",
    "PNFError",
    "AlgebraError",
    "NotComputableError",
    "PredicateError",
    "WrapperError",
    "ExtractionError",
    "WebError",
    "ResourceNotFound",
    "FetchError",
    "TransientFetchError",
    "RetriesExhaustedError",
    "StatisticsError",
    "MetricCardinalityError",
    "JournalError",
    "ExecutionModeError",
    "OptionsError",
    "AdmissionRejected",
    "OptimizerError",
    "QueryError",
    "ParseError",
    "MaterializationError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemeError(ReproError):
    """An ADM web scheme is malformed (unknown page-scheme, bad link, ...)."""


class ConstraintError(SchemeError):
    """A link or inclusion constraint references attributes that do not exist
    or do not have the required types."""


class SchemaError(ReproError):
    """A relation schema is malformed or an operation references an unknown
    attribute."""


class PNFError(SchemaError):
    """A nested relation violates Partitioned Normal Form."""


class AlgebraError(ReproError):
    """A navigational-algebra expression is ill-formed."""


class NotComputableError(AlgebraError):
    """An expression was asked to execute against the web but has leaves that
    are not entry points (paper, Section 4)."""


class PredicateError(AlgebraError):
    """A predicate references attributes missing from its input schema."""


class WrapperError(ReproError):
    """A page could not be wrapped into a nested tuple."""


class ExtractionError(WrapperError):
    """A specific extraction rule failed against a page's DOM."""


class WebError(ReproError):
    """Base class for simulated-network failures."""


class ResourceNotFound(WebError):
    """A GET or HEAD was issued for a URL the server does not serve."""

    def __init__(self, url: str):
        super().__init__(f"no resource at URL {url!r}")
        self.url = url


class FetchError(WebError):
    """A page could not be fetched over the (simulated) network."""


class TransientFetchError(FetchError):
    """One fetch attempt failed with a retryable condition: a timeout or a
    5xx-style server error, as injected by a
    :class:`~repro.web.server.FaultPolicy`."""

    def __init__(self, url: str, kind: str = "timeout", attempt: int = 1):
        super().__init__(
            f"transient {kind} fetching {url!r} (attempt {attempt})"
        )
        self.url = url
        self.kind = kind
        self.attempt = attempt


class RetriesExhaustedError(FetchError):
    """Every attempt allowed by the :class:`~repro.web.client.RetryPolicy`
    failed transiently; the fetch is given up."""

    def __init__(self, url: str, attempts: int, last: Exception | None = None):
        super().__init__(f"giving up on {url!r} after {attempts} attempts")
        self.url = url
        self.attempts = attempts
        self.last = last


class StatisticsError(ReproError):
    """Site statistics are missing a parameter required by the cost model."""


class MetricCardinalityError(ReproError, ValueError):
    """A metric instrument was asked to create more label series than its
    configured bound allows.  Unbounded label cardinality (a URL or a
    request id used as a label) silently turns a fixed-size registry into
    a memory leak, so the guard fails loudly instead.

    Doubles as a :class:`ValueError` (like :class:`ExecutionModeError`) so
    generic configuration validators keep working."""

    def __init__(self, name: str, limit: int):
        super().__init__(
            f"metric {name!r} exceeded its label-cardinality bound "
            f"({limit} series); use a lower-cardinality label"
        )
        self.metric = name
        self.limit = limit


class JournalError(ReproError):
    """An event journal is unreadable, fails correlation-id validation,
    or cannot reconstruct the request a replay asked for."""


class ExecutionModeError(ReproError, ValueError):
    """An ``execution=`` argument named an unknown mode.

    Doubles as a :class:`ValueError` (mirroring the
    ``FetchConfig.max_workers`` validation) so callers that validate
    configuration generically keep working."""


class OptionsError(ReproError, ValueError):
    """A :class:`~repro.options.QueryOptions` bundle is invalid, cannot be
    serialized, or was combined with conflicting legacy keyword arguments.

    Doubles as a :class:`ValueError` (like :class:`ExecutionModeError`) so
    generic configuration validators keep working."""


class AdmissionRejected(ReproError):
    """The multi-query server's bounded admission queue is full (or the
    server is closed); the request was refused without being enqueued.
    Back off and resubmit — nothing was executed on the request's behalf."""


class OptimizerError(ReproError):
    """The optimizer could not produce a plan (e.g. no default navigation)."""


class QueryError(ReproError):
    """A conjunctive query is malformed with respect to the external view."""


class ParseError(QueryError):
    """The SQL-ish conjunctive query text could not be parsed."""


class MaterializationError(ReproError):
    """The materialized store is inconsistent with the requested operation."""
