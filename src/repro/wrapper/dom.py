"""A minimal DOM built on the standard library's :mod:`html.parser`.

Provides just enough to support the extraction specs: an element tree with
tags, attributes, text, and selector-based querying.  Selectors support the
subset ``tag.class[attr=value]`` (each part optional), which is all the
conventions in :mod:`repro.wrapper.conventions` need — hand-written specs
for irregular sites can combine several selectors and scoped searches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from html.parser import HTMLParser
from typing import Iterator, Optional

from repro.errors import WrapperError

__all__ = ["Node", "parse_html", "Selector"]

#: Elements that never have closing tags.
VOID_ELEMENTS = frozenset(
    {"area", "base", "br", "col", "embed", "hr", "img", "input",
     "link", "meta", "source", "track", "wbr"}
)


@dataclass
class Node:
    """An element (or the synthetic ``#root``) of the parsed document."""

    tag: str
    attrs: dict = field(default_factory=dict)
    children: list = field(default_factory=list)  # Node or str (text)
    parent: Optional["Node"] = None

    # ------------------------------------------------------------------ #
    # content
    # ------------------------------------------------------------------ #

    @property
    def classes(self) -> frozenset:
        return frozenset((self.attrs.get("class") or "").split())

    def text(self) -> str:
        """All descendant text, whitespace-normalised."""
        parts: list[str] = []

        def walk(node: "Node") -> None:
            for child in node.children:
                if isinstance(child, str):
                    parts.append(child)
                else:
                    walk(child)

        walk(self)
        return " ".join(" ".join(parts).split())

    def own_text(self) -> str:
        """Direct text children only, whitespace-normalised."""
        parts = [c for c in self.children if isinstance(c, str)]
        return " ".join(" ".join(parts).split())

    # ------------------------------------------------------------------ #
    # traversal
    # ------------------------------------------------------------------ #

    def element_children(self) -> list["Node"]:
        return [c for c in self.children if isinstance(c, Node)]

    def descendants(self, prune: Optional["Selector"] = None) -> Iterator["Node"]:
        """Depth-first descendants.  When ``prune`` is given, nodes matching
        it are yielded but not descended into (scoped search boundaries)."""
        for child in self.element_children():
            yield child
            if prune is not None and prune.matches(child):
                continue
            yield from child.descendants(prune)

    def find_all(
        self, selector: "Selector", prune: Optional["Selector"] = None
    ) -> list["Node"]:
        """All descendants matching ``selector`` (not descending past
        ``prune`` matches, when given)."""
        return [n for n in self.descendants(prune) if selector.matches(n)]

    def find(
        self, selector: "Selector", prune: Optional["Selector"] = None
    ) -> Optional["Node"]:
        """First descendant matching ``selector`` or None."""
        for node in self.descendants(prune):
            if selector.matches(node):
                return node
        return None

    def __repr__(self) -> str:
        attrs = "".join(f" {k}={v!r}" for k, v in self.attrs.items())
        return f"<{self.tag}{attrs} ({len(self.children)} children)>"


@dataclass(frozen=True)
class Selector:
    """A ``tag.class[attr=value]`` selector (every component optional).

    >>> sel = Selector.parse("span.attr[data-attr=DName]")
    >>> sel.tag, sorted(sel.classes), sel.attr_equals
    ('span', ['attr'], ('data-attr', 'DName'))
    """

    tag: Optional[str] = None
    classes: frozenset = frozenset()
    attr_equals: Optional[tuple] = None  # (attr_name, value)

    @classmethod
    def parse(cls, text: str) -> "Selector":
        text = text.strip()
        if not text:
            raise WrapperError("empty selector")
        attr_equals = None
        if "[" in text:
            head, _, bracket = text.partition("[")
            if not bracket.endswith("]"):
                raise WrapperError(f"unterminated attribute selector in {text!r}")
            inner = bracket[:-1]
            name, sep, value = inner.partition("=")
            if not sep:
                raise WrapperError(f"attribute selector needs '=': {text!r}")
            attr_equals = (name.strip(), value.strip().strip("'\""))
            text = head
        parts = text.split(".")
        tag = parts[0] or None
        classes = frozenset(p for p in parts[1:] if p)
        return cls(tag=tag, classes=classes, attr_equals=attr_equals)

    def matches(self, node: Node) -> bool:
        if self.tag is not None and node.tag != self.tag:
            return False
        if self.classes and not self.classes <= node.classes:
            return False
        if self.attr_equals is not None:
            name, value = self.attr_equals
            if node.attrs.get(name) != value:
                return False
        return True

    def __str__(self) -> str:
        text = self.tag or ""
        text += "".join(f".{c}" for c in sorted(self.classes))
        if self.attr_equals:
            text += f"[{self.attr_equals[0]}={self.attr_equals[1]}]"
        return text


class _TreeBuilder(HTMLParser):
    """html.parser handler that assembles the Node tree."""

    def __init__(self) -> None:
        super().__init__(convert_charrefs=True)
        self.root = Node("#root")
        self._stack = [self.root]

    def handle_starttag(self, tag: str, attrs) -> None:
        node = Node(tag, dict(attrs), parent=self._stack[-1])
        self._stack[-1].children.append(node)
        if tag not in VOID_ELEMENTS:
            self._stack.append(node)

    def handle_startendtag(self, tag: str, attrs) -> None:
        node = Node(tag, dict(attrs), parent=self._stack[-1])
        self._stack[-1].children.append(node)

    def handle_endtag(self, tag: str) -> None:
        # tolerate unbalanced markup: pop to the nearest matching open tag
        for i in range(len(self._stack) - 1, 0, -1):
            if self._stack[i].tag == tag:
                del self._stack[i:]
                return

    def handle_data(self, data: str) -> None:
        if data.strip():
            self._stack[-1].children.append(data)


def parse_html(html: str) -> Node:
    """Parse an HTML document into a :class:`Node` tree (root is ``#root``)."""
    builder = _TreeBuilder()
    builder.feed(html)
    builder.close()
    return builder.root
