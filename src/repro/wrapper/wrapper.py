"""Page wrappers: apply an extraction spec and type-check the result.

:class:`PageWrapper` turns one page's HTML into the nested tuple demanded by
its page-scheme: extraction per the spec, link resolution (relative hrefs
are resolved against the page URL), and a structural check that the result
matches the page-scheme's web types.  :class:`WrapperRegistry` keeps one
wrapper per page-scheme and is what the executors carry around.
"""

from __future__ import annotations

from typing import Optional
from urllib.parse import urljoin

from repro.adm.page_scheme import PageScheme, URL_ATTR
from repro.adm.webtypes import LinkType, ListType, WebType
from repro.errors import WrapperError
from repro.wrapper.dom import parse_html
from repro.wrapper.spec import ExtractionSpec

__all__ = ["PageWrapper", "WrapperRegistry"]


class PageWrapper:
    """Wraps pages of one page-scheme into nested tuples."""

    def __init__(self, page_scheme: PageScheme, spec: ExtractionSpec):
        if spec.page_scheme != page_scheme.name:
            raise WrapperError(
                f"spec is for {spec.page_scheme!r}, not {page_scheme.name!r}"
            )
        self.page_scheme = page_scheme
        self.spec = spec

    def wrap(self, url: str, html: str) -> dict:
        """Extract the nested tuple for the page at ``url``.

        The returned dict is keyed by *plain* attribute names and includes
        the implicit ``URL`` attribute.  Link values are absolute URLs.
        """
        root = parse_html(html)
        raw = self.spec.extract(root)
        row = {URL_ATTR: url}
        for attr in self.page_scheme.attributes:
            if attr.name not in raw:
                raise WrapperError(
                    f"{self.page_scheme.name}: spec produced no value for "
                    f"{attr.name!r}"
                )
            row[attr.name] = self._coerce(attr.name, attr.wtype, raw[attr.name], url)
        return row

    def _coerce(self, name: str, wtype: WebType, value, base_url: str):
        if isinstance(wtype, ListType):
            if not isinstance(value, list):
                raise WrapperError(
                    f"{self.page_scheme.name}.{name}: expected a list, "
                    f"got {type(value).__name__}"
                )
            rows = []
            for sub in value:
                row = {}
                for fname, ftype in wtype.fields:
                    if fname not in sub:
                        raise WrapperError(
                            f"{self.page_scheme.name}.{name}: item lacks "
                            f"field {fname!r}"
                        )
                    row[fname] = self._coerce(
                        f"{name}.{fname}", ftype, sub[fname], base_url
                    )
                rows.append(row)
            return rows
        if value is None:
            if isinstance(wtype, LinkType) and not wtype.optional:
                raise WrapperError(
                    f"{self.page_scheme.name}.{name}: non-optional link is null"
                )
            return None
        if isinstance(value, list):
            raise WrapperError(
                f"{self.page_scheme.name}.{name}: expected an atom, got a list"
            )
        if isinstance(wtype, LinkType):
            return urljoin(base_url, value)
        return value


class WrapperRegistry:
    """One wrapper per page-scheme; raises for unknown schemes."""

    def __init__(self, wrappers: Optional[dict[str, PageWrapper]] = None):
        self._wrappers: dict[str, PageWrapper] = dict(wrappers or {})

    def register(self, wrapper: PageWrapper) -> None:
        self._wrappers[wrapper.page_scheme.name] = wrapper

    def wrapper(self, page_scheme: str) -> PageWrapper:
        try:
            return self._wrappers[page_scheme]
        except KeyError:
            raise WrapperError(
                f"no wrapper registered for page-scheme {page_scheme!r}"
            ) from None

    def wrap(self, page_scheme: str, url: str, html: str) -> dict:
        """Convenience: wrap one page of the given page-scheme."""
        return self.wrapper(page_scheme).wrap(url, html)

    def __contains__(self, page_scheme: str) -> bool:
        return page_scheme in self._wrappers

    def __len__(self) -> int:
        return len(self._wrappers)
