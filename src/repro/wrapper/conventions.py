"""Automatic extraction specs for conventionally marked-up sites.

The site generators in :mod:`repro.sitegen` emit HTML following a fixed set
of conventions (chosen to look like ordinary hand-written 1990s pages, with
``data-attr`` markers standing in for the visual regularities real wrappers
key on):

* a mono-valued text attribute ``A`` is an element with class ``attr`` and
  ``data-attr="A"`` — its text is the value;
* an image attribute ``A`` is an ``img.attr[data-attr=A]`` — its ``src`` is
  the value;
* a link attribute ``A`` is an ``a.attr[data-attr=A]`` — its ``href`` is
  the reference (the anchor text is an ordinary text attribute extracted
  separately if the scheme declares one);
* a list attribute ``L`` is a ``ul.attr-list[data-attr=L]`` container whose
  items are ``li.item`` elements; fields are extracted inside each item with
  the same rules, without descending into nested list containers.

:func:`spec_for_page_scheme` derives the :class:`ExtractionSpec` for any
page-scheme from its declared types, and :func:`registry_for_scheme` builds
the full :class:`WrapperRegistry` for a web scheme.
"""

from __future__ import annotations

from typing import Union

from repro.adm.page_scheme import PageScheme
from repro.adm.scheme import WebScheme
from repro.adm.webtypes import ImageType, LinkType, ListType, TextType, WebType
from repro.errors import WrapperError
from repro.wrapper.dom import Selector
from repro.wrapper.spec import AtomRule, ExtractionSpec, ListRule
from repro.wrapper.wrapper import PageWrapper, WrapperRegistry

__all__ = ["spec_for_page_scheme", "registry_for_scheme"]


def _rule_for(name: str, wtype: WebType) -> Union[AtomRule, ListRule]:
    if isinstance(wtype, TextType):
        return AtomRule(
            attr=name,
            selector=Selector.parse(f".attr[data-attr={name}]"),
            source="text",
        )
    if isinstance(wtype, ImageType):
        return AtomRule(
            attr=name,
            selector=Selector.parse(f"img.attr[data-attr={name}]"),
            source="src",
        )
    if isinstance(wtype, LinkType):
        return AtomRule(
            attr=name,
            selector=Selector.parse(f"a.attr[data-attr={name}]"),
            source="href",
            optional=wtype.optional,
        )
    if isinstance(wtype, ListType):
        return ListRule(
            attr=name,
            container=Selector.parse(f"ul.attr-list[data-attr={name}]"),
            item=Selector.parse("li.item"),
            rules=tuple(_rule_for(fname, ftype) for fname, ftype in wtype.fields),
        )
    raise WrapperError(f"no extraction convention for type {wtype!r}")


def spec_for_page_scheme(page_scheme: PageScheme) -> ExtractionSpec:
    """Derive the conventional extraction spec for ``page_scheme``."""
    rules = tuple(_rule_for(a.name, a.wtype) for a in page_scheme.attributes)
    return ExtractionSpec(page_scheme=page_scheme.name, rules=rules)


def registry_for_scheme(scheme: WebScheme) -> WrapperRegistry:
    """Build a registry with a conventional wrapper for every page-scheme."""
    registry = WrapperRegistry()
    for page_scheme in scheme.page_schemes.values():
        registry.register(
            PageWrapper(page_scheme, spec_for_page_scheme(page_scheme))
        )
    return registry
