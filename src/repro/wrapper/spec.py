"""Declarative extraction specs.

An :class:`ExtractionSpec` describes how to pull one nested tuple out of a
page's DOM: one rule per ADM attribute.  Two rule kinds exist:

* :class:`AtomRule` — find one element and read its text, an attribute
  (``href`` for links, ``src`` for images), or its own (non-descendant)
  text.  Optional atoms yield ``None`` when the element is absent.
* :class:`ListRule` — find a container element, iterate its item elements,
  and apply sub-rules inside each item.  List rules nest arbitrarily.

Searches inside list items are *scoped*: they never descend into nested list
containers, so inner lists can reuse attribute names without shadowing
(``prune`` below).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple, Union

from repro.errors import ExtractionError
from repro.wrapper.dom import Node, Selector

__all__ = ["AtomRule", "ListRule", "ExtractionSpec", "LIST_BOUNDARY"]

#: Nodes matching this selector delimit nested scopes: atom searches never
#: descend into them.  Generators mark every list container with this class.
LIST_BOUNDARY = Selector.parse(".attr-list")


@dataclass(frozen=True)
class AtomRule:
    """Extract a mono-valued attribute.

    ``source`` is ``"text"`` (all descendant text), ``"own-text"``, or the
    name of an HTML attribute (``"href"``, ``"src"``).
    """

    attr: str
    selector: Selector
    source: str = "text"
    optional: bool = False

    def extract(self, scope: Node) -> Optional[str]:
        node = scope.find(self.selector, prune=LIST_BOUNDARY)
        if node is None:
            if self.optional:
                return None
            raise ExtractionError(
                f"attribute {self.attr!r}: no element matches {self.selector}"
            )
        if self.source == "text":
            return node.text()
        if self.source == "own-text":
            return node.own_text()
        value = node.attrs.get(self.source)
        if value is None:
            if self.optional:
                return None
            raise ExtractionError(
                f"attribute {self.attr!r}: element lacks @{self.source}"
            )
        return value


@dataclass(frozen=True)
class ListRule:
    """Extract a multi-valued attribute: container → items → sub-rules."""

    attr: str
    container: Selector
    item: Selector
    rules: Tuple[Union["AtomRule", "ListRule"], ...] = field(default_factory=tuple)

    def extract(self, scope: Node) -> list[dict]:
        # scoped search: do not descend into other list containers, so a
        # same-named list nested inside a sibling attribute cannot shadow
        # this one (the prune still *yields* boundary nodes, so the wanted
        # container itself is found)
        container = scope.find(self.container, prune=LIST_BOUNDARY)
        if container is None:
            raise ExtractionError(
                f"list {self.attr!r}: no container matches {self.container}"
            )
        rows: list[dict] = []
        for item in container.find_all(self.item, prune=LIST_BOUNDARY):
            row = {}
            for rule in self.rules:
                row[rule.attr] = rule.extract(item)
            rows.append(row)
        return rows


@dataclass(frozen=True)
class ExtractionSpec:
    """All rules needed to wrap one page-scheme's pages."""

    page_scheme: str
    rules: Tuple[Union[AtomRule, ListRule], ...]

    def extract(self, root: Node) -> dict:
        """Apply every rule against the document root; returns the tuple
        (without the URL, which the caller knows)."""
        row = {}
        for rule in self.rules:
            try:
                row[rule.attr] = rule.extract(root)
            except ExtractionError as exc:
                raise ExtractionError(
                    f"{self.page_scheme}: {exc}"
                ) from None
        return row
