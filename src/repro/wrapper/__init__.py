"""HTML wrappers: pages → nested tuples.

The paper *assumes* suitable wrappers exist (Section 3.1, citing Minerva and
EDITOR); here we build them:

* :mod:`repro.wrapper.dom` — a small DOM over :mod:`html.parser`;
* :mod:`repro.wrapper.spec` — declarative extraction specs (selector-based
  rules mapping DOM regions to attributes);
* :mod:`repro.wrapper.wrapper` — :class:`PageWrapper` applies a spec to a
  page and yields the nested tuple; :class:`WrapperRegistry` holds one
  wrapper per page-scheme;
* :mod:`repro.wrapper.conventions` — derives a spec automatically from a
  :class:`~repro.adm.page_scheme.PageScheme` for sites emitted by
  :mod:`repro.sitegen` (hand-written specs remain possible for irregular
  sites).
"""

from repro.wrapper.dom import Node, parse_html, Selector
from repro.wrapper.spec import AtomRule, ListRule, ExtractionSpec
from repro.wrapper.wrapper import PageWrapper, WrapperRegistry
from repro.wrapper.conventions import spec_for_page_scheme, registry_for_scheme

__all__ = [
    "Node",
    "parse_html",
    "Selector",
    "AtomRule",
    "ListRule",
    "ExtractionSpec",
    "PageWrapper",
    "WrapperRegistry",
    "spec_for_page_scheme",
    "registry_for_scheme",
]
