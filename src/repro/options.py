"""The unified per-query option bundle and request envelope.

Before this module, every query entry point (`SiteEnv.query` / ``execute``
/ ``explain``, :meth:`RemoteExecutor.execute
<repro.engine.remote.RemoteExecutor.execute>`, the QA oracle, every
benchmark) copy-pasted the same six keyword arguments: ``fetch_config``,
``retry_policy``, ``cache``, ``tracer``, ``execution``, ``pipeline``.
:class:`QueryOptions` replaces that sextet with one frozen, validated
value object — a bundle is checked once at construction
(:meth:`QueryOptions.validate`, which subsumes
:func:`~repro.engine.pipeline.coerce_execution`) and then flows unchanged
through planner, executor, and the multi-query server
(:mod:`repro.server`).

:class:`QueryRequest` is the server-side envelope: a query (or a
pre-chosen plan), its options, and the submitting tenant.

:func:`coerce_options` is the single deprecation shim used by every
migrated call site: it accepts *either* an ``options=`` bundle *or* the
legacy keyword arguments (emitting one :class:`DeprecationWarning` per
call), and raises :class:`~repro.errors.OptionsError` when both forms are
mixed — conflicting configuration must never be resolved silently.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace
from typing import Any, Mapping, Optional, Union

from repro.algebra.ast import Expr
from repro.engine.pipeline import PipelineConfig, coerce_execution
from repro.errors import OptionsError
from repro.obs.journal import Journal
from repro.views.conjunctive import ConjunctiveQuery
from repro.web.cache import CachePolicy, PageCache
from repro.web.client import FetchConfig, RetryPolicy

__all__ = [
    "CacheSpec",
    "QueryOptions",
    "QueryRequest",
    "DEFAULT_OPTIONS",
    "coerce_options",
    "LEGACY_OPTION_KWARGS",
]

#: Everything a ``cache=`` argument may be: a live cache, a policy (or its
#: string name, resolved against the environment cache by ``SiteEnv``), or
#: None for "the environment / client default".
CacheSpec = Union[PageCache, CachePolicy, str, None]

#: The legacy keyword arguments subsumed by :class:`QueryOptions`, in the
#: order the old signatures declared them.
LEGACY_OPTION_KWARGS = (
    "fetch_config",
    "retry_policy",
    "cache",
    "tracer",
    "execution",
    "pipeline",
)


@dataclass(frozen=True)
class QueryOptions:
    """Everything configurable about one query execution, validated once.

    ``cache``
        A :class:`~repro.web.cache.PageCache` to use as-is, a
        :class:`~repro.web.cache.CachePolicy` (or its string name) to be
        resolved against the environment cache, or None for the default.
    ``fetch``
        :class:`~repro.web.client.FetchConfig` bounding the concurrent
        fetch pool (None: follow the network model).
    ``retry``
        :class:`~repro.web.client.RetryPolicy` for transient faults
        (None: the client's policy).
    ``execution``
        one of :data:`~repro.engine.pipeline.EXECUTION_MODES` —
        ``"staged"``, ``"pipelined"``, ``"columnar"`` (compiled batch
        kernels, staged access pattern), ``"columnar_pipelined"``, or
        ``"adaptive"`` / ``"adaptive_pipelined"`` (runtime relevance
        pruning + mid-query rule-8/9 switching, docs/ADAPTIVE.md:
        identical answers, never more pages) — validated at
        construction, so an unknown mode can never travel (this subsumes
        the old free-standing
        :func:`~repro.engine.pipeline.coerce_execution` call sites).
    ``pipeline``
        :class:`~repro.engine.pipeline.PipelineConfig` tuning chunking and
        backpressure for the pipelined modes.
    ``tracer``
        A :class:`~repro.obs.trace.RecordingTracer` (or the null tracer);
        purely observational.
    ``journal``
        A :class:`~repro.obs.journal.Journal` to receive this execution's
        event block (request / plan / spans / result with correlation
        ids); purely observational, like the tracer.  None (the default)
        journals nothing.

    Instances are frozen: derive variants with :meth:`with_cache` /
    :func:`dataclasses.replace`.
    """

    cache: CacheSpec = None
    fetch: Optional[FetchConfig] = None
    retry: Optional[RetryPolicy] = None
    execution: str = "staged"
    pipeline: Optional[PipelineConfig] = None
    tracer: Optional[Any] = None
    journal: Optional[Journal] = None

    def __post_init__(self) -> None:
        if isinstance(self.cache, str):
            try:
                policy = CachePolicy.coerce(self.cache)
            except Exception as err:
                raise OptionsError(str(err)) from None
            object.__setattr__(self, "cache", policy)
        if isinstance(self.execution, str):
            # canonicalize spelling ("Pipelined " → "pipelined") before the
            # bundle freezes; unknown modes raise in validate() below
            object.__setattr__(
                self, "execution", coerce_execution(self.execution)
            )
        self.validate()

    def validate(self) -> "QueryOptions":
        """Check every field; returns ``self`` so calls can be chained.

        This is the one validation path for CLI, QA, benchmarks, and the
        server: ``execution`` goes through
        :func:`~repro.engine.pipeline.coerce_execution` (an unknown mode
        raises :class:`~repro.errors.ExecutionModeError`), the typed
        fields are type-checked, and a non-canonical execution spelling
        (e.g. ``" Staged "``) is rejected rather than silently fixed —
        frozen bundles must already be canonical."""
        mode = coerce_execution(self.execution)
        if mode != self.execution:
            raise OptionsError(
                f"non-canonical execution mode {self.execution!r} "
                f"(use {mode!r})"
            )
        if self.fetch is not None and not isinstance(self.fetch, FetchConfig):
            raise OptionsError(
                f"fetch must be a FetchConfig or None, got {self.fetch!r}"
            )
        if self.retry is not None and not isinstance(self.retry, RetryPolicy):
            raise OptionsError(
                f"retry must be a RetryPolicy or None, got {self.retry!r}"
            )
        if self.pipeline is not None and not isinstance(
            self.pipeline, PipelineConfig
        ):
            raise OptionsError(
                f"pipeline must be a PipelineConfig or None, "
                f"got {self.pipeline!r}"
            )
        if self.cache is not None and not isinstance(
            self.cache, (PageCache, CachePolicy)
        ):
            raise OptionsError(
                f"cache must be a PageCache, CachePolicy, policy name, or "
                f"None, got {self.cache!r}"
            )
        if self.journal is not None and not isinstance(self.journal, Journal):
            raise OptionsError(
                f"journal must be a repro.obs.journal.Journal or None, "
                f"got {self.journal!r}"
            )
        return self

    # ------------------------------------------------------------------ #
    # derivation
    # ------------------------------------------------------------------ #

    def with_cache(self, cache: CacheSpec) -> "QueryOptions":
        """A copy with ``cache`` replaced (used by ``SiteEnv`` to thread
        the *resolved* cache object through planning and execution so the
        policy-name lookup happens exactly once)."""
        return replace(self, cache=cache)

    # ------------------------------------------------------------------ #
    # serialization (the server's wire shape)
    # ------------------------------------------------------------------ #

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe dict.  A live :class:`PageCache` and a tracer are
        process-local objects and refuse to serialize — callers shipping
        options across a process boundary must use policy names and attach
        tracers on the serving side."""
        if isinstance(self.cache, PageCache):
            raise OptionsError(
                "a live PageCache is not serializable; pass a cache policy "
                "name ('off', 'per_query', 'cross_query') instead"
            )
        if self.tracer is not None:
            raise OptionsError("a tracer is not serializable")
        if self.journal is not None:
            raise OptionsError(
                "a live journal is not serializable; attach journals on "
                "the serving side (ServerConfig.journal)"
            )
        return {
            "cache": self.cache.value if isinstance(self.cache, CachePolicy)
            else None,
            "fetch": None if self.fetch is None
            else {"max_workers": self.fetch.max_workers},
            "retry": None if self.retry is None
            else {
                "max_attempts": self.retry.max_attempts,
                "backoff_seconds": self.retry.backoff_seconds,
                "backoff_factor": self.retry.backoff_factor,
            },
            "execution": self.execution,
            "pipeline": None if self.pipeline is None
            else {
                "chunk_size": self.pipeline.chunk_size,
                "max_inflight_batches": self.pipeline.max_inflight_batches,
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "QueryOptions":
        """Inverse of :meth:`to_dict` (unknown keys raise, so a typo'd
        field can never be dropped silently)."""
        known = {"cache", "fetch", "retry", "execution", "pipeline"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise OptionsError(
                f"unknown QueryOptions fields {unknown} "
                f"(expected a subset of {sorted(known)})"
            )
        fetch = data.get("fetch")
        retry = data.get("retry")
        pipeline = data.get("pipeline")
        try:
            return cls(
                cache=data.get("cache"),
                fetch=None if fetch is None else FetchConfig(**fetch),
                retry=None if retry is None else RetryPolicy(**retry),
                execution=data.get("execution", "staged"),
                pipeline=None if pipeline is None
                else PipelineConfig(**pipeline),
            )
        except TypeError as err:
            raise OptionsError(f"bad QueryOptions payload: {err}") from None


#: The all-defaults bundle (staged execution, client-default everything).
DEFAULT_OPTIONS = QueryOptions()


@dataclass(frozen=True)
class QueryRequest:
    """One unit of work for the multi-query server.

    ``query`` is conjunctive SQL text or a parsed
    :class:`~repro.views.conjunctive.ConjunctiveQuery`; alternatively a
    pre-chosen ``plan`` (an algebra :class:`~repro.algebra.ast.Expr`)
    skips planning — the QA oracle uses this to push a *specific*
    candidate plan through the server.  ``tenant`` feeds the server's
    fair scheduler; ``options`` defaults to the server's configured
    bundle."""

    query: Union[str, ConjunctiveQuery, None] = None
    options: Optional[QueryOptions] = None
    tenant: str = "default"
    plan: Optional[Expr] = None

    def __post_init__(self) -> None:
        if self.query is None and self.plan is None:
            raise OptionsError("a QueryRequest needs a query or a plan")
        if self.query is not None and not isinstance(
            self.query, (str, ConjunctiveQuery)
        ):
            raise OptionsError(
                f"query must be SQL text or a ConjunctiveQuery, "
                f"got {self.query!r}"
            )
        if self.plan is not None and not isinstance(self.plan, Expr):
            raise OptionsError(f"plan must be an Expr, got {self.plan!r}")
        if self.options is not None and not isinstance(
            self.options, QueryOptions
        ):
            raise OptionsError(
                f"options must be a QueryOptions, got {self.options!r}"
            )
        if not self.tenant or not isinstance(self.tenant, str):
            raise OptionsError(f"tenant must be a non-empty string, "
                               f"got {self.tenant!r}")


def coerce_options(
    options: Optional[QueryOptions] = None,
    *,
    fetch_config: Optional[FetchConfig] = None,
    retry_policy: Optional[RetryPolicy] = None,
    cache: CacheSpec = None,
    tracer: Optional[Any] = None,
    execution: Optional[str] = None,
    pipeline: Optional[PipelineConfig] = None,
    stacklevel: int = 3,
) -> QueryOptions:
    """The one legacy-kwargs shim shared by every migrated entry point.

    * ``options=`` alone → returned as-is (already validated; its type is
      still checked so a stray dict fails loudly).
    * legacy kwargs alone → one :class:`DeprecationWarning` (per call, not
      per kwarg), then coerced into a validated :class:`QueryOptions`.
    * both → :class:`~repro.errors.OptionsError`; mixing the forms is a
      conflict the caller must resolve, never the library.
    * neither → :data:`DEFAULT_OPTIONS`.

    ``stacklevel`` points the warning at the *user's* call site (the
    default of 3 assumes one wrapper frame: user → ``SiteEnv.query`` →
    here)."""
    legacy: dict[str, Any] = {}
    for name, value in (
        ("fetch_config", fetch_config),
        ("retry_policy", retry_policy),
        ("cache", cache),
        ("tracer", tracer),
        ("execution", execution),
        ("pipeline", pipeline),
    ):
        if value is not None:
            legacy[name] = value
    if options is not None:
        if legacy:
            raise OptionsError(
                f"pass options= or the legacy keyword arguments, not both "
                f"(got options= together with {sorted(legacy)})"
            )
        if not isinstance(options, QueryOptions):
            raise OptionsError(
                f"options must be a QueryOptions, got {options!r}"
            )
        return options
    if not legacy:
        return DEFAULT_OPTIONS
    warnings.warn(
        f"the {', '.join(sorted(legacy))} keyword argument(s) are "
        "deprecated; pass options=QueryOptions(...) instead "
        "(the legacy-kwargs shim is scheduled for removal in 2.0)",
        DeprecationWarning,
        stacklevel=stacklevel,
    )
    return QueryOptions(
        cache=cache,
        fetch=fetch_config,
        retry=retry_policy,
        execution="staged" if execution is None else execution,
        pipeline=pipeline,
        tracer=tracer,
    )
