"""The multi-query server: admission, fair scheduling, shared work.

:class:`QueryServer` drives a :class:`~repro.sites.SiteEnv` with a pool of
worker threads, turning the single-query library into a concurrent query
service:

* **Bounded admission** — :meth:`QueryServer.submit` refuses work beyond
  ``ServerConfig.max_queue`` pending requests
  (:class:`~repro.errors.AdmissionRejected`), so a burst degrades into
  fast rejections instead of unbounded queue growth.
* **Per-tenant fairness** — pending requests queue per tenant; workers
  dequeue round-robin across tenants in first-submission order, so one
  chatty tenant cannot starve the rest (with one worker the service order
  is exactly the round-robin interleaving — the conformance tests pin
  this).
* **Plan-level shared work** — each planned query is decomposed into
  navigation prefixes (:func:`~repro.server.prefix.navigation_prefixes`);
  the shared :class:`~repro.server.prefix.SharedNavigator` evaluates each
  distinct prefix once and the page batch is fanned out to every
  subscribed query via session seeding, which records the hand-off in the
  per-query ``pages_shared`` counter.

Every query executes on its **own** client clone (shared simulated server
and network model, private :class:`~repro.web.client.AccessLog`), so
per-query accounting is exact under concurrency and, because injected
prefix pages remove those URLs from the query's own fetch set, fully
deterministic: a query's log depends only on which prefix pages it was
handed, never on thread interleaving.

:meth:`QueryServer.serve` runs a *cohort*: plan every request first,
pre-resolve all distinct prefixes serially (in first-appearance order),
then dispatch the queries over the pool.  Every query is then a sharing
follower, which makes the whole cohort's accounting — navigator log
included — bit-for-bit reproducible; the benchmark regression gate relies
on this.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass, replace
from typing import Optional, Sequence

from repro.engine.remote import ExecutionResult, RemoteExecutor
from repro.errors import AdmissionRejected, OptionsError
from repro.obs.journal import Journal
from repro.obs.metrics import METRICS
from repro.obs.progress import ProgressBoard, QueryProgress, operator_estimates
from repro.obs.trace import NULL_TRACER
from repro.options import DEFAULT_OPTIONS, QueryOptions, QueryRequest
from repro.materialized.advisor import WorkloadQuery
from repro.server.prefix import (
    PrefixSignature,
    SharedNavigator,
    navigation_prefixes,
)
from repro.server.warmup import WarmupReport, warm_cache
from repro.sites import SiteEnv
from repro.web.client import AccessLog, WebClient
from repro.web.resources import WebResource

__all__ = [
    "ServerConfig",
    "QueryOutcome",
    "Ticket",
    "ServerStatus",
    "QueryServer",
    "execute_shared",
    "SharedExecution",
]


@dataclass(frozen=True)
class ServerConfig:
    """Tuning knobs for one :class:`QueryServer`.

    ``max_workers`` bounds concurrent query execution; ``max_queue``
    bounds *pending* (admitted, not yet started) requests; a submit
    beyond it raises :class:`~repro.errors.AdmissionRejected`.
    ``share_plans`` toggles plan-level prefix sharing (off: every query
    fetches for itself — the serial-equivalent baseline).
    ``default_options`` applies to requests that carry none.
    ``journal`` attaches a server-wide event journal: every request that
    does not bring its own journal records its correlated event block
    (request / plan / spans / result) there, stamped with the request's
    server-allocated ``request_id``."""

    max_workers: int = 4
    max_queue: int = 64
    share_plans: bool = True
    default_options: QueryOptions = DEFAULT_OPTIONS
    journal: Optional[Journal] = None

    def __post_init__(self) -> None:
        if self.max_workers < 1:
            raise OptionsError(
                f"max_workers must be >= 1, got {self.max_workers}"
            )
        if self.max_queue < 1:
            raise OptionsError(f"max_queue must be >= 1, got {self.max_queue}")
        if not isinstance(self.default_options, QueryOptions):
            raise OptionsError(
                f"default_options must be a QueryOptions, "
                f"got {self.default_options!r}"
            )
        if self.journal is not None and not isinstance(self.journal, Journal):
            raise OptionsError(
                f"journal must be a repro.obs.journal.Journal or None, "
                f"got {self.journal!r}"
            )


@dataclass
class QueryOutcome:
    """Everything the server knows about one finished request.

    ``sequence`` is the dequeue order (global, 0-based) — the observable
    trace of the fair scheduler.  ``signatures`` lists the navigation
    prefixes this query subscribed to (empty: sharing off, no pure
    prefix, or navigator fault fallback).  ``pages_shared`` is the number
    of live pages the navigator handed this query for free; the
    attribution law ``own pages + pages_shared == solo pages`` holds for
    cache-cold runs.  ``queued_seconds`` is real wall-clock queue time
    (observational only — simulated time lives in the logs)."""

    request: QueryRequest
    tenant: str
    sequence: int
    result: Optional[ExecutionResult] = None
    error: Optional[BaseException] = None
    signatures: tuple[PrefixSignature, ...] = ()
    queued_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def pages_shared(self) -> int:
        return self.result.log.pages_shared if self.result else 0


class Ticket:
    """Claim check for a submitted request; resolves to a
    :class:`QueryOutcome` when a worker finishes it.

    ``request_id`` is the server-allocated correlation id (also the key
    of the request's block in the server journal); :meth:`progress` is a
    live, monotone view of the request's per-operator completion."""

    def __init__(
        self,
        request_id: str = "",
        board: Optional[ProgressBoard] = None,
    ) -> None:
        self.request_id = request_id
        self._board = board
        self._done = threading.Event()
        self._outcome: Optional[QueryOutcome] = None

    def _resolve(self, outcome: QueryOutcome) -> None:
        self._outcome = outcome
        self._done.set()

    def done(self) -> bool:
        return self._done.is_set()

    def outcome(self, timeout: Optional[float] = None) -> QueryOutcome:
        """Block until the request finishes; the outcome, error included."""
        if not self._done.wait(timeout):
            raise TimeoutError("query is still pending")
        assert self._outcome is not None
        return self._outcome

    def result(self, timeout: Optional[float] = None) -> ExecutionResult:
        """Block until the request finishes; re-raises its error."""
        outcome = self.outcome(timeout)
        if outcome.error is not None:
            raise outcome.error
        assert outcome.result is not None
        return outcome.result

    def progress(self) -> QueryProgress:
        """Live completion snapshot for this request.

        The fraction is monotone non-decreasing over the request's
        lifetime and pins to 1.0 once the ticket resolves (error or not);
        before the worker picks the request up it reports 0.0."""
        if self._board is not None:
            snapshot = self._board.progress(self.request_id)
            if snapshot.finished or not self.done():
                return snapshot
        return QueryProgress(
            request_id=self.request_id,
            total_operators=0,
            started_operators=0,
            completed_operators=0,
            est_tuples=0.0,
            actual_tuples=0.0,
            actual_pages=0.0,
            finished=self.done(),
        )


@dataclass
class _Task:
    request: QueryRequest
    options: QueryOptions
    tenant: str
    ticket: Ticket
    enqueued_at: float
    request_id: str = ""
    expr: object = None  # pre-planned Expr (cohort mode), else None
    sequence: int = -1


@dataclass(frozen=True)
class ServerStatus:
    """A point-in-time operational snapshot of one :class:`QueryServer`:
    queue depth and per-tenant pending counts, per-tenant in-flight
    counts, total completions, and a per-request progress snapshot for
    everything the progress board currently tracks."""

    open: bool
    queue_depth: int
    pending: dict[str, int]
    in_flight: dict[str, int]
    completed: int
    queries: dict[str, QueryProgress]


class QueryServer:
    """Concurrent query service over one :class:`~repro.sites.SiteEnv`.

    Use as a context manager, or call :meth:`close` when done::

        with QueryServer(env, ServerConfig(max_workers=4)) as server:
            tickets = [server.submit(req) for req in requests]
            answers = [t.result() for t in tickets]

    ``start=False`` defers worker startup until :meth:`start` (or the
    first :meth:`serve`) — the fairness tests use this to stage a backlog
    and observe the exact dequeue order."""

    def __init__(
        self,
        env: SiteEnv,
        config: Optional[ServerConfig] = None,
        *,
        start: bool = True,
    ):
        self.env = env
        self.config = config or ServerConfig()
        self.navigator = SharedNavigator(env.scheme, env.client, env.registry)
        self.progress = ProgressBoard()
        self._plan_lock = threading.Lock()
        self._cond = threading.Condition()
        self._queues: dict[str, deque[_Task]] = {}
        self._tenant_order: list[str] = []
        self._cursor = 0
        self._pending = 0
        self._sequence = 0
        self._request_ids = itertools.count(1)
        self._in_flight: dict[str, int] = {}
        self._completed = 0
        #: simulated seconds of shared-prefix evaluation credited to the
        #: request that led it (drained into the makespan histogram)
        self._prefix_seconds: dict[str, float] = {}
        self._workers: list[threading.Thread] = []
        self._open = True
        if start:
            self.start()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> "QueryServer":
        """Spawn the worker pool (idempotent)."""
        with self._cond:
            if not self._open:
                raise AdmissionRejected("server is closed")
            while len(self._workers) < self.config.max_workers:
                worker = threading.Thread(
                    target=self._worker,
                    name=f"repro-server-{len(self._workers)}",
                    daemon=True,
                )
                self._workers.append(worker)
                worker.start()
        return self

    def close(self, wait: bool = True) -> None:
        """Stop admitting; workers drain the backlog, then exit."""
        with self._cond:
            self._open = False
            self._cond.notify_all()
        if wait:
            for worker in self._workers:
                worker.join()

    def __enter__(self) -> "QueryServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # submission
    # ------------------------------------------------------------------ #

    def submit(self, request: QueryRequest) -> Ticket:
        """Admit one request (or refuse: bounded queue, closed server).

        Admission is counted in ``repro_server_admissions_total`` by
        tenant and outcome; the pending-queue depth at each admission
        lands in the ``repro_server_queue_depth`` histogram."""
        if not isinstance(request, QueryRequest):
            raise OptionsError(
                f"submit takes a QueryRequest, got {request!r}"
            )
        task = self._make_task(request)
        self._admit(task)
        return task.ticket

    def serve(
        self, requests: Sequence[QueryRequest]
    ) -> list[QueryOutcome]:
        """Run a cohort; outcomes in submission order.

        Deterministic sharing: every request is planned first (submission
        order), every distinct navigation prefix is resolved serially in
        first-appearance order, and only then is the cohort dispatched
        over the worker pool — each query finds its prefixes already
        resolved, so per-query accounting (and the navigator's own log)
        is independent of scheduling.  The cohort must fit the admission
        queue (``max_queue``), else :class:`~repro.errors.
        AdmissionRejected` before any work starts."""
        if len(requests) > self.config.max_queue:
            raise AdmissionRejected(
                f"cohort of {len(requests)} exceeds the admission queue "
                f"bound ({self.config.max_queue})"
            )
        tasks: list[_Task] = []
        for request in requests:
            task = self._make_task(request)
            task.expr = self._plan(request, task.options)
            tasks.append(task)
        if self.config.share_plans:
            for task in tasks:
                for signature, chain in navigation_prefixes(task.expr):
                    try:
                        _, seconds = self.navigator.resolve(
                            signature, chain, task.options
                        )
                    except Exception:
                        # the leading query will retry (and fail) for
                        # itself; pre-resolution is best-effort
                        pass
                    else:
                        self._credit_prefix(task.request_id, seconds)
        self.start()
        for task in tasks:
            self._admit(task, bounded=False)
        return [task.ticket.outcome() for task in tasks]

    def warm_up(
        self,
        workload: Sequence[WorkloadQuery],
        *,
        mutation_rate: float,
        page_budget: Optional[int] = None,
        light_weight: float = 0.25,
        workers: int = 4,
    ) -> WarmupReport:
        """Advisor-driven warm-up of the environment's cross-query cache.

        Runs the materialization advisor over ``workload`` (requests with
        per-round frequencies, a sitegen mutation rate, and an optional
        page budget), then pre-loads the chosen page-schemes in k-lane
        batches so subsequent queries find them warm — one light
        connection per page instead of a download (docs/MATERIALIZED.md).
        Call before :meth:`serve` / :meth:`submit`; purely additive, no
        effect on answer digests."""
        return warm_cache(
            self.env,
            workload,
            mutation_rate=mutation_rate,
            page_budget=page_budget,
            light_weight=light_weight,
            workers=workers,
        )

    def status(self) -> ServerStatus:
        """Operational snapshot: queue depth, per-tenant pending and
        in-flight counts, completions, and per-request progress.

        Observational and lock-consistent for the queue counters; the
        per-query progress snapshots are each individually consistent and
        monotone (see :meth:`Ticket.progress`)."""
        with self._cond:
            pending = {
                tenant: len(queue)
                for tenant, queue in self._queues.items()
                if queue
            }
            queue_depth = self._pending
            in_flight = {
                tenant: count
                for tenant, count in self._in_flight.items()
                if count > 0
            }
            completed = self._completed
            is_open = self._open
        queries = {
            request_id: self.progress.progress(request_id)
            for request_id in self.progress.request_ids()
        }
        return ServerStatus(
            open=is_open,
            queue_depth=queue_depth,
            pending=pending,
            in_flight=in_flight,
            completed=completed,
            queries=queries,
        )

    def _admit(self, task: _Task, bounded: bool = True) -> None:
        admissions = METRICS.counter(
            "repro_server_admissions_total",
            "submitted requests by tenant and admission outcome",
        )
        with self._cond:
            if not self._open:
                admissions.inc(tenant=task.tenant, outcome="closed")
                raise AdmissionRejected("server is closed")
            if bounded and self._pending >= self.config.max_queue:
                admissions.inc(tenant=task.tenant, outcome="rejected")
                raise AdmissionRejected(
                    f"admission queue is full "
                    f"({self._pending}/{self.config.max_queue} pending)"
                )
            queue = self._queues.get(task.tenant)
            if queue is None:
                queue = self._queues[task.tenant] = deque()
                self._tenant_order.append(task.tenant)
            queue.append(task)
            self._pending += 1
            admissions.inc(tenant=task.tenant, outcome="accepted")
            METRICS.histogram(
                "repro_server_queue_depth",
                "pending requests observed at each admission",
                buckets=(1, 2, 4, 8, 16, 32, 64, 128),
            ).observe(self._pending, tenant=task.tenant)
            self._cond.notify()

    def _options_for(self, request: QueryRequest) -> QueryOptions:
        options = request.options or self.config.default_options
        if self.config.journal is not None and options.journal is None:
            options = replace(options, journal=self.config.journal)
        with self._plan_lock:
            # resolve policy names against the environment cache exactly
            # once, on the submitting thread (enable_cache mutates env)
            return options.with_cache(self.env._resolve_cache(options.cache))

    def _make_task(self, request: QueryRequest) -> _Task:
        """Resolve options, allocate the correlation id, open the journal
        block, and hand back the admitted-but-unqueued task."""
        options = self._options_for(request)
        request_id = f"req-{next(self._request_ids):04d}"
        journal = options.journal
        if journal is not None and journal.enabled:
            journal.begin_request(
                request_id,
                tenant=request.tenant,
                query=request.query if isinstance(request.query, str) else "",
            )
        return _Task(
            request,
            options,
            request.tenant,
            Ticket(request_id, self.progress),
            time.monotonic(),
            request_id=request_id,
        )

    def _plan(self, request: QueryRequest, options: QueryOptions):
        if request.plan is not None:
            return request.plan
        with self._plan_lock:
            # Planner.plan_query memoizes on shared mutable state
            return self.env.plan(request.query, cache=options.cache).best.expr

    # ------------------------------------------------------------------ #
    # the worker side
    # ------------------------------------------------------------------ #

    def _next_task_locked(self) -> Optional[_Task]:
        """Round-robin dequeue across tenants (caller holds the lock)."""
        if self._pending == 0:
            return None
        tenants = len(self._tenant_order)
        for step in range(tenants):
            index = (self._cursor + step) % tenants
            queue = self._queues[self._tenant_order[index]]
            if queue:
                self._cursor = (index + 1) % tenants
                task = queue.popleft()
                self._pending -= 1
                task.sequence = self._sequence
                self._sequence += 1
                return task
        return None

    def _worker(self) -> None:
        while True:
            with self._cond:
                task = self._next_task_locked()
                while task is None:
                    if not self._open:
                        return
                    self._cond.wait()
                    task = self._next_task_locked()
                queued = time.monotonic() - task.enqueued_at
                self._in_flight[task.tenant] = (
                    self._in_flight.get(task.tenant, 0) + 1
                )
            try:
                outcome = self._run(task, queued)
            finally:
                with self._cond:
                    self._in_flight[task.tenant] -= 1
                    self._completed += 1
            task.ticket._resolve(outcome)

    def _run(self, task: _Task, queued: float) -> QueryOutcome:
        outcome = QueryOutcome(
            request=task.request,
            tenant=task.tenant,
            sequence=task.sequence,
            queued_seconds=queued,
        )
        METRICS.histogram(
            "repro_server_queue_seconds",
            "wall-clock seconds from admission to dequeue",
        ).observe(queued, tenant=task.tenant)
        try:
            expr = task.expr
            if expr is None:
                expr = self._plan(task.request, task.options)
            if not self.progress.known(task.request_id):
                with self._plan_lock:
                    # the cost model memoizes on shared mutable state,
                    # like the planner
                    estimates = operator_estimates(expr, self.env.cost_model)
                self.progress.begin(task.request_id, estimates)
            shared: dict[str, Optional[WebResource]] = {}
            signatures: list[PrefixSignature] = []
            if self.config.share_plans:
                for signature, chain in navigation_prefixes(expr):
                    try:
                        pages, seconds = self.navigator.resolve(
                            signature, chain, task.options
                        )
                    except Exception:
                        # navigator fault (e.g. retries exhausted): fall
                        # back to unshared fetching for this chain — the
                        # query sees the fault itself if it is persistent
                        continue
                    self._credit_prefix(task.request_id, seconds)
                    signatures.append(signature)
                    shared.update(pages)
            outcome.signatures = tuple(signatures)
            tracer = (
                task.options.tracer
                if task.options.tracer is not None
                else NULL_TRACER
            )
            with tracer.span(
                "server_request",
                kind="server",
                tenant=task.tenant,
                sequence=task.sequence,
                prefixes=len(signatures),
            ):
                outcome.result = self._execute(
                    expr, task.options, shared, task.request_id
                )
        except Exception as err:  # surfaced through the ticket
            outcome.error = err
            journal = task.options.journal
            if journal is not None and journal.enabled:
                # the executor journals its own failures; this also
                # covers planning / prefix-resolution errors that never
                # reached it
                journal.record_error(task.request_id, err, source="server")
        self.progress.finish(task.request_id)
        METRICS.counter(
            "repro_server_queries_total",
            "finished requests by tenant and outcome",
        ).inc(tenant=task.tenant, outcome="ok" if outcome.ok else "error")
        if outcome.result is not None:
            with self._cond:
                credited = self._prefix_seconds.pop(task.request_id, 0.0)
            METRICS.histogram(
                "repro_server_request_simulated_seconds",
                "per-request simulated makespan: own fetches plus any "
                "shared-prefix evaluation the request led (the SLO "
                "suite's p99 source)",
            ).observe(
                outcome.result.log.simulated_seconds + credited,
                tenant=task.tenant,
            )
        return outcome

    def _credit_prefix(self, request_id: str, seconds: float) -> None:
        """Attribute a lead prefix resolution's simulated seconds to the
        request that triggered it (hits and waiters credit 0)."""
        if seconds <= 0.0 or not request_id:
            return
        with self._cond:
            self._prefix_seconds[request_id] = (
                self._prefix_seconds.get(request_id, 0.0) + seconds
            )

    def _execute(
        self,
        expr: object,
        options: QueryOptions,
        shared: dict[str, Optional[WebResource]],
        request_id: str,
    ) -> ExecutionResult:
        """One query on a private client clone (exact per-query log)."""
        base = self.env.client
        client = WebClient(
            base.server, base.network, base.retry_policy, base.cache
        )
        executor = RemoteExecutor(self.env.scheme, client, self.env.registry)
        return executor.execute(
            expr,
            options=options,
            shared_pages=shared or None,
            request_id=request_id,
            board=self.progress,
        )


# ---------------------------------------------------------------------- #
# one-shot shared execution (the QA oracle's server dimension)
# ---------------------------------------------------------------------- #


@dataclass
class SharedExecution:
    """A single query run through the prefix-sharing machinery, with the
    navigator's accounting alongside the query's own.

    ``combined_log`` (navigator first, then the query) is the run's total
    network footprint — the thing conformance laws compare against a solo
    reference run."""

    result: ExecutionResult
    navigator_log: AccessLog
    signatures: tuple[PrefixSignature, ...]

    @property
    def combined_log(self) -> AccessLog:
        return self.navigator_log.merge(self.result.log)

    @property
    def pages_shared(self) -> int:
        return self.result.log.pages_shared


def execute_shared(
    env: SiteEnv,
    expr: object,
    options: Optional[QueryOptions] = None,
    navigator: Optional[SharedNavigator] = None,
    client: Optional[WebClient] = None,
    request_id: Optional[str] = None,
) -> SharedExecution:
    """Evaluate one plan with plan-level prefix sharing, single-threaded.

    This is the serial core of what :class:`QueryServer` does per request
    — navigator resolves the plan's prefixes, the query executes on a
    client clone with the pages injected — exposed directly so the QA
    oracle's ``server`` execution dimension can differential-test the
    sharing machinery without threads in the loop.  Pass a ``navigator``
    to share across calls (hot prefixes); by default each call gets a
    fresh one (every prefix led, nothing reused).  Pass a ``client`` to
    run the query on a specific clone — the oracle does, so the query's
    log stays observable even when the run aborts on exhausted retries
    (the exception propagates; the logs keep what happened up to it)."""
    opts = options if options is not None else DEFAULT_OPTIONS
    opts = opts.with_cache(env._resolve_cache(opts.cache))
    nav = navigator or SharedNavigator(env.scheme, env.client, env.registry)
    before = nav.log.snapshot()
    shared: dict[str, Optional[WebResource]] = {}
    signatures: list[PrefixSignature] = []
    for signature, chain in navigation_prefixes(expr):
        try:
            pages, _ = nav.resolve(signature, chain, opts)
        except Exception:
            continue
        signatures.append(signature)
        shared.update(pages)
    base = env.client
    if client is None:
        client = WebClient(
            base.server, base.network, base.retry_policy, base.cache
        )
    executor = RemoteExecutor(env.scheme, client, env.registry)
    result = executor.execute(
        expr,
        options=opts,
        shared_pages=shared or None,
        request_id=request_id,
    )
    return SharedExecution(
        result=result,
        navigator_log=nav.log.delta(before),
        signatures=tuple(signatures),
    )
