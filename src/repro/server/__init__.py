"""Multi-query server with plan-level shared work.

The paper's engine answers one query at a time; this package turns it
into a concurrent service without changing a single answer.  Queries
arrive as :class:`~repro.options.QueryRequest` envelopes, pass a bounded
admission queue, are scheduled fairly across tenants, and — the
interesting part — share *plan-level* work: plans whose access paths
start with the same navigation prefix (entry point + follow-link chain)
have that prefix evaluated once by a shared navigator, with the page
batch fanned out to every subscriber and the hand-off recorded in each
query's ``pages_shared`` counter.

See ``docs/SERVER.md`` for the architecture and the sharing invariants,
and :mod:`repro.qa.oracle` (the ``server`` execution dimension) for the
machine-checked guarantee that a shared run reproduces each query's solo
answer bit-for-bit.
"""

from repro.server.prefix import (
    PrefixSignature,
    SharedNavigator,
    navigation_prefixes,
)
from repro.server.service import (
    QueryOutcome,
    QueryServer,
    ServerConfig,
    ServerStatus,
    SharedExecution,
    Ticket,
    execute_shared,
)
from repro.server.warmup import WarmupReport, warm_cache

__all__ = [
    "PrefixSignature",
    "SharedNavigator",
    "navigation_prefixes",
    "QueryOutcome",
    "QueryServer",
    "ServerConfig",
    "ServerStatus",
    "SharedExecution",
    "Ticket",
    "execute_shared",
    "WarmupReport",
    "warm_cache",
]
