"""Advisor-driven cache warm-up for the multi-query server.

:func:`warm_cache` runs the materialization advisor
(:mod:`repro.materialized.advisor`) over a workload, then crawls the site
breadth-first, fetching each frontier level as one k-lane batch: pages of
the advisor-chosen schemes go *through* the environment's cross-query
:class:`~repro.web.cache.PageCache` (so the next query finds them warm —
one light-connection revalidation, zero downloads, the §8 saving), while
pages of unchosen schemes are fetched with :data:`~repro.web.cache.
NO_CACHE` — traversed, never retained, exactly the budgeted set the
advisor picked.

:meth:`QueryServer.warm_up <repro.server.service.QueryServer.warm_up>`
exposes this on the server: call it once before opening admission and the
whole cohort starts against a warm, advisor-shaped cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, TYPE_CHECKING

from repro.adm.links import outlink_set
from repro.materialized.advisor import AdvisorReport, WorkloadQuery, advise
from repro.obs.metrics import METRICS
from repro.obs.trace import NULL_TRACER
from repro.web.cache import NO_CACHE
from repro.web.client import FetchConfig, WebClient
from repro.web.resources import WebResource

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.sites import SiteEnv

__all__ = ["WarmupReport", "warm_cache"]


@dataclass(frozen=True)
class WarmupReport:
    """What one warm-up pass decided and did."""

    #: the advisor's decision (chosen schemes, candidates, estimates)
    advisor: AdvisorReport
    #: chosen-scheme pages now resident in the cross-query cache
    warmed_pages: int
    #: unchosen pages fetched only to traverse their links (not cached)
    transit_pages: int
    light_connections: int
    seconds: float

    def __repr__(self) -> str:
        return (
            f"WarmupReport({self.warmed_pages} warmed over "
            f"{sorted(self.advisor.chosen)}, {self.transit_pages} transit, "
            f"{self.seconds:.2f}s)"
        )


def warm_cache(
    env: "SiteEnv",
    workload: Sequence[WorkloadQuery],
    *,
    mutation_rate: float,
    page_budget: Optional[int] = None,
    light_weight: float = 0.25,
    workers: int = 4,
    tracer: object = None,
) -> WarmupReport:
    """Advise on ``workload`` and pre-load the chosen schemes' pages.

    The crawl uses its own client clone (shared server/network, private
    log — the server's per-request isolation discipline), attached to the
    environment's cross-query cache (created at default capacity if the
    environment has none).  Each breadth-first level is fetched as one
    ``workers``-lane batch, chosen-scheme pages through the cache,
    transit pages around it."""
    report = advise(
        env,
        workload,
        mutation_rate=mutation_rate,
        page_budget=page_budget,
        light_weight=light_weight,
    )
    chosen = report.materialize_set()
    cache = env.page_cache if env.page_cache is not None else env.enable_cache()
    base = env.client
    client = WebClient(base.server, base.network, base.retry_policy, cache)
    trace = tracer if tracer is not None else NULL_TRACER
    config = FetchConfig(max_workers=workers)
    warmed = 0
    transit = 0
    with trace.span(  # type: ignore[attr-defined]
        "server_warmup", kind="maintenance", chosen=len(chosen), workers=workers
    ):
        frontier: list[tuple[str, str]] = [
            (ep.scheme, ep.url) for ep in env.scheme.entry_points.values()
        ]
        visited: set[str] = set()
        while frontier:
            level: list[tuple[str, str]] = []
            for page_scheme, url in frontier:
                if url not in visited:
                    visited.add(url)
                    level.append((page_scheme, url))
            if not level:
                break
            resources: dict[str, Optional[WebResource]] = {}
            chosen_urls = [u for ps, u in level if ps in chosen]
            transit_urls = [u for ps, u in level if ps not in chosen]
            if chosen_urls:
                resources.update(client.get_batch(chosen_urls, config=config))
                warmed += sum(
                    1 for u in chosen_urls if resources.get(u) is not None
                )
            if transit_urls:
                resources.update(
                    client.get_batch(transit_urls, config=config, cache=NO_CACHE)
                )
                transit += sum(
                    1 for u in transit_urls if resources.get(u) is not None
                )
            next_frontier: list[tuple[str, str]] = []
            for page_scheme, url in level:
                resource = resources.get(url)
                if resource is None:
                    continue
                plain = env.registry.wrap(page_scheme, url, resource.html)
                for link_url, target in outlink_set(
                    env.scheme, page_scheme, plain
                ):
                    if link_url not in visited:
                        next_frontier.append((target, link_url))
            frontier = next_frontier
    pages_total = METRICS.counter(
        "repro_server_warmup_pages_total", "warm-up pages by kind"
    )
    pages_total.inc(warmed, kind="warmed")
    pages_total.inc(transit, kind="transit")
    return WarmupReport(
        advisor=report,
        warmed_pages=warmed,
        transit_pages=transit,
        light_connections=client.log.light_connections,
        seconds=client.log.simulated_seconds,
    )
