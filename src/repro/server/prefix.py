"""Navigation-prefix signatures and the shared navigator.

The multi-query server's plan-level sharing rests on one observation: two
plans whose access paths start with the same entry point and follow the
same link chain will request the same pages for that chain, whatever they
do relationally above it.  A *navigation prefix* is the maximal pure
``EntryPointScan → (Unnest | FollowLink)*`` chain hanging off each entry
leaf of a plan; its :class:`PrefixSignature` — the ordered step list — is
the index key for in-flight and already-resolved shared work.

The prefix stops at the first non-navigation operator on purpose.  A
selection pushed *below* a follow (the optimizer's rule 3) cuts the set of
links actually followed, so sharing above a ``Select`` would speculate:
the navigator would fetch pages the query never asks for, violating the
executor's non-speculation guarantee and polluting per-query accounting.
Maximal *pure* chains are exactly the pages every subscriber is certain
to need.

:class:`SharedNavigator` resolves signatures once (single-flight per
signature, first caller evaluates, concurrent duplicates wait and reuse),
evaluates chains on a navigator-owned client so every fetched page is
attributed to the navigator's own :class:`~repro.web.client.AccessLog`,
and hands each subscriber the chain's page batch for injection via
:meth:`QuerySession.seed_resources
<repro.engine.session.QuerySession.seed_resources>` — which bumps the
query's ``pages_shared`` counter, keeping
``own pages + pages_shared == solo pages`` for cache-cold runs.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Optional

from repro.adm.scheme import WebScheme
from repro.algebra.ast import EntryPointScan, Expr, FollowLink, Unnest
from repro.engine.local import LocalExecutor
from repro.engine.remote import _SessionProvider
from repro.engine.session import QuerySession
from repro.obs.metrics import METRICS
from repro.options import DEFAULT_OPTIONS, QueryOptions
from repro.web.cache import PageCache
from repro.web.client import AccessLog, WebClient
from repro.web.resources import WebResource
from repro.wrapper.wrapper import WrapperRegistry

__all__ = ["PrefixSignature", "SharedNavigator", "navigation_prefixes"]


@dataclass(frozen=True)
class PrefixSignature:
    """Ordered navigation steps, e.g. ``("entry:DeptListPage",
    "unnest:DeptListPage.DeptList", "follow:DeptListPage.DeptList.ToDept")``.

    Two plans carrying the same signature request the same page set for
    that chain — entry URLs are fixed by the scheme and follow targets are
    determined by page content, so the signature fully determines the
    pages (against one snapshot of the site)."""

    steps: tuple[str, ...]

    @property
    def depth(self) -> int:
        """Number of page-fetching steps (entry + follows)."""
        return sum(
            1
            for step in self.steps
            if step.startswith(("entry:", "follow:"))
        )

    def key(self) -> str:
        """Human-readable form used in spans and metric labels."""
        return " > ".join(self.steps)

    def __repr__(self) -> str:
        return f"PrefixSignature({self.key()!r})"


def _pure_chain(expr: Expr) -> Optional[list[str]]:
    """Step list when ``expr`` is a pure navigation chain, else None."""
    if isinstance(expr, EntryPointScan):
        return [f"entry:{expr.page_scheme}"]
    if isinstance(expr, Unnest):
        below = _pure_chain(expr.child)
        if below is None:
            return None
        below.append(f"unnest:{expr.attr}")
        return below
    if isinstance(expr, FollowLink):
        below = _pure_chain(expr.child)
        if below is None:
            return None
        below.append(f"follow:{expr.link_attr}")
        return below
    return None


def navigation_prefixes(
    expr: Expr,
) -> list[tuple[PrefixSignature, Expr]]:
    """The maximal pure navigation chains of a plan, leaf by leaf.

    Returns ``(signature, chain)`` pairs in left-to-right plan order —
    ``chain`` is the actual subexpression (directly evaluable), one pair
    per :class:`~repro.algebra.ast.EntryPointScan` leaf.  Maximality:
    each returned chain is the *topmost* pure navigation node on its
    leaf's path, so the pages it touches are exactly the pages a solo run
    of the enclosing plan would fetch for that access path (selections
    and joins above the chain never add fetches; anything below the cut
    never removes them)."""
    found: list[tuple[PrefixSignature, Expr]] = []

    def visit(node: Expr) -> None:
        steps = _pure_chain(node)
        if steps is not None:
            found.append((PrefixSignature(tuple(steps)), node))
            return
        for child in node.children():
            visit(child)

    visit(expr)
    return found


class SharedNavigator:
    """Resolves navigation prefixes once and fans the pages out.

    The navigator owns a dedicated :class:`~repro.web.client.WebClient`
    clone (same simulated server, network model, and retry policy as the
    environment's client, fresh :class:`AccessLog`), so the cost of shared
    navigation is cleanly separated from every query's own log — the QA
    oracle checks the combined footprint against the serial reference.

    Resolved signatures are retained for the navigator's lifetime: later
    queries over a hot prefix are served from memory (a plan-level analogue
    of the page cache, same staleness caveat — call :meth:`invalidate`
    after site mutations, or use one navigator per serving epoch as the
    conformance harness does).  Failed resolutions are never retained; the
    caller falls back to unshared execution and the next query leads a
    fresh attempt.
    """

    def __init__(
        self,
        scheme: WebScheme,
        client: WebClient,
        registry: WrapperRegistry,
    ):
        self.scheme = scheme
        # navigator-owned clone: shared server/network/retry, own log
        self.client = WebClient(
            client.server, client.network, client.retry_policy
        )
        self.registry = registry
        self._lock = threading.Lock()
        self._eval_lock = threading.Lock()
        self._resolved: dict[
            PrefixSignature, dict[str, Optional[WebResource]]
        ] = {}
        self._inflight: dict[PrefixSignature, threading.Event] = {}
        self._pool: dict[str, Optional[WebResource]] = {}

    @property
    def log(self) -> AccessLog:
        """The navigator's own accounting (all shared-prefix fetches)."""
        return self.client.log

    @property
    def resolved_signatures(self) -> tuple[PrefixSignature, ...]:
        with self._lock:
            return tuple(self._resolved)

    def invalidate(self) -> None:
        """Drop every retained page (call after mutating the site)."""
        with self._lock:
            self._resolved.clear()
            self._pool.clear()

    def resolve(
        self,
        signature: PrefixSignature,
        chain: Expr,
        options: Optional[QueryOptions] = None,
    ) -> tuple[dict[str, Optional[WebResource]], float]:
        """The chain's page batch, evaluated at most once per signature,
        plus the simulated seconds *this call* spent evaluating it — the
        lead caller pays the fetch time, hits and single-flight waiters
        report 0.0 (the server credits the lead's request makespan with
        it).

        Concurrent callers with the same signature single-flight: the
        first evaluates, the rest block and reuse.  ``options`` supplies
        fetch/retry/cache knobs for the evaluation (first caller wins;
        the page *set* is option-independent).  Raises whatever the
        evaluation raises (e.g. :class:`~repro.errors.
        RetriesExhaustedError` under injected faults) — nothing is
        retained on failure."""
        shared_prefix = METRICS.counter(
            "repro_server_shared_prefix_total",
            "navigation-prefix resolutions by outcome",
        )
        while True:
            with self._lock:
                pages = self._resolved.get(signature)
                if pages is not None:
                    shared_prefix.inc(outcome="hit")
                    return dict(pages), 0.0
                waiter = self._inflight.get(signature)
                if waiter is None:
                    self._inflight[signature] = threading.Event()
                    break
            waiter.wait()
        try:
            pages, seconds = self._evaluate(chain, options or DEFAULT_OPTIONS)
        except BaseException:
            shared_prefix.inc(outcome="error")
            raise
        else:
            shared_prefix.inc(outcome="lead")
            with self._lock:
                self._resolved[signature] = pages
                self._pool.update(pages)
            return dict(pages), seconds
        finally:
            with self._lock:
                event = self._inflight.pop(signature, None)
            if event is not None:
                event.set()

    def _evaluate(
        self, chain: Expr, options: QueryOptions
    ) -> tuple[dict[str, Optional[WebResource]], float]:
        """Fetch the chain's pages on the navigator's client.

        Serialized (one chain at a time): the navigator's log mutates on
        the evaluating thread, and a single writer keeps its accounting
        deterministic under server concurrency.  The session is pre-seeded
        with the pool of pages earlier signatures already resolved, so a
        signature that extends (or overlaps) another pays only for the
        *new* pages — overlap is never double-fetched or double-counted."""
        cache = options.cache if isinstance(options.cache, PageCache) else None
        with self._eval_lock:
            before = self.client.log.snapshot()
            if cache is not None:
                # mirror RemoteExecutor: the navigator's leg of a query
                # starts the query as far as the page cache is concerned
                # (validation marks reset, per-query entries dropped), so
                # navigator + subscriber together revalidate exactly the
                # pages a solo run would have
                cache.begin_query()
            session = QuerySession(
                self.client,
                self.registry,
                fetch_config=options.fetch,
                retry_policy=options.retry,
                cache=cache,
            )
            with self._lock:
                pool = dict(self._pool)
            session.seed_resources(pool)
            executor = LocalExecutor(
                self.scheme, _SessionProvider(self.scheme, session)
            )
            executor.evaluate(chain)
            seconds = self.client.log.delta(before).simulated_seconds
            return session.touched_resources(), seconds
