"""Execution engines for NALG plans.

* :mod:`repro.engine.session` — per-query page cache and accounting (the
  paper counts *pages downloaded*; an engine never re-fetches a page it
  already holds for the current query), batch-first so follow-link target
  sets fetch through the client's concurrent worker pool;
* :mod:`repro.engine.remote` — evaluates computable plans against the live
  (simulated) web through wrappers: this is the virtual-view path of
  Sections 5–7;
* :mod:`repro.engine.local` — evaluates plans against locally stored
  page-relations through a provider interface; the materialized-view
  machinery of Section 8 plugs in here;
* :mod:`repro.engine.pipeline` — chunked, pipelined evaluation with
  non-speculative link prefetch over one shared timeline: identical pages
  and answers, lower simulated makespan;
* :mod:`repro.engine.columnar` / :mod:`repro.engine.compile` — the
  compiled engine core: columnar batches with whole-column operator
  kernels, plus a one-shot plan-compilation pass resolving attribute
  offsets and accessors ahead of the hot loop (``execution="columnar"``
  and ``"columnar_pipelined"``): identical answers and accounting,
  multi-x less interpreter CPU;
* :mod:`repro.engine.adaptive` — runtime relevance pruning and
  mid-query pointer-join ↔ pointer-chase switching layered on the
  staged core (``execution="adaptive"`` / ``"adaptive_pipelined"``):
  identical answers, never more pages than the static plan.
"""

from repro.engine.session import QuerySession
from repro.engine.remote import ExecutionResult, RemoteExecutor
from repro.engine.adaptive import AdaptiveExecutor, AdaptiveReport
from repro.engine.local import LocalExecutor, PageRelationProvider, qualify_row
from repro.engine.columnar import ColumnBatch
from repro.engine.compile import ColumnarExecutor, CompiledPlan, compile_plan
from repro.engine.pipeline import (
    EXECUTION_MODES,
    PipelineConfig,
    PipelinedExecutor,
    PrefetchScheduler,
    coerce_execution,
)

__all__ = [
    "QuerySession",
    "ExecutionResult",
    "RemoteExecutor",
    "AdaptiveExecutor",
    "AdaptiveReport",
    "LocalExecutor",
    "PageRelationProvider",
    "qualify_row",
    "ColumnBatch",
    "ColumnarExecutor",
    "CompiledPlan",
    "compile_plan",
    "EXECUTION_MODES",
    "PipelineConfig",
    "PipelinedExecutor",
    "PrefetchScheduler",
    "coerce_execution",
]
