"""Columnar batches and whole-column operator kernels.

The interpreted engine (:mod:`repro.engine.local`,
:mod:`repro.nested.operations`) moves *rows*: every operator walks a list
of dicts, re-keying and re-building them tuple at a time.  That is the
right reference semantics — but all of the per-tuple work (dict
construction in ``qualify_row``, ``row.get`` predicate probes,
``{**row, **target}`` merges, ``canonical_row`` sorting) is pure CPU
overhead the paper's cost model never charges for.

This module is the batch half of the compiled engine
(:mod:`repro.engine.compile` is the plan half): a :class:`ColumnBatch`
pins a :class:`~repro.nested.schema.RelationSchema` and stores one Python
list per field, and the kernels below implement σ/π/unnest/join/
follow-link over whole columns at a time.  Only the *top* level is
columnar — list-valued fields keep their qualified ``list[dict]``
sub-rows as single column values, exactly as a row would hold them — so
conversion to and from row form is loss-free and every kernel is
value-for-value identical to its interpreted counterpart:

* **unnest** repeats the kept columns by each row's sub-row count and
  splices the element fields in place (empty lists drop their row);
* **join** hash-joins on the first ``on`` pair via
  :func:`~repro.nested.relation.canonical_value` (null keys never match)
  and filters the remaining pairs, preserving the interpreted
  left-order-then-bucket-order output;
* **follow-link** gathers the child rows whose link resolves and
  concatenates the pre-built target columns (the interpreted
  ``{**row, **target_row}`` merge on disjoint names *is* column
  concatenation);
* **projection dedup** keeps first occurrences by a hashable key
  (:func:`first_occurrences` takes the ``seen`` set as an argument so
  the pipelined executor can dedup across chunks).

The digest-level equivalence of the two engines is enforced by
``tests/test_columnar.py`` and the QA oracle's ``columnar`` /
``columnar_pipelined`` exec cells (:mod:`repro.qa.oracle`).
"""

from __future__ import annotations

import itertools
from typing import Iterable, Mapping, Optional, Sequence

from repro.nested.relation import Relation, canonical_value
from repro.nested.schema import RelationSchema

__all__ = [
    "ColumnBatch",
    "distinct_links",
    "first_occurrences",
    "follow_batch",
    "join_batches",
    "product_batches",
    "unnest_batch",
]

Row = dict


class ColumnBatch:
    """A pinned schema plus one value list per field, in schema order.

    All columns have equal length (one entry per row).  Atom fields hold
    ``str`` / ``None`` values; list fields hold ``list[dict]`` sub-rows —
    the same values a row dict would hold, stored columnwise.
    """

    __slots__ = ("schema", "columns")

    def __init__(self, schema: RelationSchema, columns: list[list]):
        self.schema = schema
        self.columns = columns

    # ------------------------------------------------------------------ #
    # construction / conversion
    # ------------------------------------------------------------------ #

    @classmethod
    def empty(cls, schema: RelationSchema) -> "ColumnBatch":
        return cls(schema, [[] for _ in schema.fields])

    @classmethod
    def from_rows(
        cls, schema: RelationSchema, rows: Sequence[Row]
    ) -> "ColumnBatch":
        """Pivot row dicts (every schema name present) into columns."""
        return cls(
            schema, [[row[name] for row in rows] for name in schema.names()]
        )

    @classmethod
    def from_tuples(
        cls, schema: RelationSchema, tuples: Iterable[tuple]
    ) -> "ColumnBatch":
        """Pivot value tuples (in schema field order) into columns."""
        columns = [list(column) for column in zip(*tuples)]
        if not columns:  # no tuples at all
            return cls.empty(schema)
        return cls(schema, columns)

    def to_rows(self) -> list[Row]:
        names = self.schema.names()
        return [dict(zip(names, values)) for values in zip(*self.columns)]

    def to_relation(self) -> Relation:
        return Relation(self.schema, self.to_rows())

    # ------------------------------------------------------------------ #
    # shape
    # ------------------------------------------------------------------ #

    @property
    def num_rows(self) -> int:
        return len(self.columns[0]) if self.columns else 0

    def gather(self, indexes: Sequence[int]) -> "ColumnBatch":
        """Rows at ``indexes``, in that order (the columnar row-filter)."""
        return ColumnBatch(
            self.schema,
            [[column[i] for i in indexes] for column in self.columns],
        )

    def slice(self, start: int, stop: int) -> "ColumnBatch":
        return ColumnBatch(
            self.schema, [column[start:stop] for column in self.columns]
        )

    @classmethod
    def concat(
        cls, schema: RelationSchema, batches: Sequence["ColumnBatch"]
    ) -> "ColumnBatch":
        columns: list[list] = [[] for _ in schema.fields]
        for batch in batches:
            for accumulator, column in zip(columns, batch.columns):
                accumulator.extend(column)
        return cls(schema, columns)

    def __len__(self) -> int:
        return self.num_rows

    def __repr__(self) -> str:
        return f"ColumnBatch({self.num_rows} rows; {self.schema})"


# --------------------------------------------------------------------- #
# kernels
# --------------------------------------------------------------------- #


def distinct_links(column: Sequence[Optional[str]]) -> list[str]:
    """Distinct non-null link values in first-seen order — the URL list a
    follow-link operator hands to the fetch layer (identical to the
    interpreted executor's per-row walk).  ``dict.fromkeys`` does the
    ordered dedup in C."""
    return [url for url in dict.fromkeys(column) if url is not None]


def first_occurrences(keys: Sequence, seen: set) -> list[int]:
    """Indexes of the first occurrence of each key not yet in ``seen``
    (which is updated in place, enabling cross-chunk dedup)."""
    take: list[int] = []
    for index, key in enumerate(keys):
        if key not in seen:
            seen.add(key)
            take.append(index)
    return take


def unnest_batch(
    batch: ColumnBatch,
    list_index: int,
    elem_names: Sequence[str],
    out_schema: RelationSchema,
    elem_keys: Sequence[str] = (),
) -> ColumnBatch:
    """Unnest the list field at ``list_index``: kept columns repeat per
    sub-row, the element fields splice in at the list field's position,
    and rows with empty lists disappear (standard nested-relation
    unnest, as in :func:`repro.nested.operations.unnest`).

    ``elem_keys`` overrides the dict keys the element values are read
    by: a fused unnest passes the plain leaf names because its producer
    left the list column raw (unqualified sub-tuples, possibly None for
    an absent list)."""
    keys = elem_keys or elem_names
    list_column = batch.columns[list_index]
    counts = [len(subs) if subs else 0 for subs in list_column]
    flat_subs = list(
        itertools.chain.from_iterable(subs for subs in list_column if subs)
    )
    out_columns: list[list] = []
    for index, column in enumerate(batch.columns):
        if index == list_index:
            for key in keys:
                out_columns.append([sub.get(key) for sub in flat_subs])
        else:
            # map(repeat, ...) + chain keeps the per-sub-row repetition
            # of kept values entirely in C
            out_columns.append(
                list(
                    itertools.chain.from_iterable(
                        map(itertools.repeat, column, counts)
                    )
                )
            )
    return ColumnBatch(out_schema, out_columns)


def join_batches(
    left: ColumnBatch,
    right: ColumnBatch,
    first_pair: tuple[int, int],
    rest_pairs: Sequence[tuple[int, int]],
    out_schema: RelationSchema,
) -> ColumnBatch:
    """Equi-join: hash on the first ``on`` pair (canonical values; null
    keys never match), filter the rest, output columns left-then-right.

    Pair indexes are column offsets (left, right).  Output row order is
    the interpreted join's exactly: left rows in order, each expanded by
    its hash bucket in right-row order."""
    left_key_column = left.columns[first_pair[0]]
    right_key_column = right.columns[first_pair[1]]
    buckets: dict[object, list[int]] = {}
    for right_index, value in enumerate(right_key_column):
        key = canonical_value(value)
        if key is not None:
            buckets.setdefault(key, []).append(right_index)
    rest_left = [left.columns[i] for i, _ in rest_pairs]
    rest_right = [right.columns[j] for _, j in rest_pairs]
    left_take: list[int] = []
    right_take: list[int] = []
    for left_index, value in enumerate(left_key_column):
        key = canonical_value(value)
        if key is None:
            continue
        for right_index in buckets.get(key, ()):
            matched = True
            for left_column, right_column in zip(rest_left, rest_right):
                left_value = left_column[left_index]
                if left_value is None or left_value != right_column[right_index]:
                    matched = False
                    break
            if matched:
                left_take.append(left_index)
                right_take.append(right_index)
    columns = [[column[i] for i in left_take] for column in left.columns]
    columns += [[column[i] for i in right_take] for column in right.columns]
    return ColumnBatch(out_schema, columns)


def product_batches(
    left: ColumnBatch, right: ColumnBatch, out_schema: RelationSchema
) -> ColumnBatch:
    """Cartesian product (a join with no ``on`` pairs), left-major order."""
    left_count, right_count = left.num_rows, right.num_rows
    columns = [
        [value for value in column for _ in range(right_count)]
        for column in left.columns
    ]
    columns += [column * left_count for column in right.columns]
    return ColumnBatch(out_schema, columns)


def follow_batch(
    batch: ColumnBatch,
    link_index: int,
    targets: Mapping[str, tuple],
    out_schema: RelationSchema,
) -> ColumnBatch:
    """Merge child rows with their link targets: rows whose link is null
    or dangling (no entry in ``targets``) drop; the matched target value
    tuples (in target-schema order) append as new columns.  Because the
    child and target field names are disjoint, this concatenation is
    value-for-value the interpreted ``{**row, **target_row}`` merge."""
    link_column = batch.columns[link_index]
    # map() resolves every link in C; a null or dangling link (no entry
    # in ``targets``) resolves to None and its row drops
    resolved = list(map(targets.get, link_column))
    take = [
        index
        for index, values in enumerate(resolved)
        if values is not None
    ]
    matched = [resolved[index] for index in take]
    if len(take) == len(link_column):
        # every link resolved: the child columns pass through untouched
        # (batches are read-only once built, so sharing them is safe)
        columns = list(batch.columns)
    else:
        columns = [[column[i] for i in take] for column in batch.columns]
    target_width = len(out_schema) - len(batch.columns)
    if matched:
        columns += [list(values) for values in zip(*matched)]
    else:
        columns += [[] for _ in range(target_width)]
    return ColumnBatch(out_schema, columns)
