"""Remote evaluation: NALG plans against the live (simulated) web.

This is the virtual-view execution path of Sections 5–7: entry points are
downloaded through their known URLs, follow-link operators hand their
distinct link targets to the session as *one batch* (fetched concurrently
through the client's worker pool), wrappers turn HTML into nested tuples,
and all relational work happens locally at zero cost.  The per-query
:class:`~repro.engine.session.QuerySession` guarantees each page is
downloaded at most once per query, which makes the measured
``page_downloads`` directly comparable to the paper's cost function C(E) at
every concurrency level — parallelism only compresses simulated wall time.
With a cross-query :class:`~repro.web.cache.PageCache` attached, pages
already cached from earlier queries cost one light connection (or nothing)
instead of a download, and the per-query log reports the savings.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from repro.adm.scheme import WebScheme
from repro.algebra.ast import Expr
from repro.algebra.printer import render_expr
from repro.engine.adaptive import AdaptiveExecutor, AdaptiveReport
from repro.engine.compile import ColumnarExecutor
from repro.engine.local import LocalExecutor
from repro.engine.pipeline import (
    DEFAULT_PIPELINE_CONFIG,
    PipelineConfig,
    PipelinedExecutor,
    PrefetchScheduler,
)
from repro.engine.session import QuerySession
from repro.errors import OptionsError
from repro.nested.relation import Relation, relation_digest
from repro.obs.journal import NULL_JOURNAL
from repro.obs.progress import ProgressBoard, ProgressTracer, operator_estimates
from repro.obs.trace import NULL_TRACER, RecordingTracer, Span
from repro.options import QueryOptions, coerce_options
from repro.web.cache import CachePolicy, PageCache
from repro.web.client import (
    DEFAULT_FETCH_CONFIG,
    AccessLog,
    CostSummary,
    FetchConfig,
    RetryPolicy,
    WebClient,
)
from repro.web.resources import WebResource
from repro.wrapper.wrapper import WrapperRegistry

__all__ = ["ExecutionResult", "RemoteExecutor"]


@dataclass
class ExecutionResult:
    """The answer relation plus the measured network cost of producing it.

    ``trace`` is the root span of the execution when the run was traced
    (``None`` otherwise) — observational only: every other field is
    bit-for-bit identical whether or not a tracer was attached.

    ``adaptive`` carries the adaptive executor's decision report
    (:class:`~repro.engine.adaptive.AdaptiveReport` — prunes, switches,
    and their RewriteTrace) for ``execution="adaptive"`` runs; ``None``
    for every static mode."""

    relation: Relation
    log: AccessLog
    trace: Optional[Span] = None
    adaptive: Optional[AdaptiveReport] = None

    @property
    def pages(self) -> int:
        """Distinct pages downloaded — the paper's cost measure."""
        return self.log.page_downloads

    @property
    def light_connections(self) -> int:
        """Light (HEAD) connections issued while executing."""
        return self.log.light_connections

    @property
    def cache_hits(self) -> int:
        """Accesses served from the page cache without any connection."""
        return self.log.cache_hits

    @property
    def revalidations(self) -> int:
        """Cached pages served after a light-connection freshness check."""
        return self.log.revalidations

    @property
    def pages_saved(self) -> int:
        """Full downloads the page cache avoided for this query."""
        return self.log.pages_saved

    @property
    def cost(self) -> CostSummary:
        """Measured cost in the shared summary shape (same fields as
        ``PlannerResult.cost``, but observed instead of estimated)."""
        return CostSummary.from_log(self.log)

    def fingerprint(self) -> frozenset:
        """Canonical content digest of the answer relation (order- and
        duplicate-insensitive).  Two executions — any plan, cache policy,
        fault schedule, or worker count — answered the same relation iff
        their fingerprints are equal; the QA differential oracle compares
        exactly this."""
        return self.relation.canonical()

    def __repr__(self) -> str:
        return (
            f"ExecutionResult({len(self.relation)} rows, "
            f"{self.pages} pages, {self.log.bytes_downloaded} bytes)"
        )


class _SessionProvider:
    """Batch-first PageRelationProvider over a QuerySession."""

    def __init__(self, scheme: WebScheme, session: QuerySession):
        self.scheme = scheme
        self.session = session

    def entry_tuples(self, page_schemes: Sequence[str]) -> dict[str, dict]:
        urls = {
            page_scheme: self.scheme.entry_point(page_scheme).url
            for page_scheme in page_schemes
        }
        self.session.fetch_batch(list(urls.values()))
        result = {}
        for page_scheme, url in urls.items():
            plain = self.session.fetch_tuple(page_scheme, url)
            if plain is not None:
                result[page_scheme] = plain
        return result

    def entry_tuple(self, page_scheme: str) -> Optional[dict]:
        """Deprecated single-page shim; prefer :meth:`entry_tuples`."""
        return self.entry_tuples([page_scheme]).get(page_scheme)

    def target_tuples(
        self, page_scheme: str, urls: Sequence[str]
    ) -> dict[str, dict]:
        return self.session.fetch_tuples(page_scheme, urls)


class RemoteExecutor:
    """Evaluates computable plans by navigating the (simulated) web."""

    def __init__(
        self,
        scheme: WebScheme,
        client: WebClient,
        registry: WrapperRegistry,
        planner=None,
        cost_model=None,
    ):
        self.scheme = scheme
        self.client = client
        self.registry = registry
        # optional: adaptive execution re-plans switched suffixes through
        # the environment's planner and prices rule-9 decisions with its
        # cost model; both default to None (pruning + rule-8 still work)
        self.planner = planner
        self.cost_model = cost_model
        # fallback request ids for progress tracking without a journal
        self._request_ids = itertools.count(1)

    def execute(
        self,
        expr: Expr,
        *,
        options: Optional[QueryOptions] = None,
        shared_pages: Optional[Mapping[str, Optional[WebResource]]] = None,
        fetch_config: Optional[FetchConfig] = None,
        retry_policy: Optional[RetryPolicy] = None,
        cache: Optional[PageCache] = None,
        tracer=None,
        execution: Optional[str] = None,
        pipeline: Optional[PipelineConfig] = None,
        request_id: Optional[str] = None,
        board: Optional[ProgressBoard] = None,
    ) -> ExecutionResult:
        """Run one query: fresh session, per-query access accounting.

        ``options`` (a :class:`~repro.options.QueryOptions`) bundles every
        knob: ``options.fetch`` bounds the concurrent fetch pool for this
        query's batches, ``options.retry`` overrides the client's
        transient-failure handling, ``options.cache`` overrides the
        client's attached page cache (pass
        :data:`~repro.web.cache.NO_CACHE` to force uncached execution; at
        this level it must already be a resolved :class:`PageCache` —
        policy names are an environment concept, resolved by
        :class:`~repro.sites.SiteEnv`).  ``options.execution`` selects
        ``"staged"``, ``"pipelined"``, ``"columnar"`` (compiled batch
        kernels, staged access pattern), ``"columnar_pipelined"``, or
        ``"adaptive"`` / ``"adaptive_pipelined"`` evaluation (validated
        at bundle construction) — every mode produces identical answers,
        and the static modes identical page accounting; the adaptive
        modes may *prune* provably irrelevant fetches, so their page
        counts are bounded above by the static ones (docs/ADAPTIVE.md).
        ``options.pipeline`` tunes the pipelined modes, and
        ``options.tracer`` records per-operator spans (observational; the
        recorded root span lands in ``ExecutionResult.trace``).

        The individual keyword arguments are the deprecated pre-1.1
        surface: still honoured (one :class:`DeprecationWarning` per
        call), but they cannot be mixed with ``options=``.

        ``shared_pages`` pre-loads pages another query already fetched
        (the multi-query server's plan-level sharing): newly injected live
        pages are counted in the log's ``pages_shared`` — they cost this
        query nothing and appear in the *provider's* log, keeping
        ``own pages + pages_shared == solo pages`` for cache-cold runs.

        ``options.journal`` attaches this execution's correlated event
        block (request / plan / span tree / result) to an event journal;
        ``board`` publishes live per-operator progress into a
        :class:`~repro.obs.progress.ProgressBoard` under ``request_id``
        (allocated when None).  Both are observational: when either is
        active and no recording tracer was supplied, an internal one is
        attached — the tracing layer's non-interference guarantee (same
        digests, page counts, and cache counters) is what makes that
        safe, and the QA matrix's journal dimension re-proves it.
        """
        opts = coerce_options(
            options,
            fetch_config=fetch_config,
            retry_policy=retry_policy,
            cache=cache,
            tracer=tracer,
            execution=execution,
            pipeline=pipeline,
        )
        if isinstance(opts.cache, CachePolicy):
            raise OptionsError(
                f"RemoteExecutor cannot resolve cache policy "
                f"{opts.cache.value!r} — resolve it through SiteEnv, or "
                "pass a PageCache"
            )
        active_cache = (
            opts.cache if opts.cache is not None else self.client.cache
        )
        if active_cache is not None:
            # new query: per-query entries are dropped, cross-query
            # validation marks reset (the §8 "flags back to none")
            active_cache.begin_query()
        session = QuerySession(
            self.client,
            self.registry,
            fetch_config=opts.fetch,
            retry_policy=opts.retry,
            cache=opts.cache,
        )
        journal = opts.journal if opts.journal is not None else NULL_JOURNAL
        tracer = opts.tracer if opts.tracer is not None else NULL_TRACER
        if (journal.enabled or board is not None) and not tracer.enabled:
            # journaling and progress both read the span tree; recording
            # is proven non-interfering (tests/test_obs_noninterference,
            # QA trace dimension), so forcing a private recorder here
            # cannot change the answer or the page accounting
            tracer = RecordingTracer()
        if journal.enabled:
            request_id = journal.begin_request(request_id)
            journal.record(
                "plan",
                request_id,
                plan=render_expr(expr),
                execution=opts.execution,
            )
        elif board is not None and request_id is None:
            request_id = f"q{next(self._request_ids):04d}"
        if board is not None:
            if not board.known(request_id):
                board.begin(
                    request_id, operator_estimates(expr, self.cost_model)
                )
            tracer = ProgressTracer(tracer, board, request_id)
        provider = _SessionProvider(self.scheme, session)
        client = self.client
        log = client.log
        meter = lambda: (  # noqa: E731 - read-only counter snapshot
            log.page_downloads,
            log.light_connections,
            log.cache_hits,
            log.revalidations,
            log.bytes_downloaded,
            log.simulated_seconds,
        )
        if opts.execution in ("pipelined", "columnar_pipelined"):
            lanes = (opts.fetch or DEFAULT_FETCH_CONFIG).effective_workers(
                client.network
            )
            scheduler = PrefetchScheduler(log, lanes=lanes, tracer=tracer)
            executor = PipelinedExecutor(
                self.scheme,
                session,
                scheduler,
                config=opts.pipeline or DEFAULT_PIPELINE_CONFIG,
                tracer=tracer,
                columnar=opts.execution == "columnar_pipelined",
            )
        elif opts.execution == "columnar":
            executor = ColumnarExecutor(
                self.scheme, provider, tracer=tracer, meter=meter
            )
        elif opts.execution in ("adaptive", "adaptive_pipelined"):
            # both adaptive modes share the staged access pattern today:
            # relevance tests need each follow's full binding set before
            # its batch is scheduled (docs/ADAPTIVE.md)
            executor = AdaptiveExecutor(
                self.scheme,
                provider,
                tracer=tracer,
                meter=meter,
                planner=self.planner,
                cost_model=self.cost_model,
            )
        else:
            executor = LocalExecutor(
                self.scheme, provider, tracer=tracer, meter=meter
            )
        before = log.snapshot()
        if shared_pages:
            log.pages_shared += session.seed_resources(dict(shared_pages))
        previous_tracer = client.tracer
        client.tracer = tracer  # fetch-batch spans nest under operator spans
        try:
            with tracer.span(
                "execute", kind="query", plan=render_expr(expr)
            ) as span:
                relation = executor.evaluate(expr)
        except Exception as err:
            delta = log.delta(before)
            if journal.enabled and request_id is not None:
                journal.record_error(
                    request_id, err, ts=delta.simulated_seconds
                )
            if board is not None and request_id is not None:
                board.finish(request_id)
            raise
        finally:
            client.tracer = previous_tracer
        delta = log.delta(before)
        trace = None
        if tracer.enabled and isinstance(span, Span):
            span.set(
                pages=delta.page_downloads,
                light_connections=delta.light_connections,
                cache_hits=delta.cache_hits,
                revalidations=delta.revalidations,
                seconds=delta.simulated_seconds,
                tuples_out=len(relation.rows),
            )
            trace = span
        if journal.enabled and request_id is not None:
            journal.record_execution(
                request_id,
                root=trace,
                ts=delta.simulated_seconds,
                rows=len(relation.rows),
                digest=relation_digest(relation),
                pages=delta.page_downloads,
                light_connections=delta.light_connections,
                cache_hits=delta.cache_hits,
                revalidations=delta.revalidations,
                pages_shared=delta.pages_shared,
                bytes=delta.bytes_downloaded,
                seconds=delta.simulated_seconds,
            )
        if board is not None and request_id is not None:
            board.finish(request_id)
        report = getattr(executor, "report", None)
        return ExecutionResult(relation, delta, trace=trace, adaptive=report)
