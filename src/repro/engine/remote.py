"""Remote evaluation: NALG plans against the live (simulated) web.

This is the virtual-view execution path of Sections 5–7: entry points are
downloaded through their known URLs, follow-link operators download the
distinct link targets, wrappers turn HTML into nested tuples, and all
relational work happens locally at zero cost.  The per-query
:class:`~repro.engine.session.QuerySession` guarantees each page is
downloaded at most once per query, which makes the measured
``page_downloads`` directly comparable to the paper's cost function C(E).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.adm.scheme import WebScheme
from repro.algebra.ast import Expr
from repro.engine.local import LocalExecutor
from repro.engine.session import QuerySession
from repro.nested.relation import Relation
from repro.web.client import AccessLog, WebClient
from repro.wrapper.wrapper import WrapperRegistry

__all__ = ["ExecutionResult", "RemoteExecutor"]


@dataclass
class ExecutionResult:
    """The answer relation plus the measured network cost of producing it."""

    relation: Relation
    log: AccessLog

    @property
    def pages(self) -> int:
        """Distinct pages downloaded — the paper's cost measure."""
        return self.log.page_downloads

    def __repr__(self) -> str:
        return (
            f"ExecutionResult({len(self.relation)} rows, "
            f"{self.pages} pages, {self.log.bytes_downloaded} bytes)"
        )


class _SessionProvider:
    """PageRelationProvider that downloads pages through a QuerySession."""

    def __init__(self, scheme: WebScheme, session: QuerySession):
        self.scheme = scheme
        self.session = session

    def entry_tuple(self, page_scheme: str) -> Optional[dict]:
        url = self.scheme.entry_point(page_scheme).url
        return self.session.fetch_tuple(page_scheme, url)

    def target_tuples(
        self, page_scheme: str, urls: Sequence[str]
    ) -> dict[str, dict]:
        result = {}
        for url in urls:
            plain = self.session.fetch_tuple(page_scheme, url)
            if plain is not None:
                result[url] = plain
        return result


class RemoteExecutor:
    """Evaluates computable plans by navigating the (simulated) web."""

    def __init__(
        self,
        scheme: WebScheme,
        client: WebClient,
        registry: WrapperRegistry,
    ):
        self.scheme = scheme
        self.client = client
        self.registry = registry

    def execute(self, expr: Expr) -> ExecutionResult:
        """Run one query: fresh session, per-query access accounting."""
        session = QuerySession(self.client, self.registry)
        provider = _SessionProvider(self.scheme, session)
        executor = LocalExecutor(self.scheme, provider)
        before = self.client.log.snapshot()
        relation = executor.evaluate(expr)
        return ExecutionResult(relation, self.client.log.delta(before))
