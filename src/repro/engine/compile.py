"""One-shot plan compilation: NALG expressions → specialized closures.

The interpreted executors re-decide everything per tuple: which operator
class a node is (``isinstance`` ladders), which dict key a predicate
probes (``row.get(attr)``), which wrapper attribute feeds which qualified
field (``qualify_row`` walks the schema per row).  None of that depends
on the data — it is all fixed the moment the plan and the web scheme are
known.  :func:`compile_plan` resolves it exactly once:

* every node becomes a :class:`CompiledNode` carrying its output schema,
  a stable **preorder** ``node_id`` (0 at the root, children in
  ``children()`` order — the same numbering the EXPLAIN ANALYZE renderer
  derives from its own walk, see :func:`repro.obs.explain.plan_report`),
  and kind-specific closures;
* attribute names are resolved to **column offsets** against the child's
  pinned schema (predicate accessors, projection gathers, join pairs,
  unnest positions, link columns);
* page-tuple extraction paths (``provenance.path.leaf`` per field)
  become a ``build_row`` closure mapping one plain wrapped tuple to a
  value tuple in schema order — the columnar ``qualify_row``.

:class:`ColumnarExecutor` then evaluates the compiled plan over
:class:`~repro.engine.columnar.ColumnBatch` values with the kernels of
:mod:`repro.engine.columnar`, converting to a
:class:`~repro.nested.relation.Relation` only at the result boundary.
It is a drop-in replacement for
:class:`~repro.engine.local.LocalExecutor` (same provider protocol, same
operator spans and meter deltas, same answers bit-for-bit) selected via
``execution="columnar"``; the pipelined executor reuses the same
compiled nodes for ``execution="columnar_pipelined"``.

Compiled plans are cached on the scheme object itself (mirroring the
schema cache in :mod:`repro.algebra.ast`), so repeated executions of the
same plan pay the compilation cost once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.adm.scheme import WebScheme
from repro.algebra.ast import (
    EntryPointScan,
    Expr,
    ExternalRelScan,
    FollowLink,
    Join,
    Project,
    Select,
    Unnest,
    page_relation_schema,
)
from repro.algebra.computable import check_computable
from repro.algebra.predicates import AttrEq, Comparison, In, Predicate
from repro.engine.columnar import (
    ColumnBatch,
    distinct_links,
    first_occurrences,
    follow_batch,
    join_batches,
    product_batches,
    unnest_batch,
)
from repro.engine.local import PageRelationProvider, qualify_row
from repro.errors import AlgebraError, NotComputableError
from repro.nested.relation import Relation, canonical_value
from repro.nested.schema import RelationSchema
from repro.obs.trace import NULL_TRACER

__all__ = ["CompiledNode", "CompiledPlan", "ColumnarExecutor", "compile_plan"]

#: one plain wrapped page tuple → a value tuple in page-schema order
TupleBuilder = Callable[[dict], tuple]
#: batch → surviving row indexes (a compiled predicate)
Mask = Callable[[ColumnBatch], list]
#: gathered batch → one hashable dedup key per row
KeyFn = Callable[[ColumnBatch], list]


@dataclass
class CompiledNode:
    """One plan operator with everything name-shaped resolved to offsets.

    ``kind`` selects which of the optional payload fields are set:
    ``entry`` (``page_scheme`` + ``build_row``), ``follow``
    (``link_attr``/``link_index``/``target_page_scheme``/
    ``target_schema``/``build_row``), ``select`` (``mask``), ``project``
    (``gather_indexes`` + ``dedup_keys``), ``unnest``
    (``list_index``/``elem_names``), ``join`` (``join_pairs``, empty for
    a product).
    """

    node_id: int
    expr: Expr
    kind: str
    span_name: str
    op: str
    schema: RelationSchema
    children: tuple["CompiledNode", ...]
    # entry + follow
    page_scheme: Optional[str] = None
    build_row: Optional[TupleBuilder] = None
    # follow
    link_attr: Optional[str] = None
    link_index: int = -1
    target_page_scheme: Optional[str] = None
    target_schema: Optional[RelationSchema] = None
    #: ``url -> (plain, values)`` memo of built target tuples, shared by
    #: every evaluation of this compiled plan and validated by plain
    #: tuple *identity* — a refetched or revalidated page parses into a
    #: new dict, so a hit can only mean the same snapshot
    target_memo: Optional[dict] = None
    # select
    mask: Optional[Mask] = None
    # project
    gather_indexes: tuple[int, ...] = ()
    dedup_keys: Optional[KeyFn] = None
    # unnest
    list_index: int = -1
    elem_names: tuple[str, ...] = ()
    #: set when the unnest was fused with the entry/follow child that
    #: produces the list: the child keeps the list column *raw* (plain
    #: wrapped sub-tuples, never qualified) and the unnest extracts the
    #: elements by these plain leaf names instead of ``elem_names``
    elem_keys: tuple[str, ...] = ()
    # join: ((left_offset, right_offset), ...); empty means product
    join_pairs: tuple[tuple[int, int], ...] = ()

    def walk(self):
        """This node and every descendant, preorder (= by node_id)."""
        yield self
        for child in self.children:
            yield from child.walk()


@dataclass
class CompiledPlan:
    """A compiled plan: the root node plus the preorder node count."""

    root: CompiledNode
    node_count: int


def compile_plan(expr: Expr, scheme: WebScheme) -> CompiledPlan:
    """Compile ``expr`` against ``scheme`` once (cached on the scheme).

    Raises the same errors interpretation would: NotComputableError for
    external-relation leaves, AlgebraError for schema violations (which
    :meth:`Expr.output_schema` checks node by node).
    """
    cache = scheme.__dict__.setdefault("_compiled_plan_cache", {})
    cached = cache.get(expr)
    if cached is None:
        check_computable(expr, scheme)
        counter = [0]
        root = _compile(expr, scheme, counter)
        cached = CompiledPlan(root, counter[0])
        if len(cache) > 4096:
            cache.clear()
        cache[expr] = cached
    return cached


# --------------------------------------------------------------------- #
# the compilation pass
# --------------------------------------------------------------------- #


def _atom_extractor(leaf: str) -> Callable[[dict], object]:
    def extract(plain: dict) -> object:
        return plain.get(leaf)

    return extract


def _list_extractor(
    leaf: str, elem_schema: RelationSchema
) -> Callable[[dict], object]:
    # Flat elements (the overwhelmingly common case) get a precompiled
    # zip of qualified names over plain-leaf probes; elements that nest
    # further lists fall back to the recursive qualify_row.
    names: list = []
    leaves: list = []
    flat = True
    for field in elem_schema:
        if field.is_list or field.provenance is None:
            flat = False
            break
        names.append(field.name)
        leaves.append(field.provenance.path.leaf)
    if not flat:

        def extract(plain: dict) -> object:
            return [
                qualify_row(elem_schema, sub)
                for sub in (plain.get(leaf) or [])
            ]

        return extract

    frozen_names, frozen_leaves = tuple(names), tuple(leaves)

    def extract_flat(plain: dict) -> object:
        subs = plain.get(leaf)
        if not subs:
            return []
        return [
            dict(zip(frozen_names, map(sub.get, frozen_leaves)))
            for sub in subs
        ]

    return extract_flat


def _tuple_builder(
    schema: RelationSchema, raw_lists: frozenset = frozenset()
) -> TupleBuilder:
    """The columnar ``qualify_row``: leaf names and nested element schemas
    are resolved at compile time, so building a page row is one tuple of
    direct ``dict.get`` probes (nested lists still qualify recursively —
    only the top level is columnar).

    List fields named in ``raw_lists`` are left as the raw plain
    sub-tuple lists (a fused unnest consumes them by leaf name, so
    qualifying them would be pure waste).  When every field reduces to a
    direct probe the builder compiles to a single C-level ``map``."""
    extractors = []
    leaves: list = []
    direct_only = True
    for field in schema:
        assert field.provenance is not None, "page schemas carry provenance"
        leaf = field.provenance.path.leaf
        leaves.append(leaf)
        if field.is_list and field.name not in raw_lists:
            direct_only = False
            assert field.elem is not None
            extractors.append(_list_extractor(leaf, field.elem))
        else:
            extractors.append(_atom_extractor(leaf))

    if direct_only:
        frozen_leaves = tuple(leaves)

        def build_atoms(plain: dict) -> tuple:
            return tuple(map(plain.get, frozen_leaves))

        return build_atoms

    frozen = tuple(extractors)

    def build_row(plain: dict) -> tuple:
        return tuple(extract(plain) for extract in frozen)

    return build_row


def _fuse_unnest(child: CompiledNode, attr: str) -> tuple[str, ...]:
    """Try to fuse an unnest with the entry/follow child producing its
    list: rebuild the child's tuple builder to keep the list raw and
    return the plain leaf names the unnest should extract by.  Returns
    ``()`` (no fusion) when the child is not a page producer, the list
    comes from further down the plan, or the elements nest more lists."""
    if child.kind == "entry":
        builder_schema = child.schema
    elif child.kind == "follow":
        assert child.target_schema is not None
        builder_schema = child.target_schema
    else:
        return ()
    if attr not in builder_schema.names():
        return ()  # the list predates this page fetch
    field = builder_schema.field(attr)
    if field.elem is None:
        return ()
    keys = []
    for elem_field in field.elem:
        if elem_field.is_list or elem_field.provenance is None:
            return ()  # deeper nesting: keep the qualified form
        keys.append(elem_field.provenance.path.leaf)
    child.build_row = _tuple_builder(builder_schema, frozenset((attr,)))
    return tuple(keys)


def _compile_predicate(predicate: Predicate, schema: RelationSchema) -> Mask:
    """Resolve each conjunct to a column test; unknown atom kinds fall
    back to interpreting ``atom.evaluate`` over a rebuilt row dict (the
    documented interpretation fallback — semantics over speed)."""
    names = list(schema.names())
    tests: list[Callable[[list, list], list]] = []
    for atom in predicate.atoms:
        if isinstance(atom, Comparison):
            offset, value = names.index(atom.attr), atom.value

            def eq_test(columns, keep, _o=offset, _v=value):
                column = columns[_o]
                return [i for i in keep if column[i] == _v]

            tests.append(eq_test)
        elif isinstance(atom, AttrEq):
            left, right = names.index(atom.left), names.index(atom.right)

            def attr_test(columns, keep, _l=left, _r=right):
                left_column, right_column = columns[_l], columns[_r]
                return [
                    i
                    for i in keep
                    if left_column[i] is not None
                    and left_column[i] == right_column[i]
                ]

            tests.append(attr_test)
        elif isinstance(atom, In):
            offset, values = names.index(atom.attr), frozenset(atom.values)

            def in_test(columns, keep, _o=offset, _v=values):
                column = columns[_o]
                return [i for i in keep if column[i] in _v]

            tests.append(in_test)
        else:  # pragma: no cover - no such atom kind exists today

            def fallback_test(columns, keep, _atom=atom):
                return [
                    i
                    for i in keep
                    if _atom.evaluate(
                        {name: columns[j][i] for j, name in enumerate(names)}
                    )
                ]

            tests.append(fallback_test)

    def mask(batch: ColumnBatch) -> list:
        keep: list = list(range(batch.num_rows))
        columns = batch.columns
        for test in tests:
            if not keep:
                break
            keep = test(columns, keep)
        return keep

    return mask


def _compile(expr: Expr, scheme: WebScheme, counter: list) -> CompiledNode:
    node_id = counter[0]
    counter[0] += 1
    schema = expr.output_schema(scheme)  # validates the node's names
    children = tuple(
        _compile(child, scheme, counter) for child in expr.children()
    )
    op = type(expr).__name__

    if isinstance(expr, EntryPointScan):
        return CompiledNode(
            node_id=node_id,
            expr=expr,
            kind="entry",
            span_name=f"entry {expr.page_scheme}",
            op=op,
            schema=schema,
            children=children,
            page_scheme=expr.page_scheme,
            build_row=_tuple_builder(schema),
        )
    if isinstance(expr, FollowLink):
        child_schema = children[0].schema
        target = expr.target_scheme(scheme)
        target_schema = page_relation_schema(
            scheme, target, expr.target_alias(scheme)
        )
        return CompiledNode(
            node_id=node_id,
            expr=expr,
            kind="follow",
            span_name=f"follow →{expr.link_attr}",
            op=op,
            schema=schema,
            children=children,
            link_attr=expr.link_attr,
            link_index=child_schema.names().index(expr.link_attr),
            target_page_scheme=target,
            target_schema=target_schema,
            build_row=_tuple_builder(target_schema),
            target_memo={},
        )
    if isinstance(expr, Unnest):
        child_schema = children[0].schema
        field = child_schema.field(expr.attr)
        assert field.elem is not None
        return CompiledNode(
            node_id=node_id,
            expr=expr,
            kind="unnest",
            span_name=f"unnest {expr.attr}",
            op=op,
            schema=schema,
            children=children,
            list_index=child_schema.names().index(expr.attr),
            elem_names=field.elem.names(),
            elem_keys=_fuse_unnest(children[0], expr.attr),
        )
    if isinstance(expr, Select):
        return CompiledNode(
            node_id=node_id,
            expr=expr,
            kind="select",
            span_name="select",
            op=op,
            schema=schema,
            children=children,
            mask=_compile_predicate(expr.predicate, children[0].schema),
        )
    if isinstance(expr, Project):
        child_schema = children[0].schema
        names = list(child_schema.names())
        indexes = tuple(names.index(name) for name in expr.in_names())
        if any(child_schema.field(name).is_list for name in expr.in_names()):
            # list values are unhashable; key on canonical forms (the
            # same information canonical_row orders by name)
            def dedup_keys(batch: ColumnBatch) -> list:
                columns = batch.columns
                return [
                    tuple(canonical_value(column[i]) for column in columns)
                    for i in range(batch.num_rows)
                ]

        else:
            # atom-only outputs: the raw value tuple in (fixed) schema
            # order is equality-equivalent to canonical_row
            def dedup_keys(batch: ColumnBatch) -> list:
                if not batch.columns:
                    return []
                return list(zip(*batch.columns))

        return CompiledNode(
            node_id=node_id,
            expr=expr,
            kind="project",
            span_name="project",
            op=op,
            schema=schema,
            children=children,
            gather_indexes=indexes,
            dedup_keys=dedup_keys,
        )
    if isinstance(expr, Join):
        left_names = list(children[0].schema.names())
        right_names = list(children[1].schema.names())
        pairs = tuple(
            (left_names.index(left), right_names.index(right))
            for left, right in expr.on
        )
        return CompiledNode(
            node_id=node_id,
            expr=expr,
            kind="join",
            span_name="join",
            op=op,
            schema=schema,
            children=children,
            join_pairs=pairs,
        )
    if isinstance(expr, ExternalRelScan):
        raise NotComputableError(
            f"external relation {expr.name!r} reached the compiler"
        )
    raise AlgebraError(f"cannot compile {type(expr).__name__}")


# --------------------------------------------------------------------- #
# batch transforms shared by the staged and pipelined columnar backends
# --------------------------------------------------------------------- #


def apply_select(node: CompiledNode, batch: ColumnBatch) -> ColumnBatch:
    assert node.mask is not None
    keep = node.mask(batch)
    if len(keep) == batch.num_rows:
        return batch
    return batch.gather(keep)


def apply_unnest(node: CompiledNode, batch: ColumnBatch) -> ColumnBatch:
    return unnest_batch(
        batch, node.list_index, node.elem_names, node.schema, node.elem_keys
    )


def apply_project(
    node: CompiledNode, batch: ColumnBatch, seen: set
) -> ColumnBatch:
    """Gather the output columns and keep first occurrences; ``seen``
    belongs to the caller (one set per operator evaluation) so the
    pipelined backend can dedup across chunks."""
    assert node.dedup_keys is not None
    gathered = ColumnBatch(
        node.schema, [batch.columns[i] for i in node.gather_indexes]
    )
    take = first_occurrences(node.dedup_keys(gathered), seen)
    if len(take) == gathered.num_rows:
        return gathered
    return gathered.gather(take)


def apply_join(
    node: CompiledNode, left: ColumnBatch, right: ColumnBatch
) -> ColumnBatch:
    if not node.join_pairs:
        return product_batches(left, right, node.schema)
    return join_batches(
        left, right, node.join_pairs[0], node.join_pairs[1:], node.schema
    )


def apply_follow(
    node: CompiledNode, batch: ColumnBatch, targets: dict
) -> ColumnBatch:
    return follow_batch(batch, node.link_index, targets, node.schema)


# --------------------------------------------------------------------- #
# the staged columnar executor
# --------------------------------------------------------------------- #


class ColumnarExecutor:
    """Compiled, batch-at-a-time evaluation of computable NALG plans.

    Drop-in for :class:`~repro.engine.local.LocalExecutor`: the same
    :class:`~repro.engine.local.PageRelationProvider` protocol, the same
    staged access pattern (one bulk ``target_tuples`` call per follow
    operator, so page accounting is identical), the same per-operator
    spans and meter deltas — but the spans' ``node_id`` is the compiled
    preorder number and all relational work runs the columnar kernels.
    The answer relation is built once, at the result boundary.
    """

    def __init__(
        self,
        scheme: WebScheme,
        provider: PageRelationProvider,
        tracer=None,
        meter: Optional[Callable[[], tuple]] = None,
    ):
        self.scheme = scheme
        self.provider = provider
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.meter = meter

    def evaluate(self, expr: Expr) -> Relation:
        """Evaluate ``expr``; raises NotComputableError for bad plans.

        The computability walk happens inside :func:`compile_plan`, so
        repeated evaluations of a compiled plan skip it entirely."""
        plan = compile_plan(expr, self.scheme)
        return self._eval(plan.root).to_relation()

    # ------------------------------------------------------------------ #

    def _eval(self, node: CompiledNode) -> ColumnBatch:
        tracer = self.tracer
        if not tracer.enabled:
            return self._eval_node(node)
        with tracer.span(
            node.span_name,
            kind="operator",
            node_id=node.node_id,
            op=node.op,
        ) as span:
            before = self.meter() if self.meter is not None else None
            batch = self._eval_node(node)
            if before is not None:
                after = self.meter()
                span.set(
                    pages=after[0] - before[0],
                    light_connections=after[1] - before[1],
                    cache_hits=after[2] - before[2],
                    revalidations=after[3] - before[3],
                    bytes=after[4] - before[4],
                    seconds=after[5] - before[5],
                    t0=before[5],
                    t1=after[5],
                )
            span.set(tuples_out=batch.num_rows)
            return batch

    def _eval_node(self, node: CompiledNode) -> ColumnBatch:
        kind = node.kind
        if kind == "entry":
            return self._eval_entry(node)
        if kind == "follow":
            return self._eval_follow(node)
        if kind == "unnest":
            return apply_unnest(node, self._eval(node.children[0]))
        if kind == "select":
            return apply_select(node, self._eval(node.children[0]))
        if kind == "project":
            return apply_project(node, self._eval(node.children[0]), set())
        if kind == "join":
            left = self._eval(node.children[0])
            right = self._eval(node.children[1])
            return apply_join(node, left, right)
        raise AlgebraError(f"cannot evaluate compiled kind {kind!r}")

    def _eval_entry(self, node: CompiledNode) -> ColumnBatch:
        assert node.page_scheme is not None and node.build_row is not None
        entry_tuples = getattr(self.provider, "entry_tuples", None)
        if entry_tuples is not None:
            plain = entry_tuples([node.page_scheme]).get(node.page_scheme)
        else:  # deprecated single-page providers
            plain = self.provider.entry_tuple(node.page_scheme)
        if plain is None:
            return ColumnBatch.empty(node.schema)
        return ColumnBatch.from_tuples(node.schema, [node.build_row(plain)])

    def _eval_follow(self, node: CompiledNode) -> ColumnBatch:
        assert node.target_page_scheme is not None
        assert node.build_row is not None
        child = self._eval(node.children[0])
        urls = distinct_links(child.columns[node.link_index])
        plain_by_url = self.provider.target_tuples(
            node.target_page_scheme, urls
        )
        # Built value tuples are memoized on the compiled node against
        # the *identity* of the provider's plain tuple (see target_memo)
        # — repeated evaluations of the plan skip the rebuild entirely.
        memo = node.target_memo
        assert memo is not None
        build_row = node.build_row
        targets = {}
        for url, plain in plain_by_url.items():
            entry = memo.get(url)
            if entry is not None and entry[0] is plain:
                targets[url] = entry[1]
            else:
                values = build_row(plain)
                memo[url] = (plain, values)
                targets[url] = values
        return apply_follow(node, child, targets)
