"""Per-query page cache.

The paper's cost model counts the number of pages downloaded to answer one
query; within a query, a page reached through two different paths is fetched
once.  :class:`QuerySession` provides exactly that: a fetch-through cache on
top of a :class:`~repro.web.client.WebClient`, plus wrapped-tuple caching so
a page is also parsed only once.

The session is batch-first: :meth:`fetch_tuples` hands a whole URL set to
:meth:`WebClient.get_batch`, which overlaps the round trips over a bounded
worker pool (per the session's :class:`~repro.web.client.FetchConfig`).
The cache sits in front of the batch, so duplicate URLs — within one batch
or across batches of the same query — are downloaded at most once no matter
the concurrency level, keeping measured ``page_downloads`` equal to the
paper's cost function.

Below the session sits the optional *cross-query*
:class:`~repro.web.cache.PageCache` (``cache=``, forwarded to the client):
the session guarantees one download per page per query, the page cache
turns repeat downloads across queries into free hits or light-connection
revalidations.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.clock import BatchSchedule
from repro.errors import ResourceNotFound
from repro.web.cache import PageCache
from repro.web.client import FetchConfig, RetryPolicy, WebClient
from repro.web.resources import WebResource
from repro.wrapper.wrapper import WrapperRegistry

__all__ = ["QuerySession"]


class QuerySession:
    """Fetch-and-wrap cache for the duration of one query."""

    def __init__(
        self,
        client: WebClient,
        registry: WrapperRegistry,
        fetch_config: Optional[FetchConfig] = None,
        retry_policy: Optional[RetryPolicy] = None,
        cache: Optional[PageCache] = None,
    ):
        self.client = client
        self.registry = registry
        self.fetch_config = fetch_config
        self.retry_policy = retry_policy
        self.cache = cache  # None → the client's attached cache
        self._resources: dict[str, Optional[WebResource]] = {}
        self._tuples: dict[tuple, Optional[dict]] = {}

    def seed_resources(
        self, pages: dict[str, Optional[WebResource]]
    ) -> int:
        """Pre-load already-fetched pages into the session (plan-level
        sharing: the multi-query server's navigator hands each subscribed
        query the pages of its navigation prefix).  URLs the session
        already holds are left untouched — the first fetch wins, exactly
        as within a query.  Returns the number of newly injected *live*
        pages (``None`` entries mark known-missing URLs: injected too, so
        the query skips the doomed fetch, but not counted — a solo run
        would not have counted them as downloads either)."""
        injected = 0
        for url, resource in pages.items():
            if url not in self._resources:
                self._resources[url] = resource
                if resource is not None:
                    injected += 1
        return injected

    def fetch(self, url: str) -> Optional[WebResource]:
        """Download ``url`` (at most once per session).  Returns None for
        missing pages (dangling links are tolerated and skipped)."""
        if url not in self._resources:
            try:
                self._resources[url] = self.client.get(
                    url, retry=self.retry_policy, cache=self.cache
                )
            except ResourceNotFound:
                self._resources[url] = None
        return self._resources[url]

    def fetch_batch(
        self,
        urls: Sequence[str],
        schedule: Optional[BatchSchedule] = None,
    ) -> dict[str, Optional[WebResource]]:
        """Download a whole batch of URLs through the client's worker pool.

        Cached URLs are served from the session, so each page costs at most
        one download per query regardless of how many batches mention it.
        Missing pages map to None.  ``schedule`` (pipelined execution)
        places the batch's fetches on a shared timeline instead of a
        private per-batch one; see :meth:`WebClient.get_batch`.  A batch
        fully served from the session completes at ``schedule.ready`` —
        nothing new was fetched.
        """
        needed: list[str] = []
        seen: set[str] = set()
        for url in urls:
            if url not in seen and url not in self._resources:
                seen.add(url)
                needed.append(url)
        if schedule is not None:
            schedule.completed = max(schedule.completed, schedule.ready)
        if needed:
            fetched = self.client.get_batch(
                needed,
                config=self.fetch_config,
                retry=self.retry_policy,
                cache=self.cache,
                schedule=schedule,
            )
            self._resources.update(fetched)
        return {url: self._resources[url] for url in urls if url in self._resources}

    def fetch_tuple(self, page_scheme: str, url: str) -> Optional[dict]:
        """Download and wrap the page at ``url`` as ``page_scheme`` (cached).

        Returns the plain nested tuple, or None when the page is missing.
        """
        key = (page_scheme, url)
        if key not in self._tuples:
            resource = self.fetch(url)
            if resource is None:
                self._tuples[key] = None
            else:
                self._tuples[key] = self.registry.wrap(
                    page_scheme, url, resource.html
                )
        return self._tuples[key]

    def fetch_tuples(
        self,
        page_scheme: str,
        urls: Sequence[str],
        schedule: Optional[BatchSchedule] = None,
    ) -> dict[str, dict]:
        """Batch counterpart of :meth:`fetch_tuple`: download all uncached
        ``urls`` as one batch, wrap each page once, and return the plain
        tuples keyed by URL (missing pages are simply absent).
        ``schedule`` is forwarded to :meth:`fetch_batch`."""
        self.fetch_batch(
            [url for url in urls if (page_scheme, url) not in self._tuples],
            schedule=schedule,
        )
        result: dict[str, dict] = {}
        for url in urls:
            key = (page_scheme, url)
            if key not in self._tuples:
                resource = self._resources.get(url)
                if resource is None:
                    self._tuples[key] = None
                else:
                    self._tuples[key] = self.registry.wrap(
                        page_scheme, url, resource.html
                    )
            if self._tuples[key] is not None:
                result[url] = self._tuples[key]
        return result

    def touched_resources(self) -> dict[str, Optional[WebResource]]:
        """URL → resource for every page an evaluation through this
        session actually *wrapped* (entry pages and follow targets alike;
        ``None`` marks URLs that turned out missing).  Seeded-but-unused
        pages (:meth:`seed_resources`) are excluded — this is exactly the
        page set a solo run of the same evaluation would have requested,
        which is what the multi-query server fans out per prefix."""
        return {
            url: self._resources.get(url) for (_scheme, url) in self._tuples
        }

    @property
    def pages_downloaded(self) -> int:
        """Distinct pages actually downloaded in this session."""
        return sum(1 for r in self._resources.values() if r is not None)
