"""Per-query page cache.

The paper's cost model counts the number of pages downloaded to answer one
query; within a query, a page reached through two different paths is fetched
once.  :class:`QuerySession` provides exactly that: a fetch-through cache on
top of a :class:`~repro.web.client.WebClient`, plus wrapped-tuple caching so
a page is also parsed only once.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ResourceNotFound
from repro.web.client import WebClient
from repro.web.resources import WebResource
from repro.wrapper.wrapper import WrapperRegistry

__all__ = ["QuerySession"]


class QuerySession:
    """Fetch-and-wrap cache for the duration of one query."""

    def __init__(self, client: WebClient, registry: WrapperRegistry):
        self.client = client
        self.registry = registry
        self._resources: dict[str, Optional[WebResource]] = {}
        self._tuples: dict[tuple, dict] = {}

    def fetch(self, url: str) -> Optional[WebResource]:
        """Download ``url`` (at most once per session).  Returns None for
        missing pages (dangling links are tolerated and skipped)."""
        if url not in self._resources:
            try:
                self._resources[url] = self.client.get(url)
            except ResourceNotFound:
                self._resources[url] = None
        return self._resources[url]

    def fetch_tuple(self, page_scheme: str, url: str) -> Optional[dict]:
        """Download and wrap the page at ``url`` as ``page_scheme`` (cached).

        Returns the plain nested tuple, or None when the page is missing.
        """
        key = (page_scheme, url)
        if key not in self._tuples:
            resource = self.fetch(url)
            if resource is None:
                self._tuples[key] = None
            else:
                self._tuples[key] = self.registry.wrap(
                    page_scheme, url, resource.html
                )
        return self._tuples[key]

    @property
    def pages_downloaded(self) -> int:
        """Distinct pages actually downloaded in this session."""
        return sum(1 for r in self._resources.values() if r is not None)
