"""Pipelined plan evaluation with non-speculative link prefetch.

Staged execution (:class:`~repro.engine.local.LocalExecutor` driven by
:class:`~repro.engine.remote.RemoteExecutor`) treats every operator as a
barrier: a follow-link stage hands *all* its distinct URLs to
:meth:`WebClient.get_batch` as one batch, the batch gets a private
:class:`~repro.clock.Timeline`, and the simulated clock advances by the
batch's makespan before the next operator runs.  At ``k`` parallel
connections the lanes therefore drain at every stage boundary, and the
measured makespan sits far above the ``k``-lane lower bound.

This module removes the barriers without changing a single access:

* operators exchange bounded **chunks** (:class:`_Chunk`) — each a
  :class:`~repro.engine.columnar.ColumnBatch` plus the simulated instant
  its rows became available (``ready``);
* every follow-link stage enqueues one fetch batch per input chunk into
  the query's :class:`PrefetchScheduler` the moment that chunk's source
  tuples are complete, up to a backpressure bound of
  ``max_inflight_batches`` batches ahead of downstream consumption;
* all batches land on one *shared* ``k``-lane
  :class:`~repro.clock.Timeline` (via :class:`~repro.clock.BatchSchedule`),
  where a fetch may start no earlier than its chunk's ``ready`` instant —
  so downstream I/O overlaps the *tail* of upstream I/O exactly as a real
  pipelined client would, and never earlier.

The executor always compiles the plan once
(:func:`~repro.engine.compile.compile_plan`), which pins every stage's
schema, stable preorder ``node_id``, and column offsets.  How each chunk
is *transformed* is then a per-query choice:

* ``execution="pipelined"`` interprets each chunk through the reference
  row operators (:mod:`repro.nested.operations` via
  :class:`~repro.nested.relation.Relation`), pivoting rows in and out of
  the batch at stage boundaries — the semantics oracle;
* ``execution="columnar_pipelined"`` runs the compiled whole-column
  kernels of :mod:`repro.engine.columnar` directly on the batches — same
  chunks, same fetches, same answers, a fraction of the interpreter CPU.

**The non-speculation invariant.**  Only URLs the serial plan provably
fetches are ever enqueued: a follow stage reads link values off actual
child tuples (never guesses), chunk concatenation preserves the staged
row order, and the per-query :class:`~repro.engine.session.QuerySession`
dedups across batches.  Consequently ``CostSummary.pages``, the
``AccessLog`` records, cache hits/revalidations, and the result relation
are bit-for-bit identical to staged execution — only
``simulated_seconds`` (the makespan) changes, and at any configuration
with at least two in-flight batches of lookahead (the default has four)
it only ever drops (see :class:`PipelineConfig` for the one-batch
caveat).  The QA differential oracle's ``exec`` dimension
(:mod:`repro.qa.oracle`) enforces this equivalence across every
cache/fault/worker cell, for both chunk backends.

With one connection (``k = 1``) there is nothing to overlap, so the
executor degenerates to exact staged behaviour: a single chunk per
operator and the client's serial per-batch accounting, giving bit-for-bit
equality *including* float-exact ``simulated_seconds``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterator, Optional, cast

from repro.adm.scheme import WebScheme
from repro.algebra.ast import Expr, Join, Project, Select, Unnest
from repro.algebra.computable import check_computable
from repro.clock import BatchSchedule, Timeline
from repro.engine.columnar import ColumnBatch
from repro.engine.compile import (
    CompiledNode,
    apply_follow,
    apply_join,
    apply_project,
    apply_select,
    apply_unnest,
    compile_plan,
)
from repro.engine.local import qualify_row
from repro.engine.session import QuerySession
from repro.errors import AlgebraError, ExecutionModeError
from repro.nested.relation import Relation, canonical_row
from repro.obs.trace import NULL_TRACER
from repro.web.client import AccessLog

__all__ = [
    "EXECUTION_MODES",
    "coerce_execution",
    "PipelineConfig",
    "PrefetchScheduler",
    "PipelinedExecutor",
]

#: Execution modes understood by ``RemoteExecutor.execute`` and
#: ``SiteEnv.query`` / ``SiteEnv.execute``.  ``staged`` and ``pipelined``
#: interpret row operators; ``columnar`` and ``columnar_pipelined`` run
#: the same plans through the compiled batch kernels
#: (:mod:`repro.engine.compile`) with identical answers and accounting;
#: ``adaptive`` and ``adaptive_pipelined`` layer runtime relevance
#: pruning and mid-query pointer-join ↔ pointer-chase switching on the
#: staged core (:mod:`repro.engine.adaptive`, docs/ADAPTIVE.md) — same
#: answers, never more pages.
EXECUTION_MODES = (
    "staged",
    "pipelined",
    "columnar",
    "columnar_pipelined",
    "adaptive",
    "adaptive_pipelined",
)


def coerce_execution(execution: str) -> str:
    """Validate an ``execution=`` argument; returns the canonical mode.

    Raises :class:`~repro.errors.ExecutionModeError` (a typed
    ``ValueError``) for anything not in :data:`EXECUTION_MODES` — an
    unknown mode must never silently fall back to staged execution.
    """
    if isinstance(execution, str):
        mode = execution.strip().lower()
        if mode in EXECUTION_MODES:
            return mode
    raise ExecutionModeError(
        f"unknown execution mode {execution!r} "
        f"(choose from {', '.join(EXECUTION_MODES)})"
    )


@dataclass(frozen=True)
class PipelineConfig:
    """Tuning knobs for pipelined execution.

    ``chunk_size`` bounds how many tuples one chunk carries between
    operators (smaller chunks → finer-grained overlap, more batches);
    ``max_inflight_batches`` is the backpressure bound: a follow stage
    never holds more than this many submitted-but-unconsumed batches.
    Neither knob can change an answer or a page count — only the shape of
    the shared timeline.

    A bound of one disables lookahead entirely: each stage alternates
    strictly with its consumer, and on chain plans the greedy lane
    placement can then exceed the staged makespan by a few percent (a
    committed downstream placement blocks the upstream critical path —
    the classic list-scheduling anomaly).  From two in-flight batches up,
    upstream placement leads downstream and the pipelined makespan never
    exceeded staged anywhere in the QA matrix; the default keeps a
    comfortable margin.
    """

    chunk_size: int = 8
    max_inflight_batches: int = 4

    def __post_init__(self) -> None:
        if self.chunk_size < 1:
            raise ValueError(
                f"chunk_size must be >= 1, got {self.chunk_size}"
            )
        if self.max_inflight_batches < 1:
            raise ValueError(
                "max_inflight_batches must be >= 1, got "
                f"{self.max_inflight_batches}"
            )


DEFAULT_PIPELINE_CONFIG = PipelineConfig()


class PrefetchScheduler:
    """Owns the query-scoped shared timeline and the in-flight accounting.

    One scheduler is created per pipelined query.  Follow stages call
    :meth:`open_batch` to place a fetch batch on the shared ``k``-lane
    timeline no earlier than its chunk's ``ready`` instant, and report
    issue/consume transitions so the backpressure bound is observable
    (``peak_inflight``).  :meth:`finalize` charges the timeline's makespan
    to the access log exactly once — *after* the plan has drained, which
    is what lets batch ``n+1`` overlap batch ``n`` instead of being
    serialized behind it.

    At ``lanes == 1`` the scheduler is inert (:attr:`pipelining` is
    False): batches run unscheduled through the client's serial staged
    accounting, reproducing staged execution bit-for-bit.
    """

    def __init__(self, log: AccessLog, lanes: int, tracer=None):
        if lanes < 1:
            raise ValueError(f"lane count must be >= 1, got {lanes}")
        self.log = log
        self.lanes = lanes
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.timeline: Optional[Timeline] = (
            Timeline(lanes) if lanes > 1 else None
        )
        #: absolute simulated seconds at the shared timeline's origin
        self.base = log.simulated_seconds
        self.batches = 0
        self.inflight = 0
        self.peak_inflight = 0
        self._finalized = False

    @property
    def pipelining(self) -> bool:
        """Whether batches actually share a timeline (``lanes > 1``)."""
        return self.timeline is not None

    def open_batch(self, ready: float) -> Optional[BatchSchedule]:
        """A placement carrier for one fetch batch whose inputs exist from
        simulated instant ``ready`` on — or None when not pipelining (the
        batch then uses the client's staged accounting)."""
        if self.timeline is None:
            return None
        self.batches += 1
        return BatchSchedule(
            timeline=self.timeline,
            ready=ready,
            base=self.base,
            completed=ready,
        )

    def note_issued(self) -> None:
        """One batch submitted ahead of downstream consumption."""
        self.inflight += 1
        self.peak_inflight = max(self.peak_inflight, self.inflight)

    def note_consumed(self) -> None:
        """The oldest in-flight batch was consumed downstream."""
        self.inflight -= 1

    @property
    def makespan(self) -> float:
        """Simulated wall time of everything scheduled so far."""
        return self.timeline.makespan if self.timeline is not None else 0.0

    def finalize(self) -> float:
        """Charge the shared makespan to the log (idempotent); returns the
        seconds charged.  Called when the plan drains — including on an
        abort, so partially scheduled work still shows up in the log, as
        it does under staged execution."""
        if self._finalized or self.timeline is None:
            return 0.0
        self._finalized = True
        span = self.timeline.makespan
        self.log.simulated_seconds += span
        return span


@dataclass
class _Chunk:
    """A bounded batch of tuples plus the simulated instant they exist.

    ``ready`` is timeline-relative: the completion time of the last fetch
    that produced (or was needed to produce) these rows.  Purely local
    operators (unnest, select, project, join) are free in the paper's
    cost model, so they forward ``ready`` unchanged.
    """

    batch: ColumnBatch
    ready: float


class PipelinedExecutor:
    """Evaluates computable NALG plans as a pipeline of column chunks.

    Drop-in alternative to :class:`~repro.engine.local.LocalExecutor` for
    the remote (live-web) path: same answers, same page accounting, lower
    makespan.  See the module docstring for the invariants.  With
    ``columnar=True`` the per-chunk operators run the compiled batch
    kernels instead of the interpreted row operators — the fetch pattern
    and every chunk boundary are identical either way.

    ``tracer`` gains per-chunk *pipeline spans* (``kind="pipeline"``) on
    the stages that touch the network, carrying the simulated interval
    from inputs-ready (``t0``) to chunk-complete (``t1``) — the Perfetto
    exporter renders these as a dedicated "pipeline stages" track so
    stage overlap is visible next to the per-lane fetch intervals.  Span
    ``node_id``\\ s are the compiled plan's stable preorder numbers, the
    same numbering the EXPLAIN ANALYZE renderer uses.
    """

    def __init__(
        self,
        scheme: WebScheme,
        session: QuerySession,
        scheduler: PrefetchScheduler,
        config: PipelineConfig = DEFAULT_PIPELINE_CONFIG,
        tracer=None,
        columnar: bool = False,
    ):
        self.scheme = scheme
        self.session = session
        self.scheduler = scheduler
        self.config = config
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.columnar = columnar

    @property
    def chunk_size(self) -> Optional[int]:
        """Rows per chunk, or None for unbounded (the k=1 degeneration:
        one chunk per operator reproduces staged batches exactly)."""
        return self.config.chunk_size if self.scheduler.pipelining else None

    def evaluate(self, expr: Expr) -> Relation:
        """Evaluate ``expr``; raises NotComputableError for bad plans."""
        check_computable(expr, self.scheme)
        plan = compile_plan(expr, self.scheme)
        batches: list[ColumnBatch] = []
        try:
            for chunk in self._chunks(plan.root):
                batches.append(chunk.batch)
        finally:
            # drained or aborted: charge the shared makespan exactly once
            self.scheduler.finalize()
        return ColumnBatch.concat(plan.root.schema, batches).to_relation()

    # ------------------------------------------------------------------ #
    # chunk streams, one generator per operator kind
    # ------------------------------------------------------------------ #

    def _chunks(self, node: CompiledNode) -> Iterator[_Chunk]:
        if node.kind == "entry":
            return self._entry_chunks(node)
        if node.kind == "follow":
            return self._follow_chunks(node)
        if node.kind == "unnest":
            return self._unnest_chunks(node)
        if node.kind == "select":
            return self._select_chunks(node)
        if node.kind == "project":
            return self._project_chunks(node)
        if node.kind == "join":
            return self._join_chunks(node)
        raise AlgebraError(f"cannot evaluate compiled kind {node.kind!r}")

    def _rechunk(
        self, batch: ColumnBatch, ready: float
    ) -> Iterator[_Chunk]:
        """Split an operator's output back into bounded chunks so the next
        stage can overlap work at chunk granularity.  All pieces carry the
        source ``ready`` — local work is free in simulated time."""
        size = self.chunk_size
        count = batch.num_rows
        if not count or size is None or count <= size:
            yield _Chunk(batch, ready)
            return
        for start in range(0, count, size):
            yield _Chunk(batch.slice(start, start + size), ready)

    def _entry_chunks(self, node: CompiledNode) -> Iterator[_Chunk]:
        assert node.page_scheme is not None and node.build_row is not None
        url = self.scheme.entry_point(node.page_scheme).url
        schedule = self.scheduler.open_batch(ready=0.0)
        self.session.fetch_batch([url], schedule=schedule)
        ready = schedule.completed if schedule is not None else 0.0
        plain = self.session.fetch_tuple(node.page_scheme, url)
        if plain is None:
            batch = ColumnBatch.empty(node.schema)
        elif self.columnar:
            batch = ColumnBatch.from_tuples(
                node.schema, [node.build_row(plain)]
            )
        else:
            batch = ColumnBatch.from_rows(
                node.schema, [qualify_row(node.schema, plain)]
            )
        self._pipeline_span(
            node, 0, ready=0.0, completed=ready,
            rows_in=1, rows_out=batch.num_rows,
        )
        yield _Chunk(batch, ready)

    def _follow_chunks(self, node: CompiledNode) -> Iterator[_Chunk]:
        assert node.target_page_scheme is not None
        assert node.target_schema is not None
        assert node.build_row is not None and node.link_attr is not None
        child = self._chunks(node.children[0])
        target = node.target_page_scheme
        # distinct link values across the whole operator, first-seen order
        # (chunk concatenation preserves the staged child-row order, so
        # the union over chunks equals the staged URL list exactly)
        seen: set[str] = set()
        #: url → target row dict (interpreted) or value tuple (columnar)
        qualified: dict = {}
        bound = self.config.max_inflight_batches
        pending: deque[tuple[_Chunk, float]] = deque()
        state = {"drained": False}

        def submit_next() -> None:
            """Pull one child chunk and place its fetch batch."""
            chunk = next(child, None)
            if chunk is None:
                state["drained"] = True
                return
            urls: list[str] = []
            for value in chunk.batch.columns[node.link_index]:
                if value is not None and value not in seen:
                    seen.add(value)
                    urls.append(value)
            schedule = self.scheduler.open_batch(ready=chunk.ready)
            if urls:
                plain = self.session.fetch_tuples(
                    target, urls, schedule=schedule
                )
                if self.columnar:
                    for url, tup in plain.items():
                        qualified[url] = node.build_row(tup)
                else:
                    for url, tup in plain.items():
                        qualified[url] = qualify_row(node.target_schema, tup)
            completed = (
                schedule.completed if schedule is not None else chunk.ready
            )
            pending.append((chunk, completed))
            self.scheduler.note_issued()

        def top_up() -> None:
            # prefetch: submit batches the moment chunks arrive, up to
            # the backpressure bound ahead of downstream consumption
            while not state["drained"] and len(pending) < bound:
                submit_next()

        index = 0
        while True:
            top_up()
            if not pending:
                return
            chunk, completed = pending.popleft()
            self.scheduler.note_consumed()
            # refill the window *before* yielding: upstream batches must
            # land on the shared timeline ahead of whatever batch the
            # downstream stage derives from this chunk — otherwise, at
            # small bounds, a committed downstream placement can block
            # the upstream critical path and lose to the staged schedule
            top_up()
            if self.columnar:
                batch = apply_follow(node, chunk.batch, qualified)
            else:
                rows: list[dict] = []
                for row in chunk.batch.to_rows():
                    value = row.get(node.link_attr)
                    if value is None:
                        continue
                    target_row = qualified.get(value)
                    if target_row is None:
                        continue  # dangling link: nothing to navigate to
                    rows.append({**row, **target_row})
                batch = ColumnBatch.from_rows(node.schema, rows)
            self._pipeline_span(
                node, index, ready=chunk.ready, completed=completed,
                rows_in=chunk.batch.num_rows, rows_out=batch.num_rows,
            )
            index += 1
            yield _Chunk(batch, completed)

    def _unnest_chunks(self, node: CompiledNode) -> Iterator[_Chunk]:
        expr = cast(Unnest, node.expr)
        child = node.children[0]
        for chunk in self._chunks(child):
            if self.columnar:
                batch = apply_unnest(node, chunk.batch)
            else:
                relation = Relation(
                    child.schema, chunk.batch.to_rows()
                ).unnest(expr.attr)
                batch = ColumnBatch.from_rows(node.schema, relation.rows)
            # re-chunk: unnest multiplies rows, and downstream overlap
            # only exists at chunk granularity
            yield from self._rechunk(batch, chunk.ready)

    def _select_chunks(self, node: CompiledNode) -> Iterator[_Chunk]:
        expr = cast(Select, node.expr)
        child = node.children[0]
        for chunk in self._chunks(child):
            if self.columnar:
                batch = apply_select(node, chunk.batch)
            else:
                relation = Relation(
                    child.schema, chunk.batch.to_rows()
                ).select(expr.predicate.evaluate)
                batch = ColumnBatch.from_rows(node.schema, relation.rows)
            yield _Chunk(batch, chunk.ready)

    def _project_chunks(self, node: CompiledNode) -> Iterator[_Chunk]:
        expr = cast(Project, node.expr)
        child = node.children[0]
        renames = {i: o for o, i in expr.outputs if o != i}
        names = list(expr.in_names())
        # projection is set-based: duplicates are eliminated across the
        # *whole* operator (first occurrence wins, as in the staged path);
        # per-chunk dedup alone would let cross-chunk duplicates through
        # at small chunk sizes
        seen: set = set()
        for chunk in self._chunks(child):
            if self.columnar:
                batch = apply_project(node, chunk.batch, seen)
            else:
                relation = Relation(
                    child.schema, chunk.batch.to_rows()
                ).project(names, renames)
                rows: list[dict] = []
                for row in relation.rows:
                    key = canonical_row(row)
                    if key not in seen:
                        seen.add(key)
                        rows.append(row)
                batch = ColumnBatch.from_rows(node.schema, rows)
            yield _Chunk(batch, chunk.ready)

    def _join_chunks(self, node: CompiledNode) -> Iterator[_Chunk]:
        # a join needs both sides in full: it is the one genuine barrier,
        # and materializing in order keeps the staged row order exactly
        expr = cast(Join, node.expr)
        left_node, right_node = node.children
        ready = 0.0
        left_batches: list[ColumnBatch] = []
        for chunk in self._chunks(left_node):
            left_batches.append(chunk.batch)
            ready = max(ready, chunk.ready)
        right_batches: list[ColumnBatch] = []
        for chunk in self._chunks(right_node):
            right_batches.append(chunk.batch)
            ready = max(ready, chunk.ready)
        left = ColumnBatch.concat(left_node.schema, left_batches)
        right = ColumnBatch.concat(right_node.schema, right_batches)
        if self.columnar:
            batch = apply_join(node, left, right)
        else:
            joined = Relation(left_node.schema, left.to_rows()).join(
                Relation(right_node.schema, right.to_rows()), expr.on
            )
            batch = ColumnBatch.from_rows(node.schema, joined.rows)
        yield from self._rechunk(batch, ready)

    # ------------------------------------------------------------------ #

    def _pipeline_span(
        self,
        node: CompiledNode,
        index: int,
        ready: float,
        completed: float,
        rows_in: int,
        rows_out: int,
    ) -> None:
        """Emit one per-chunk pipeline span (observational only)."""
        if not self.tracer.enabled:
            return
        base = self.scheduler.base
        with self.tracer.span(
            f"pipeline {node.span_name}",
            kind="pipeline",
            node_id=node.node_id,
            stage=node.span_name,
            chunk=index,
        ) as span:
            span.set(
                rows_in=rows_in,
                rows_out=rows_out,
                t0=base + ready,
                t1=base + completed,
                queue_seconds=max(0.0, completed - ready),
            )
