"""Local evaluation of NALG plans.

:class:`LocalExecutor` evaluates a computable plan against page-relations
held locally, obtained through a :class:`PageRelationProvider`.  Navigations
are evaluated as joins over URLs — "expression ``P1 →L P2`` is evaluated as
``P1 ⋈_{P1.L = P2.URL} P2``" (paper, Section 8) — with the provider deciding
where the target tuples come from (the materialized store checks freshness
with light connections before handing tuples over, which is how Algorithm 3
plugs in).

:func:`qualify_row` converts a plain wrapped tuple (attribute-named, as
produced by the wrappers) into the qualified-name form the algebra's schemas
use; both executors share it.
"""

from __future__ import annotations

from typing import Callable, Optional, Protocol, Sequence

from repro.adm.scheme import WebScheme
from repro.algebra.ast import (
    EntryPointScan,
    Expr,
    ExternalRelScan,
    FollowLink,
    Join,
    Project,
    Select,
    Unnest,
)
from repro.algebra.computable import check_computable
from repro.errors import AlgebraError, NotComputableError
from repro.nested.relation import Relation
from repro.nested.schema import RelationSchema
from repro.obs.trace import NULL_TRACER

__all__ = ["PageRelationProvider", "LocalExecutor", "qualify_row"]


def qualify_row(schema: RelationSchema, plain: dict) -> dict:
    """Re-key a plain wrapped tuple to the qualified names of ``schema``.

    ``schema`` must be a page-relation schema built by
    :func:`repro.algebra.ast.page_relation_schema` (every field carries
    provenance); nested lists are qualified recursively.
    """
    row = {}
    for field in schema:
        assert field.provenance is not None, "page schemas carry provenance"
        leaf = field.provenance.path.leaf
        if field.is_list:
            assert field.elem is not None
            row[field.name] = [
                qualify_row(field.elem, sub) for sub in (plain.get(leaf) or [])
            ]
        else:
            row[field.name] = plain.get(leaf)
    return row


class PageRelationProvider(Protocol):
    """Source of page tuples for local evaluation.

    The interface is batch-first: both methods take a whole set of pages so
    a provider backed by the live web can fetch them through one concurrent
    batch instead of a per-URL loop.  Providers that only implement the
    legacy single-page ``entry_tuple(page_scheme)`` keep working — the
    executor falls back to it when ``entry_tuples`` is absent (deprecated
    shim; new providers should implement the batch form).
    """

    def entry_tuples(
        self, page_schemes: Sequence[str]
    ) -> dict[str, dict]:
        """Plain tuples of the entry-point pages of ``page_schemes``, keyed
        by page-scheme name; schemes whose entry page no longer exists are
        simply absent from the result."""

    def target_tuples(
        self, page_scheme: str, urls: Sequence[str]
    ) -> dict[str, dict]:
        """Plain tuples for the requested target pages, keyed by URL; URLs
        that no longer resolve are simply absent from the result.  This is
        the primary bulk entry point — one call per follow-link operator."""


class LocalExecutor:
    """Evaluates computable NALG plans against a page-relation provider.

    ``tracer`` (default: the zero-cost null tracer) opens one *operator
    span* per plan node, tagged with the node's stable **preorder**
    ``node_id`` (0 at the root, children in ``children()`` order — the
    numbering every executor and the EXPLAIN ANALYZE renderer share, so
    spans pair positionally with the plan tree it prints; ``id(node)``
    was used before, but Python ids collide across GC'd or shared
    subtrees).
    ``meter`` (optional) is a zero-argument callable returning the current
    ``(pages, light_connections, cache_hits, revalidations, bytes,
    simulated_seconds)`` counters — typically read off the web client's
    :class:`~repro.web.client.AccessLog`.  Each operator span records the
    counter *delta* across its evaluation (children included), so a node's
    own cost is its delta minus its children's — and the per-operator
    "own" costs sum exactly to the query total.
    """

    def __init__(
        self,
        scheme: WebScheme,
        provider: PageRelationProvider,
        tracer=None,
        meter: Optional[Callable[[], tuple]] = None,
    ):
        self.scheme = scheme
        self.provider = provider
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.meter = meter
        self._next_node_id = 0

    def evaluate(self, expr: Expr) -> Relation:
        """Evaluate ``expr``; raises NotComputableError for bad plans."""
        check_computable(expr, self.scheme)
        self._next_node_id = 0  # fresh preorder numbering per plan
        return self._eval(expr)

    # ------------------------------------------------------------------ #

    def _eval(self, expr: Expr) -> Relation:
        tracer = self.tracer
        if not tracer.enabled:
            return self._eval_node(expr)
        # claim the preorder id before recursing: parent before children,
        # children in children() order — matching compile_plan's numbering
        node_id = self._next_node_id
        self._next_node_id += 1
        with tracer.span(
            self._span_name(expr),
            kind="operator",
            node_id=node_id,
            op=type(expr).__name__,
        ) as span:
            before = self.meter() if self.meter is not None else None
            relation = self._eval_node(expr)
            if before is not None:
                after = self.meter()
                span.set(
                    pages=after[0] - before[0],
                    light_connections=after[1] - before[1],
                    cache_hits=after[2] - before[2],
                    revalidations=after[3] - before[3],
                    bytes=after[4] - before[4],
                    seconds=after[5] - before[5],
                    t0=before[5],
                    t1=after[5],
                )
            span.set(tuples_out=len(relation.rows))
            return relation

    @staticmethod
    def _span_name(expr: Expr) -> str:
        if isinstance(expr, EntryPointScan):
            return f"entry {expr.page_scheme}"
        if isinstance(expr, FollowLink):
            return f"follow →{expr.link_attr}"
        if isinstance(expr, Unnest):
            return f"unnest {expr.attr}"
        if isinstance(expr, Select):
            return "select"
        if isinstance(expr, Project):
            return "project"
        if isinstance(expr, Join):
            return "join"
        return type(expr).__name__

    def _eval_node(self, expr: Expr) -> Relation:
        if isinstance(expr, EntryPointScan):
            return self._eval_entry(expr)
        if isinstance(expr, FollowLink):
            return self._eval_follow(expr)
        if isinstance(expr, Unnest):
            return self._eval(expr.child).unnest(expr.attr)
        if isinstance(expr, Select):
            child = self._eval(expr.child)
            expr.output_schema(self.scheme)  # validates predicate attrs
            return child.select(expr.predicate.evaluate)
        if isinstance(expr, Project):
            child = self._eval(expr.child)
            renames = {i: o for o, i in expr.outputs if o != i}
            return child.project(list(expr.in_names()), renames)
        if isinstance(expr, Join):
            left = self._eval(expr.left)
            right = self._eval(expr.right)
            return left.join(right, expr.on)
        if isinstance(expr, ExternalRelScan):
            raise NotComputableError(
                f"external relation {expr.name!r} reached the executor"
            )
        raise AlgebraError(f"cannot evaluate {type(expr).__name__}")

    def _eval_entry(self, expr: EntryPointScan) -> Relation:
        schema = expr.output_schema(self.scheme)
        entry_tuples = getattr(self.provider, "entry_tuples", None)
        if entry_tuples is not None:
            plain = entry_tuples([expr.page_scheme]).get(expr.page_scheme)
        else:  # deprecated single-page providers
            plain = self.provider.entry_tuple(expr.page_scheme)
        rows = [] if plain is None else [qualify_row(schema, plain)]
        return Relation(schema, rows)

    def _eval_follow(self, expr: FollowLink) -> Relation:
        return self._follow_from(expr, self._eval(expr.child))

    def _follow_from(self, expr: FollowLink, child: Relation) -> Relation:
        """Navigate ``expr`` from an already-evaluated child relation.

        Split from :meth:`_eval_follow` so the adaptive executor
        (:mod:`repro.engine.adaptive`) can prune the child's bindings
        between evaluating the child and scheduling the fetch batch."""
        target = expr.target_scheme(self.scheme)
        schema = expr.output_schema(self.scheme)
        url_attr = expr.target_url_attr(self.scheme)

        # distinct link values, preserving first-seen order
        urls: list[str] = []
        seen: set[str] = set()
        for row in child.rows:
            value = row.get(expr.link_attr)
            if value is not None and value not in seen:
                seen.add(value)
                urls.append(value)

        from repro.algebra.ast import page_relation_schema

        target_schema = page_relation_schema(
            self.scheme, target, expr.target_alias(self.scheme)
        )
        plain_by_url = self.provider.target_tuples(target, urls)
        qualified = {
            url: qualify_row(target_schema, plain)
            for url, plain in plain_by_url.items()
        }
        rows = []
        for row in child.rows:
            value = row.get(expr.link_attr)
            if value is None:
                continue
            target_row = qualified.get(value)
            if target_row is None:
                continue  # dangling link: nothing to navigate to
            rows.append({**row, **target_row})
        return Relation(schema, rows)
