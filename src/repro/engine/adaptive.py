"""Adaptive execution: runtime relevance pruning + mid-query switching.

The planner commits to one of rules 1–9 from *a priori* statistics
(Section 6), but estimates can be badly wrong on skewed sites.  Following
Benedikt, Gottlob and Senellart ("Determining Relevance of Accesses at
Runtime"), an access whose result provably cannot contribute to the
answer may be skipped without changing that answer.  The
:class:`AdaptiveExecutor` layers two such runtime decisions on the
staged row core (``execution="adaptive"`` / ``"adaptive_pipelined"``):

**Runtime relevance pruning.**  Before each follow-link batch is
scheduled, every binding is tested against the constraints the rest of
the plan is known to impose on it:

* *join-key semijoin* — at a join, the already-evaluated side fixes the
  set of join-key values that can still match; a binding on the other
  side whose key (tracked by field *provenance*, which survives renames)
  is outside that set — or null, which never joins (SQL semantics) —
  is pruned before its link is fetched;
* *pushed-down selection* — a selection on a link's *target* attribute
  whose value is documented on the source side by a link constraint
  (the same evidence rule 6's push-down uses) filters bindings before
  the fetch.

Both tests are *proofs* of irrelevance: every operator between the
follow and the constraint is per-row monotone, so a pruned row's entire
derivation is dropped by that operator anyway and the output **multiset**
is unchanged — not merely the digest.

**Mid-query strategy switching (rules 8/9).**  At a join matching the
paper's link-join shape, the executor evaluates the non-navigation side
first, observes the actual fan-outs, and re-runs the Section 7 crossover
(:func:`repro.optimizer.cost.crossover_winner`) with observed counts in
place of estimates.  When the observation crosses the modeled threshold
the unexecuted suffix is re-planned through
:meth:`~repro.optimizer.planner.Planner.replan_suffix` (rule 8,
chase → join: restrict the pointer set to links that can still join) or
through the pre-validated rule-9 rewriting (join → chase: navigate from
the restricting side and skip the other navigation entirely).  Every
firing is recorded in the report's :class:`~repro.obs.rewrite.
RewriteTrace`, on the ``repro_adaptive_switches_total`` counter, and as
an ``adaptive-switch`` span event.

Non-speculation still holds in a one-sided form: the adaptive executor
never fetches a page the static plan would not have fetched, so
``pages(adaptive) <= pages(static)`` with the same answer digest — the
invariant the QA matrix's ``adaptive`` execution dimension asserts cell
by cell (docs/ADAPTIVE.md, docs/TESTING.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.adm.scheme import WebScheme
from repro.algebra.ast import Expr, FollowLink, Join, Select
from repro.algebra.computable import check_computable, is_computable
from repro.algebra.printer import render_expr
from repro.algebra.visitors import replace_at, walk
from repro.algebra.predicates import Comparison, In
from repro.engine.local import LocalExecutor, PageRelationProvider
from repro.errors import AlgebraError, PredicateError, SchemaError
from repro.nested.relation import Relation, canonical_value
from repro.obs.metrics import METRICS
from repro.obs.rewrite import STRATEGY_RULES, RewriteTrace
from repro.optimizer.cost import StrategyCrossover, crossover_winner
from repro.optimizer.rules import (
    PointerChase,
    _match_link_join,
    _source_attr_for,
)

__all__ = [
    "AdaptiveExecutor",
    "AdaptivePrune",
    "AdaptiveReport",
    "AdaptiveSwitch",
]

#: Follow-link fetches skipped because the binding was proven irrelevant.
PRUNES_TOTAL = METRICS.counter(
    "repro_adaptive_prunes_total",
    "Link fetches pruned by the adaptive executor's runtime relevance test",
)
#: Mid-query pointer-join <-> pointer-chase switches fired.
SWITCHES_TOTAL = METRICS.counter(
    "repro_adaptive_switches_total",
    "Strategy switches (rules 8/9) fired mid-query by the adaptive executor",
)


@dataclass(frozen=True)
class AdaptivePrune:
    """One follow-link batch that lost bindings to the relevance test."""

    kind: str          #: "join-key" or "selection"
    link_attr: str     #: the follow's link attribute
    urls_before: int   #: distinct links before pruning
    urls_after: int    #: distinct links actually scheduled

    @property
    def urls_pruned(self) -> int:
        return self.urls_before - self.urls_after

    def describe(self) -> str:
        return (
            f"prune[{self.kind}] →{self.link_attr}: "
            f"{self.urls_before} → {self.urls_after} links "
            f"({self.urls_pruned} fetches skipped)"
        )


@dataclass(frozen=True)
class AdaptiveSwitch:
    """One rule-8/9 strategy switch fired on observed fan-outs."""

    rule: str                      #: "PointerJoin" or "PointerChase"
    crossover: StrategyCrossover   #: the observed-vs-modeled comparison
    suffix: str                    #: rendering of the suffix switched away from
    replanned: str                 #: rendering of the suffix switched to

    @property
    def strategy(self) -> str:
        """Human name of the strategy switched *to*."""
        return STRATEGY_RULES[self.rule]

    def describe(self) -> str:
        return (
            f"switch → {self.strategy}: observed chase cost "
            f"{self.crossover.chase_cost:g} vs join cost "
            f"{self.crossover.join_cost:g} ⇒ {self.crossover.winner}"
        )


class AdaptiveReport:
    """Every adaptive decision one execution took, for EXPLAIN ANALYZE.

    ``rewrite_trace`` records fired switches with the same
    :class:`~repro.obs.rewrite.RewriteTrace` machinery the planner uses,
    so ``strategy(plan_key)`` and lineage queries work on mid-query
    re-plannings exactly as on static candidates.
    """

    def __init__(self, cost_fn: Optional[Callable] = None):
        self.prunes: list[AdaptivePrune] = []
        self.switches: list[AdaptiveSwitch] = []
        self.pruned_urls: set[str] = set()
        self.rewrite_trace = RewriteTrace(cost_fn=cost_fn)

    @property
    def urls_pruned(self) -> int:
        return sum(p.urls_pruned for p in self.prunes)

    @property
    def decisions(self) -> int:
        return len(self.prunes) + len(self.switches)

    def summary_lines(self) -> list[str]:
        lines = [
            f"adaptive: {len(self.switches)} switch(es), "
            f"{self.urls_pruned} fetch(es) pruned"
        ]
        lines += [f"  {s.describe()}" for s in self.switches]
        lines += [f"  {p.describe()}" for p in self.prunes]
        return lines

    def summary(self) -> str:
        return "\n".join(self.summary_lines())


@dataclass(frozen=True)
class _Constraint:
    """Values a provenance-identified attribute must take to stay relevant."""

    key: tuple[str, str, str]     #: (alias, base page-scheme, attr path)
    values: frozenset             #: canonical values that can still match
    kind: str                     #: "join-key" or "selection"


def _prov_key(field_) -> Optional[tuple[str, str, str]]:
    prov = field_.provenance
    if prov is None:
        return None
    return (prov.scheme, prov.base_scheme, str(prov.path))


class AdaptiveExecutor(LocalExecutor):
    """Staged evaluation plus runtime relevance tests and rule-8/9 switches.

    ``planner`` (optional) re-plans switched suffixes so the fired
    rewriting carries the planner's own validation and rendering;
    without it the executor still switches, using the raw rule
    application.  ``cost_model`` (optional) prices the navigation side
    for rule-9 (join → chase) decisions; without it only rule-8 switches
    and relevance pruning are active — both need observations only.

    The executor's page counters can only ever be *below* the static
    plan's: it schedules a subset of every static fetch batch and never
    adds a speculative one.  With a tracer attached, operator spans of a
    link-join's two sides are opened in decision order (restricting side
    first), so span *node ids* below a switched join do not pair with
    the printed plan tree the way static executions do — EXPLAIN
    ANALYZE shows adaptive decisions through the report instead.
    """

    def __init__(
        self,
        scheme: WebScheme,
        provider: PageRelationProvider,
        tracer=None,
        meter: Optional[Callable[[], tuple]] = None,
        planner=None,
        cost_model=None,
    ):
        super().__init__(scheme, provider, tracer=tracer, meter=meter)
        self.planner = planner
        self.cost_model = cost_model
        self.report = AdaptiveReport()
        self._constraints: list[_Constraint] = []
        self._chase_sites: dict[int, FollowLink] = {}

    # ------------------------------------------------------------------ #
    # entry point
    # ------------------------------------------------------------------ #

    def evaluate(self, expr: Expr) -> Relation:
        check_computable(expr, self.scheme)
        self._next_node_id = 0
        self._constraints = []
        cost_fn = self.cost_model.cost if self.cost_model else None
        self.report = AdaptiveReport(cost_fn=cost_fn)
        self._chase_sites = self._find_chase_sites(expr)
        return self._eval(expr)

    # ------------------------------------------------------------------ #
    # operator dispatch overrides
    # ------------------------------------------------------------------ #

    def _eval_node(self, expr: Expr) -> Relation:
        if isinstance(expr, Join):
            return self._eval_join(expr)
        if isinstance(expr, Select):
            return self._eval_select(expr)
        return super()._eval_node(expr)

    def _eval_follow(self, expr: FollowLink) -> Relation:
        child = self._prune_follow_child(expr, self._eval(expr.child))
        return self._follow_from(expr, child)

    # ------------------------------------------------------------------ #
    # selections: prefilter bindings via documented source attributes
    # ------------------------------------------------------------------ #

    def _eval_select(self, expr: Select) -> Relation:
        expr.output_schema(self.scheme)  # validates predicate attrs
        pushed = self._push_selection_constraints(expr)
        try:
            child = self._eval(expr.child)
        finally:
            del self._constraints[len(self._constraints) - pushed:]
        return child.select(expr.predicate.evaluate)

    def _push_selection_constraints(self, expr: Select) -> int:
        """σ over a follow: turn target-attribute atoms into pre-fetch
        constraints on the documented source attribute (rule 6's
        evidence), returning how many constraints were pushed."""
        follow = expr.child
        if not isinstance(follow, FollowLink):
            return 0
        try:
            follow_schema = follow.output_schema(self.scheme)
            child_schema = follow.child.output_schema(self.scheme)
            target_alias = follow.target_alias(self.scheme)
            link_field = child_schema.field(follow.link_attr)
        except (AlgebraError, SchemaError):
            return 0
        pushed = 0
        for atom in expr.predicate.atoms:
            if isinstance(atom, Comparison):
                values = frozenset([atom.value])
            elif isinstance(atom, In):
                values = frozenset(atom.values)
            else:
                continue
            attr = atom.attrs()[0]
            try:
                target_field = follow_schema.field(attr)
            except SchemaError:
                continue
            prov = target_field.provenance
            if prov is None or prov.scheme != target_alias:
                continue
            source = _source_attr_for(self.scheme, link_field, str(prov.path))
            if source is None:
                continue
            try:
                source_key = _prov_key(child_schema.field(source))
            except SchemaError:
                continue
            if source_key is None:
                continue
            self._constraints.append(
                _Constraint(key=source_key, values=values, kind="selection")
            )
            pushed += 1
        return pushed

    # ------------------------------------------------------------------ #
    # joins: semijoin constraints + rule-8/9 switching
    # ------------------------------------------------------------------ #

    def _eval_join(self, expr: Join) -> Relation:
        matches = _match_link_join(expr, self.scheme)
        if matches:
            return self._eval_link_join(expr, matches[0])
        left = self._eval(expr.left)
        pushed = self._push_join_constraints(expr, left)
        try:
            right = self._eval(expr.right)
        finally:
            del self._constraints[len(self._constraints) - pushed:]
        return left.join(right, expr.on)

    def _push_join_constraints(self, expr: Join, left: Relation) -> int:
        """Key sets the evaluated left side imposes on the right side's
        join attributes, keyed by provenance so they reach the binding
        *before* its follow-link fetch even across renames."""
        try:
            right_schema = expr.right.output_schema(self.scheme)
        except (AlgebraError, SchemaError):
            return 0
        pushed = 0
        for lname, rname in expr.on:
            try:
                key = _prov_key(right_schema.field(rname))
            except SchemaError:
                continue
            if key is None:
                continue
            values = frozenset(
                v
                for v in (
                    canonical_value(row.get(lname)) for row in left.rows
                )
                if v is not None
            )
            self._constraints.append(
                _Constraint(key=key, values=values, kind="join-key")
            )
            pushed += 1
        return pushed

    def _eval_link_join(self, expr: Join, match) -> Relation:
        """A join of the paper's link shape: evaluate the restricting
        side first, then re-run the Section 7 crossover on observations."""
        other = self._eval(match.other)

        # rule 9 (join → chase): skip the navigation side entirely when
        # the restricting side's observed pointer set undercuts the
        # model's estimate for the navigation it replaces.
        chase = self._chase_sites.get(id(expr))
        if (
            chase is not None
            and self.cost_model is not None
            and chase.child is match.other
        ):
            observed = self._distinct_links(other, chase.link_attr)
            crossover = StrategyCrossover(
                chase_cost=float(len(observed)),
                join_cost=self.cost_model.cost(match.nav),
            )
            if (
                crossover.winner == "chase"
                and crossover.chase_cost < crossover.join_cost
            ):
                self._record_switch(expr, chase, "PointerChase", crossover)
                return self._follow_from(
                    chase, self._prune_follow_child(chase, other)
                )

        child = self._prune_follow_child(
            match.nav, self._eval(match.nav.child)
        )

        # rule 8 (chase → join): restrict the navigation's pointer set to
        # links the other side can still join with, when the observed
        # crossover says the join strategy wins.
        links = self._distinct_links(child, match.nav.link_attr)
        allowed = set(self._distinct_links(other, match.other_link.name))
        restricted = [url for url in links if url in allowed]
        crossover = StrategyCrossover(
            chase_cost=float(len(links)), join_cost=float(len(restricted))
        )
        if crossover.winner == "join":
            replanned = self._replan(expr, "PointerJoin")
            self._record_switch(
                expr, replanned if replanned is not None else expr,
                "PointerJoin", crossover,
            )
            kept = [
                row
                for row in child.rows
                if row.get(match.nav.link_attr) in allowed
            ]
            self._record_prune(
                match.nav, "join-key", links, set(restricted)
            )
            child = Relation(child.schema, kept)

        nav = self._follow_from(match.nav, child)
        if match.flipped:
            return other.join(nav, expr.on)
        return nav.join(other, expr.on)

    # ------------------------------------------------------------------ #
    # the relevance test at each follow
    # ------------------------------------------------------------------ #

    def _prune_follow_child(
        self, expr: FollowLink, child: Relation
    ) -> Relation:
        """Drop bindings that provably cannot contribute before fetching.

        Applies every active constraint whose provenance key names a
        field of the follow's child: a binding whose constrained value is
        null or outside the allowed set is discarded by the constraint's
        operator (null join keys never match; selections never accept
        null) — so skipping its fetch cannot change the answer."""
        if not self._constraints:
            return child
        applicable: list[tuple[str, _Constraint]] = []
        for field_ in child.schema:
            key = _prov_key(field_)
            if key is None:
                continue
            for constraint in self._constraints:
                if constraint.key == key:
                    applicable.append((field_.name, constraint))
        if not applicable:
            return child
        before = self._distinct_links(child, expr.link_attr)
        rows = child.rows
        kinds: set[str] = set()
        for name, constraint in applicable:
            kept = [
                row
                for row in rows
                if canonical_value(row.get(name)) in constraint.values
            ]
            if len(kept) < len(rows):
                kinds.add(constraint.kind)
            rows = kept
        if len(rows) == len(child.rows):
            return child
        pruned = Relation(child.schema, rows)
        after = set(self._distinct_links(pruned, expr.link_attr))
        if len(after) < len(before):
            kind = "join-key" if "join-key" in kinds else "selection"
            self._record_prune(expr, kind, before, after)
        return pruned

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #

    @staticmethod
    def _distinct_links(relation: Relation, attr: str) -> list[str]:
        """Distinct non-null values of ``attr`` in first-seen order."""
        seen: set = set()
        out: list[str] = []
        for row in relation.rows:
            value = row.get(attr)
            if value is not None and value not in seen:
                seen.add(value)
                out.append(value)
        return out

    def _replan(self, suffix: Expr, rule: str) -> Optional[Expr]:
        """The switched-to suffix, via the planner when one is wired."""
        if self.planner is not None:
            return self.planner.replan_suffix(
                suffix, rule=rule, trace=self.report.rewrite_trace
            )
        return None

    def _record_switch(
        self,
        suffix: Expr,
        replanned: Expr,
        rule: str,
        crossover: StrategyCrossover,
    ) -> None:
        switch = AdaptiveSwitch(
            rule=rule,
            crossover=crossover,
            suffix=render_expr(suffix),
            replanned=render_expr(replanned),
        )
        self.report.switches.append(switch)
        if rule == "PointerChase" or self.planner is None:
            # rule-8 firings via the planner are recorded by replan_suffix
            self.report.rewrite_trace.record(
                "adaptive re-planning",
                rule,
                switch.replanned,
                parent=switch.suffix,
                expr=replanned if replanned is not suffix else None,
            )
        SWITCHES_TOTAL.inc(rule=rule)
        self.tracer.event(
            "adaptive-switch",
            rule=rule,
            strategy=switch.strategy,
            chase_cost=crossover.chase_cost,
            join_cost=crossover.join_cost,
            winner=crossover.winner,
        )

    def _record_prune(
        self,
        follow: FollowLink,
        kind: str,
        before: list[str],
        after: set,
    ) -> None:
        prune = AdaptivePrune(
            kind=kind,
            link_attr=follow.link_attr,
            urls_before=len(before),
            urls_after=len(after),
        )
        self.report.prunes.append(prune)
        self.report.pruned_urls.update(
            url for url in before if url not in after
        )
        PRUNES_TOTAL.inc(prune.urls_pruned, kind=kind)
        self.tracer.event(
            "adaptive-prune",
            kind=kind,
            link_attr=follow.link_attr,
            urls_before=prune.urls_before,
            urls_after=prune.urls_after,
        )

    # ------------------------------------------------------------------ #
    # rule-9 pre-pass
    # ------------------------------------------------------------------ #

    def _find_chase_sites(self, root: Expr) -> dict[int, FollowLink]:
        """Joins where a rule-9 rewriting of the *whole plan* validates.

        Rule 9 holds modulo the projection above it, so a switch is legal
        only when substituting the chase for the join leaves the full
        plan well-typed with the same output attributes — checked here
        once, before execution, exactly as the planner's validation step
        checks static rule-9 candidates.  Joins appearing at more than
        one position are skipped (the substitution test is positional).
        """
        root_names: tuple
        try:
            root_names = tuple(
                f.name for f in root.output_schema(self.scheme)
            )
        except (AlgebraError, SchemaError):
            return {}
        sites: dict[int, FollowLink] = {}
        seen: set[int] = set()
        duplicated: set[int] = set()
        for path, node in walk(root):
            if not isinstance(node, Join):
                continue
            if id(node) in seen:
                duplicated.add(id(node))
                continue
            seen.add(id(node))
            for rewritten in PointerChase().rewrite_node(node, self.scheme):
                try:
                    full = replace_at(root, path, rewritten)
                    names = tuple(
                        f.name for f in full.output_schema(self.scheme)
                    )
                    if names != root_names:
                        continue
                    if not is_computable(full, self.scheme):
                        continue
                except (AlgebraError, SchemaError, PredicateError):
                    continue
                assert isinstance(rewritten, FollowLink)
                sites[id(node)] = rewritten
                break
        for node_id in duplicated:
            sites.pop(node_id, None)
        return sites
