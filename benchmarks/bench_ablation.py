"""ABLATION — how much each rewrite family contributes.

DESIGN.md calls out the optimizer's design choices: constraint-driven
selection pushing (rule 6), pointer join (rule 8), pointer chase (rule 9),
the join reassociation they need, projection substitution + navigation
elimination (rules 7/5/3), and repeated-navigation merging (rule 4).

This ablation disables one family at a time and re-plans the Section 7
queries, reporting the chosen plan's estimated cost.  It also measures the
cost model's sensitivity to statistics quality: planning with statistics
estimated from a *bounded* crawl instead of the exact oracle.
"""

import pytest

from repro.optimizer import CostModel, Planner, PlannerOptions
from repro.stats.estimator import estimate_statistics
from repro.views.sql import parse_query

from _bench_utils import record, table

QUERIES = {
    "Q6 example 7.1": (
        "SELECT Course.CName, Description FROM Professor, CourseInstructor, "
        "Course WHERE Professor.PName = CourseInstructor.PName "
        "AND CourseInstructor.CName = Course.CName "
        "AND Rank = 'Full' AND Session = 'Fall'"
    ),
    "Q7 example 7.2": (
        "SELECT Professor.PName, email FROM Course, CourseInstructor, "
        "Professor, ProfDept WHERE Course.CName = CourseInstructor.CName "
        "AND CourseInstructor.PName = Professor.PName "
        "AND Professor.PName = ProfDept.PName "
        "AND ProfDept.DName = 'Computer Science' AND Type = 'Graduate'"
    ),
    "Q5 CS members": (
        "SELECT Professor.PName FROM Professor, ProfDept "
        "WHERE Professor.PName = ProfDept.PName "
        "AND ProfDept.DName = 'Computer Science'"
    ),
}

VARIANTS = [
    ("full optimizer", PlannerOptions()),
    ("no pointer chase (r9)", PlannerOptions(pointer_chase=False)),
    ("no pointer join (r8)", PlannerOptions(pointer_join=False)),
    ("no join pushdown", PlannerOptions(join_pushdown=False)),
    ("no selection pushing (r6)", PlannerOptions(push_selections=False)),
    (
        "no projection subst. (r7+r5)",
        PlannerOptions(
            substitute_projections=False, eliminate_navigations=False
        ),
    ),
    (
        "joins only (no r8/r9/pushdown)",
        PlannerOptions(
            pointer_join=False, pointer_chase=False, join_pushdown=False
        ),
    ),
]


@pytest.fixture(scope="module")
def ablation(uni_env):
    rows = []
    costs = {}
    for label, options in VARIANTS:
        planner = Planner(uni_env.view, uni_env.cost_model, options)
        row = {"variant": label}
        for qlabel, sql in QUERIES.items():
            planned = planner.plan_query(parse_query(sql, uni_env.view))
            row[qlabel] = f"{planned.best.cost:.1f}"
            costs[(label, qlabel)] = planned
        rows.append(row)
    record(
        "ABLATION",
        "chosen-plan cost with rewrite families disabled",
        table(rows, ["variant"] + list(QUERIES)),
        data=rows,
        queries=QUERIES,
    )
    return costs


class TestShape:
    def test_full_optimizer_is_never_worse(self, ablation):
        for qlabel in QUERIES:
            full = ablation[("full optimizer", qlabel)].best.cost
            for label, _ in VARIANTS[1:]:
                assert full <= ablation[(label, qlabel)].best.cost + 1e-9, (
                    label,
                    qlabel,
                )

    def test_disabling_chase_hurts_example_7_2(self, ablation):
        full = ablation[("full optimizer", "Q7 example 7.2")].best.cost
        crippled = ablation[
            ("no pointer chase (r9)", "Q7 example 7.2")
        ].best.cost
        assert crippled > full

    def test_disabling_join_hurts_example_7_1(self, ablation):
        full = ablation[("full optimizer", "Q6 example 7.1")].best.cost
        crippled = ablation[
            ("no pointer join (r8)", "Q6 example 7.1")
        ].best.cost
        assert crippled > full

    def test_selection_pushing_is_the_biggest_lever(self, ablation):
        """Without rule 6, every plan navigates unrestricted extents."""
        for qlabel in QUERIES:
            full = ablation[("full optimizer", qlabel)].best.cost
            crippled = ablation[
                ("no selection pushing (r6)", qlabel)
            ].best.cost
            assert crippled >= full

    def test_ablated_plans_still_correct(self, uni_env, ablation):
        reference = {}
        for qlabel, sql in QUERIES.items():
            planned = ablation[("full optimizer", qlabel)]
            reference[qlabel] = uni_env.execute(planned.best.expr).relation
        for (label, qlabel), planned in ablation.items():
            answer = uni_env.execute(planned.best.expr).relation
            assert answer.same_contents(reference[qlabel]), (label, qlabel)


@pytest.fixture(scope="module")
def stats_sensitivity(uni_env):
    """Plan with bounded-crawl statistics; report chosen plans' TRUE cost
    (evaluated under exact statistics)."""
    exact_cm = uni_env.cost_model
    rows = []
    for budget in (5, 15, 30, None):
        stats = estimate_statistics(
            uni_env.scheme, uni_env.site.server, uni_env.registry,
            max_pages=budget,
        )
        planner = Planner(uni_env.view, CostModel(uni_env.scheme, stats))
        row = {"crawl budget": budget if budget is not None else "full"}
        for qlabel, sql in QUERIES.items():
            try:
                planned = planner.plan_query(parse_query(sql, uni_env.view))
                true_cost = exact_cm.cost(planned.best.expr)
                row[qlabel] = f"{true_cost:.1f}"
            except Exception as exc:  # missing statistics on tiny crawls
                row[qlabel] = f"({type(exc).__name__})"
        rows.append(row)
    record(
        "ABLATION-stats",
        "true cost of plans chosen under sampled statistics",
        table(rows, ["crawl budget"] + list(QUERIES)),
        data=rows,
        queries=QUERIES,
    )
    return rows


class TestStatsSensitivity:
    def test_full_crawl_matches_oracle_choice(self, uni_env, stats_sensitivity):
        full_row = stats_sensitivity[-1]
        for qlabel, sql in QUERIES.items():
            oracle = uni_env.plan(parse_query(sql, uni_env.view))
            assert float(full_row[qlabel]) == pytest.approx(
                oracle.best.cost, rel=0.01
            )


def test_bench_full_planner(benchmark, uni_env):
    query = parse_query(QUERIES["Q7 example 7.2"], uni_env.view)
    benchmark(lambda: uni_env.planner.plan_query(query))


def test_bench_crippled_planner(benchmark, uni_env):
    """Without the join rules the search space is far smaller; the paper's
    rules cost planning time to save network pages."""
    planner = Planner(
        uni_env.view,
        uni_env.cost_model,
        PlannerOptions(
            pointer_join=False, pointer_chase=False, join_pushdown=False
        ),
    )
    query = parse_query(QUERIES["Q7 example 7.2"], uni_env.view)
    benchmark(lambda: planner.plan_query(query))
