"""SEC-8 — materialized views under site updates.

Paper (Section 8): the cost of answering a query over the materialized view
is "(i) a number of light connections equal to C(E); (ii) as many page
accesses as the number of pages involved in E that have been updated since
the last access.  If no (or few) pages have been updated, then the cost is
quite low."

Regenerated table: sweep the fraction of course pages updated between
queries and measure light connections + re-downloads per query, against the
virtual-view cost of the same plan and the full-recrawl baseline the paper
argues against.
"""

import pytest

from repro.materialized import MaterializedEngine, MaterializedStore
from repro.sitegen import SiteMutator, UniversityConfig
from repro.sites import university
from repro.views.sql import parse_query
from repro.web import WebClient

from _bench_utils import record, table

# a query whose plan touches every course page (worst case for maintenance)
SQL = "SELECT CName, Session, Description, Type FROM Course"


def fresh_setup():
    env = university(UniversityConfig())
    store = MaterializedStore(
        env.scheme, WebClient(env.site.server), env.registry
    )
    store.populate()
    store.client.log.reset()
    engine = MaterializedEngine(store, env.planner)
    return env, store, engine


@pytest.fixture(scope="module")
def sweep_results():
    rows = []
    raw = []
    for fraction in (0.0, 0.1, 0.25, 0.5, 1.0):
        env, store, engine = fresh_setup()
        mutator = SiteMutator(env.site)
        query = parse_query(SQL, env.view)
        planned = env.plan(query)
        virtual_pages = env.execute(planned.best.expr).pages
        updated = mutator.revise_courses(fraction)
        result = engine.execute(planned.best.expr)
        rows.append(
            {
                "updated": f"{fraction:.0%} ({updated} pages)",
                "light": result.light_connections,
                "downloads": result.pages,
                "sim time": f"{result.log.simulated_seconds:.1f}s",
                "virtual": virtual_pages,
                "recrawl": len(env.site.server),
            }
        )
        raw.append((fraction, updated, result, virtual_pages))
    lines = table(
        rows,
        ["updated", "light", "downloads", "sim time", "virtual", "recrawl"],
    )
    lines.append("")
    lines.append(
        "downloads ≈ updated pages; light ≈ C(E); virtual = pages a "
        "non-materialized execution fetches; recrawl = maintaining the "
        "store by re-navigating the whole site"
    )
    record(
        "SEC-8",
        "materialized-view query cost vs update rate",
        lines,
        data=rows,
        queries={"courses": SQL},
    )
    return raw


class TestShape:
    def test_no_updates_means_no_downloads(self, sweep_results):
        fraction, updated, result, _ = sweep_results[0]
        assert updated == 0
        assert result.pages == 0
        assert result.light_connections > 0

    def test_downloads_track_updated_pages(self, sweep_results):
        for fraction, updated, result, _ in sweep_results:
            assert result.pages == updated

    def test_materialized_beats_virtual_when_updates_rare(self, sweep_results):
        _, _, result, virtual = sweep_results[1]  # 10% updates
        assert result.pages < virtual

    def test_materialized_beats_full_recrawl_always(self, sweep_results):
        for _, _, result, _ in sweep_results:
            assert result.pages <= 50  # never more than the plan's pages

    def test_answers_stay_fresh(self):
        env, store, engine = fresh_setup()
        mutator = SiteMutator(env.site)
        mutator.revise_courses(0.25, revision="fresh-check")
        result = engine.query(parse_query(SQL, env.view))
        revised = sum(
            1
            for row in result.relation
            if "fresh-check" in row["Description"]
        )
        assert revised == round(len(env.site.courses) * 0.25)


def test_bench_materialized_query_no_updates(benchmark):
    env, store, engine = fresh_setup()
    query = parse_query(SQL, env.view)
    plan = env.plan(query).best.expr
    result = benchmark(lambda: engine.execute(plan))
    assert result.pages == 0


def test_bench_populate(benchmark):
    env = university(UniversityConfig())

    def populate():
        store = MaterializedStore(
            env.scheme, WebClient(env.site.server), env.registry
        )
        return store.populate()

    pages = benchmark(populate)
    assert pages == len(env.site.server)
