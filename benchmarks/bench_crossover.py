"""X-OVER — where pointer join and pointer chase cross over.

Paper (Section 7): "ordinary pointer-join techniques do not transfer
directly to the Web ... several alternative strategies, based on
pointer-chasing, need to be evaluated."  Which strategy wins depends on the
site's shape: the pointer-join plan of Example 7.2 pays |SessionPage| +
|CoursePage| up front to build its pointer set, while the chase pays only
for the selected department's professors and their courses.

Regenerated figure (as a table): estimated cost of both Example 7.2
strategies as the number of departments grows (with professors and courses
fixed).  More departments make the chase cheaper (fewer professors per
department) while the join's cost stays flat — the paper's plan 1 can only
win when departments barely narrow anything.
"""

import pytest

from repro.sitegen import UniversityConfig
from repro.sites import university
from repro.views.sql import parse_query

from _bench_utils import record, table

SQL = (
    "SELECT Professor.PName, email FROM Course, CourseInstructor, "
    "Professor, ProfDept WHERE Course.CName = CourseInstructor.CName "
    "AND CourseInstructor.PName = Professor.PName "
    "AND Professor.PName = ProfDept.PName "
    "AND ProfDept.DName = 'Computer Science' AND Type = 'Graduate'"
)


def find_plan(result, include, exclude=()):
    for candidate in result.candidates:
        text = candidate.render()
        if all(m in text for m in include) and not any(
            m in text for m in exclude
        ):
            return candidate
    return None


@pytest.fixture(scope="module")
def sweep():
    rows = []
    raw = []
    for n_depts in (1, 2, 3, 5, 10):
        env = university(
            UniversityConfig(n_depts=n_depts, n_profs=20, n_courses=50)
        )
        planned = env.plan(parse_query(SQL, env.view))
        chase = find_plan(
            planned, ["DeptListPage"], exclude=["⋈", "SessionListPage"]
        )
        join = find_plan(planned, ["SessionListPage", "⋈"])
        winner = "chase" if chase.cost <= join.cost else "join"
        rows.append(
            {
                "departments": n_depts,
                "C(chase)": f"{chase.cost:.1f}",
                "C(join)": f"{join.cost:.1f}",
                "winner": winner,
                "optimizer picks": (
                    "chase"
                    if planned.best.cost == chase.cost
                    else ("join" if planned.best.cost == join.cost
                          else "other")
                ),
            }
        )
        raw.append((n_depts, chase, join, planned))
    record(
        "X-OVER",
        "Example 7.2 strategies vs department count "
        "(20 professors, 50 courses)",
        table(rows, ["departments", "C(chase)", "C(join)", "winner",
                     "optimizer picks"]),
        data=rows,
        queries={"ex72": SQL},
    )
    return raw


class TestShape:
    def test_chase_improves_with_selectivity(self, sweep):
        chase_costs = [chase.cost for _, chase, _, _ in sweep]
        assert chase_costs[0] > chase_costs[-1]

    def test_join_cost_roughly_flat(self, sweep):
        join_costs = [join.cost for _, _, join, _ in sweep]
        assert max(join_costs) - min(join_costs) < 0.2 * max(join_costs)

    def test_chase_wins_at_paper_cardinalities(self, sweep):
        for n_depts, chase, join, _ in sweep:
            if n_depts == 3:
                assert chase.cost < join.cost

    def test_optimizer_always_picks_winner(self, sweep):
        for _, chase, join, planned in sweep:
            assert planned.best.cost <= min(chase.cost, join.cost)


def test_bench_planning_across_shapes(benchmark):
    env = university(UniversityConfig(n_depts=5))
    query = parse_query(SQL, env.view)
    result = benchmark(lambda: env.planner.plan_query(query))
    assert result.candidates
