"""X-OVER — where pointer join and pointer chase cross over.

Paper (Section 7): "ordinary pointer-join techniques do not transfer
directly to the Web ... several alternative strategies, based on
pointer-chasing, need to be evaluated."  Which strategy wins depends on the
site's shape: the pointer-join plan of Example 7.2 pays |SessionPage| +
|CoursePage| up front to build its pointer set, while the chase pays only
for the selected department's professors and their courses.

Regenerated figure (as a table): estimated cost of both Example 7.2
strategies as the number of departments grows (with professors and courses
fixed).  More departments make the chase cheaper (fewer professors per
department) while the join's cost stays flat — the paper's plan 1 can only
win when departments barely narrow anything.

Each row also *executes* the winning plan both ways at ``k = 4`` parallel
connections: staged (operator barriers) and pipelined (chunked operators
with non-speculative link prefetch, ``docs/PIPELINE.md``).  Pipelining
never fetches a page the staged plan would not, so the page column is
identical by construction and only the makespan may drop.
"""

import pytest

from repro.optimizer.cost import crossover_winner
from repro.options import QueryOptions
from repro.sitegen import UniversityConfig
from repro.sites import university
from repro.views.sql import parse_query
from repro.web.client import FetchConfig

from _bench_utils import record, table

SQL = (
    "SELECT Professor.PName, email FROM Course, CourseInstructor, "
    "Professor, ProfDept WHERE Course.CName = CourseInstructor.CName "
    "AND CourseInstructor.PName = Professor.PName "
    "AND Professor.PName = ProfDept.PName "
    "AND ProfDept.DName = 'Computer Science' AND Type = 'Graduate'"
)

#: Pool size for the measured staged-vs-pipelined columns.
MEASURED_POOL = 4

#: Slack for makespan inequalities: staged and pipelined accumulate the
#: same durations in different addition orders, so mathematically equal
#: makespans may differ by an ulp or two in float.
SECONDS_EPS = 1e-9

COLUMNS = [
    "departments", "C(chase)", "C(join)", "winner", "optimizer picks",
    "pages", "staged s", "pipelined s",
]


def find_plan(result, include, exclude=()):
    for candidate in result.candidates:
        text = candidate.render()
        if all(m in text for m in include) and not any(
            m in text for m in exclude
        ):
            return candidate
    return None


def measure(config, plan, execution):
    """Execute ``plan`` on a fresh site (a query's log is a delta of the
    client's cumulative counters; fresh envs keep the float comparison
    exact) and return the ExecutionResult."""
    return university(config).execute(
        plan.expr,
        options=QueryOptions(
            fetch=FetchConfig(max_workers=MEASURED_POOL),
            execution=execution,
        ),
    )


@pytest.fixture(scope="module")
def sweep():
    rows = []
    raw = []
    for n_depts in (1, 2, 3, 5, 10):
        config = UniversityConfig(n_depts=n_depts, n_profs=20, n_courses=50)
        env = university(config)
        planned = env.plan(parse_query(SQL, env.view))
        chase = find_plan(
            planned, ["DeptListPage"], exclude=["⋈", "SessionListPage"]
        )
        join = find_plan(planned, ["SessionListPage", "⋈"])
        winner = crossover_winner(chase.cost, join.cost)
        staged = measure(config, planned.best, "staged")
        pipelined = measure(config, planned.best, "pipelined")
        rows.append(
            {
                "departments": n_depts,
                "C(chase)": f"{chase.cost:.1f}",
                "C(join)": f"{join.cost:.1f}",
                "winner": winner,
                "optimizer picks": (
                    "chase"
                    if planned.best.cost == chase.cost
                    else ("join" if planned.best.cost == join.cost
                          else "other")
                ),
                "pages": staged.pages,
                "staged s": f"{staged.log.simulated_seconds:.2f}",
                "pipelined s": f"{pipelined.log.simulated_seconds:.2f}",
            }
        )
        raw.append((n_depts, chase, join, planned, staged, pipelined, env))
    record(
        "X-OVER",
        "Example 7.2 strategies vs department count "
        "(20 professors, 50 courses); winning plan measured staged vs "
        f"pipelined at k={MEASURED_POOL}",
        table(rows, COLUMNS),
        data=rows,
        queries={"ex72": SQL},
    )
    return raw


class TestShape:
    def test_chase_improves_with_selectivity(self, sweep):
        chase_costs = [chase.cost for _, chase, *_ in sweep]
        assert chase_costs[0] > chase_costs[-1]

    def test_join_cost_roughly_flat(self, sweep):
        join_costs = [join.cost for _, _, join, *_ in sweep]
        assert max(join_costs) - min(join_costs) < 0.2 * max(join_costs)

    def test_chase_wins_at_paper_cardinalities(self, sweep):
        for n_depts, chase, join, *_ in sweep:
            if n_depts == 3:
                assert chase.cost < join.cost

    def test_crossover_api_never_diverges(self, sweep):
        """The table's winner column, CostModel.strategy_crossover, and
        the adaptive executor all decide via crossover_winner — any
        divergence between the charted rule and the priced one is a bug."""
        for _, chase, join, _, _, _, env in sweep:
            x = env.cost_model.strategy_crossover(chase.expr, join.expr)
            assert (x.chase_cost, x.join_cost) == (chase.cost, join.cost)
            assert x.winner == crossover_winner(chase.cost, join.cost)

    def test_optimizer_always_picks_winner(self, sweep):
        for _, chase, join, planned, *_ in sweep:
            assert planned.best.cost <= min(chase.cost, join.cost)

    def test_pipelined_fetches_exactly_the_staged_pages(self, sweep):
        """Non-speculation: same pages, same URLs, same answers, every row.

        URLs compare as sets: pipelining interleaves batch *submission*
        across stages (that is the overlap), so download order may differ
        while the downloaded set never can."""
        for _, _, _, _, staged, pipelined, _ in sweep:
            assert pipelined.pages == staged.pages
            assert sorted(pipelined.log.downloaded_urls) == sorted(
                staged.log.downloaded_urls
            )
            assert pipelined.relation.same_contents(staged.relation)

    def test_pipelined_never_slower_than_staged(self, sweep):
        for _, _, _, _, staged, pipelined, _ in sweep:
            assert (
                pipelined.log.simulated_seconds
                <= staged.log.simulated_seconds + SECONDS_EPS
            )

    def test_estimated_makespan_pipelined_never_above_staged(self, sweep):
        """The cost model's pipelined estimate obeys the same ordering the
        measured runs do, at every pool size the benchmarks sweep."""
        for _, chase, join, _, _, _, env in sweep:
            for plan in (chase, join):
                for k in (1, 2, 4, 8):
                    staged_est = env.cost_model.estimated_makespan(
                        plan.expr, workers=k, execution="staged"
                    )
                    pipe_est = env.cost_model.estimated_makespan(
                        plan.expr, workers=k, execution="pipelined"
                    )
                    assert pipe_est <= staged_est


def test_bench_planning_across_shapes(benchmark):
    env = university(UniversityConfig(n_depts=5))
    query = parse_query(SQL, env.view)
    result = benchmark(lambda: env.planner.plan_query(query))
    assert result.candidates
