"""EX-INTRO — the Introduction's four access paths.

Paper (Section 1): "find all authors who had papers in the last three VLDB
conferences" admits four navigation paths; with over 16,000 authors "the
last access path would retrieve several orders of magnitude more pages than
the others".

Regenerates the table: per path, pages downloaded, bytes downloaded, and
answer size.  Shape assertions: paths 1–3 cost a handful of pages, path 2
downloads fewer bytes than path 1 (smaller list page), path 3 the fewest,
and path 4 costs ≈|authors| pages — orders of magnitude more.
"""

import pytest

from repro.algebra.ast import EntryPointScan
from repro.algebra.predicates import In, Predicate

from _bench_utils import record, table


def _editions_tail(expr, years):
    return (
        expr.unnest("ConfPage.EditionList")
        .where(Predicate([In("ConfPage.EditionList.Year", years)]))
        .follow("ConfPage.EditionList.ToEdition")
        .unnest("EditionPage.PaperList")
        .unnest("EditionPage.PaperList.AuthorList")
        .project(
            ("AName", "EditionPage.PaperList.AuthorList.AName"),
            ("Year", "EditionPage.Year"),
        )
    )


def build_paths(env):
    years = tuple(str(e.year) for e in env.site.vldb.editions[-3:])
    path1 = _editions_tail(
        EntryPointScan("BibHomePage")
        .follow("BibHomePage.ToConfList")
        .unnest("ConfListPage.ConfList")
        .select_eq("ConfListPage.ConfList.ConfName", "VLDB")
        .follow("ConfListPage.ConfList.ToConf"),
        years,
    )
    path2 = _editions_tail(
        EntryPointScan("BibHomePage")
        .follow("BibHomePage.ToDBConfList")
        .unnest("DBConfListPage.ConfList")
        .select_eq("DBConfListPage.ConfList.ConfName", "VLDB")
        .follow("DBConfListPage.ConfList.ToConf"),
        years,
    )
    path3 = _editions_tail(
        EntryPointScan("BibHomePage").follow("BibHomePage.ToVLDB"), years
    )
    path4 = (
        EntryPointScan("BibHomePage")
        .follow("BibHomePage.ToAuthorList")
        .unnest("AuthorListPage.AuthorList")
        .follow("AuthorListPage.AuthorList.ToAuthor")
        .unnest("AuthorPage.PubList")
        .select_eq("AuthorPage.PubList.ConfName", "VLDB")
        .where(Predicate([In("AuthorPage.PubList.Year", years)]))
        .project(
            ("AName", "AuthorPage.AName"),
            ("Year", "AuthorPage.PubList.Year"),
        )
    )
    return years, {
        "path 1 (all conferences)": path1,
        "path 2 (db conferences)": path2,
        "path 3 (direct VLDB link)": path3,
        "path 4 (author list)": path4,
    }


@pytest.fixture(scope="module")
def measurements(bib_env):
    years, paths = build_paths(bib_env)
    rows = []
    answers = []
    for label, plan in paths.items():
        result = bib_env.execute(plan)
        per_year = {y: set() for y in years}
        for row in result.relation:
            if row["Year"] in per_year:
                per_year[row["Year"]].add(row["AName"])
        answer = set.intersection(*per_year.values())
        answers.append(answer)
        rows.append(
            {
                "path": label,
                "pages": result.pages,
                "bytes": result.log.bytes_downloaded,
                "estimated": f"{bib_env.cost_model.cost(plan):.1f}",
                "authors": len(answer),
            }
        )
    assert all(a == answers[0] for a in answers)
    record(
        "EX-INTRO",
        "authors in the last three VLDBs — four access paths",
        table(rows, ["path", "pages", "bytes", "estimated", "authors"]),
        data=rows,
        meta={"years": list(years)},
    )
    return {row["path"]: row for row in rows}


class TestShape:
    def test_paths_1_to_3_are_cheap(self, measurements):
        for label in list(measurements)[:3]:
            assert measurements[label]["pages"] <= 8

    def test_path4_is_orders_of_magnitude_worse(self, bib_env, measurements):
        path4 = measurements["path 4 (author list)"]["pages"]
        path1 = measurements["path 1 (all conferences)"]["pages"]
        assert path4 >= len(bib_env.site.authors)
        assert path4 / path1 > 100

    def test_path2_downloads_fewer_bytes_than_path1(self, measurements):
        assert (
            measurements["path 2 (db conferences)"]["bytes"]
            < measurements["path 1 (all conferences)"]["bytes"]
        )

    def test_path3_is_cheapest(self, measurements):
        pages = {label: row["pages"] for label, row in measurements.items()}
        assert pages["path 3 (direct VLDB link)"] == min(pages.values())


def test_bench_best_path_execution(benchmark, bib_env, measurements):
    """Time executing the paper's recommended path (pages are served from
    memory, so this measures wrapping + algebra overhead)."""
    _, paths = build_paths(bib_env)
    plan = paths["path 3 (direct VLDB link)"]
    benchmark(lambda: bib_env.execute(plan))


def test_bench_optimizer_on_intro_query(benchmark, bib_env):
    """Time Algorithm 1 on the triple self-join intersection query."""
    years = [str(e.year) for e in bib_env.site.vldb.editions[-3:]]
    sql = (
        "SELECT A1.AName FROM PaperAuthor A1, PaperAuthor A2, PaperAuthor A3 "
        "WHERE A1.AName = A2.AName AND A2.AName = A3.AName "
        f"AND A1.ConfName = 'VLDB' AND A1.Year = '{years[0]}' "
        f"AND A2.ConfName = 'VLDB' AND A2.Year = '{years[1]}' "
        f"AND A3.ConfName = 'VLDB' AND A3.Year = '{years[2]}'"
    )
    query = bib_env.sql(sql)
    result = benchmark(lambda: bib_env.planner.plan_query(query))
    assert result.best.cost < 20
