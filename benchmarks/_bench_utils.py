"""Table formatting and result recording for the benchmark harness."""

from __future__ import annotations

import json
import pathlib
import time
from typing import Optional

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Process CPU clock at the previous ``record`` call — each experiment is
#: charged the CPU it burned since the one before it (or since import for
#: the first), so every ``BENCH_<id>.json`` carries real ``cpu_seconds``
#: next to the simulated makespans.
_last_cpu = time.process_time()


def record(
    experiment_id: str,
    title: str,
    lines: list[str],
    *,
    data: Optional[list] = None,
    queries: Optional[dict] = None,
    meta: Optional[dict] = None,
) -> str:
    """Print an experiment table and persist it under benchmarks/results/.

    Besides the human-readable ``<id>.txt``, every experiment that passes
    ``data`` (its measurement rows, as dicts) also gets a machine-readable
    ``BENCH_<id>.json``: rows, the SQL they measured (``queries``), free-form
    ``meta``, the wall-clock CPU seconds the experiment burned
    (``cpu_seconds``, a :func:`time.process_time` delta since the previous
    ``record`` call), and a snapshot of the process metrics registry at
    write time.  CI asserts these files exist
    (``benchmarks/check_bench_json.py``) and holds ``cpu_seconds`` to a
    tolerant regression gate, so a benchmark silently losing its emission
    — or silently getting drastically slower — fails the build.
    """
    global _last_cpu
    now_cpu = time.process_time()
    cpu_seconds = now_cpu - _last_cpu
    _last_cpu = now_cpu
    RESULTS_DIR.mkdir(exist_ok=True)
    text = "\n".join([f"== {experiment_id}: {title} =="] + lines) + "\n"
    (RESULTS_DIR / f"{experiment_id}.txt").write_text(text)
    if data is not None:
        from repro.obs.metrics import METRICS

        rows = [dict(row) for row in data]
        schema = sorted({key for row in rows for key in row})
        document = {
            "bench": experiment_id,
            "title": title,
            "schema": schema,
            "queries": dict(queries or {}),
            "meta": dict(meta or {}),
            "cpu_seconds": round(cpu_seconds, 6),
            "rows": rows,
            "metrics": METRICS.snapshot(),
        }
        path = RESULTS_DIR / f"BENCH_{experiment_id}.json"
        path.write_text(
            json.dumps(document, indent=2, sort_keys=True, default=str)
            + "\n"
        )
    print()
    print(text)
    return text


def table(rows: list[dict], columns: list[str]) -> list[str]:
    """Plain-text table lines from dict rows."""
    widths = {c: len(c) for c in columns}
    rendered = []
    for row in rows:
        cells = {c: f"{row[c]}" for c in columns}
        rendered.append(cells)
        for c in columns:
            widths[c] = max(widths[c], len(cells[c]))
    header = "  ".join(f"{c:<{widths[c]}}" for c in columns)
    sep = "-" * len(header)
    lines = [header, sep]
    for cells in rendered:
        lines.append("  ".join(f"{cells[c]:<{widths[c]}}" for c in columns))
    return lines
