"""Table formatting and result recording for the benchmark harness."""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def record(experiment_id: str, title: str, lines: list[str]) -> str:
    """Print an experiment table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = "\n".join([f"== {experiment_id}: {title} =="] + lines) + "\n"
    (RESULTS_DIR / f"{experiment_id}.txt").write_text(text)
    print()
    print(text)
    return text


def table(rows: list[dict], columns: list[str]) -> list[str]:
    """Plain-text table lines from dict rows."""
    widths = {c: len(c) for c in columns}
    rendered = []
    for row in rows:
        cells = {c: f"{row[c]}" for c in columns}
        rendered.append(cells)
        for c in columns:
            widths[c] = max(widths[c], len(cells[c]))
    header = "  ".join(f"{c:<{widths[c]}}" for c in columns)
    sep = "-" * len(header)
    lines = [header, sep]
    for cells in rendered:
        lines.append("  ".join(f"{cells[c]:<{widths[c]}}" for c in columns))
    return lines
