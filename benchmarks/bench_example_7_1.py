"""EX-7.1 / FIG-3 — pointer join vs pointer chase, Example 7.1.

Paper: "Name and Description of courses taught by full professors in the
Fall session".  The pointer-join plan (1d) first intersects the two link
sets (courses of full professors × fall courses), then navigates only the
intersection; the pointer-chase plan (2d) navigates every course taught by
a full professor and selects afterwards.  The paper proves C(1d) ≤ C(2d),
with equality only when all fall courses are taught by full professors.

Regenerated table: estimated and measured cost of both strategies at the
paper's cardinalities, plus a sweep over the number of courses showing the
gap grows with |CoursePage|.
"""

import pytest

from repro.sitegen import UniversityConfig
from repro.sites import university
from repro.views.sql import parse_query

from _bench_utils import record, table

SQL = (
    "SELECT Course.CName, Description FROM Professor, CourseInstructor, "
    "Course WHERE Professor.PName = CourseInstructor.PName "
    "AND CourseInstructor.CName = Course.CName "
    "AND Rank = 'Full' AND Session = 'Fall'"
)


def find_plan(result, include, exclude=()):
    for candidate in result.candidates:
        text = candidate.render()
        if all(m in text for m in include) and not any(
            m in text for m in exclude
        ):
            return candidate
    raise AssertionError(f"no plan with {include} minus {exclude}")


def strategies(env):
    planned = env.plan(parse_query(SQL, env.view))
    plan_1d = find_plan(planned, ["ToCourse=ToCourse"])
    plan_2d = find_plan(
        planned, ["ProfListPage", "→ToCourse"],
        exclude=["⋈", "SessionListPage"],
    )
    return planned, plan_1d, plan_2d


@pytest.fixture(scope="module")
def measurements(uni_env):
    planned, plan_1d, plan_2d = strategies(uni_env)
    result_1d = uni_env.execute(plan_1d.expr)
    result_2d = uni_env.execute(plan_2d.expr)
    assert result_1d.relation.same_contents(result_2d.relation)
    rows = [
        {
            "plan": "1d pointer-join (Fig 3 left)",
            "estimated": f"{plan_1d.cost:.1f}",
            "measured": result_1d.pages,
            "rows": len(result_1d.relation),
        },
        {
            "plan": "2d pointer-chase (Fig 3 right)",
            "estimated": f"{plan_2d.cost:.1f}",
            "measured": result_2d.pages,
            "rows": len(result_2d.relation),
        },
    ]
    lines = table(rows, ["plan", "estimated", "measured", "rows"])
    lines.append("")
    lines.append(f"optimizer chose: {planned.best.render(scheme=uni_env.scheme)}")
    record(
        "EX-7.1",
        "courses by full professors in the Fall session",
        lines,
        data=rows,
        queries={"ex71": SQL},
        meta={"chosen_plan": planned.best.render()},
    )
    return plan_1d, plan_2d, result_1d, result_2d, planned


@pytest.fixture(scope="module")
def sweep():
    """C(1d) vs C(2d) as the site grows (more courses per professor)."""
    rows = []
    for n_courses in (20, 50, 100, 200):
        env = university(UniversityConfig(n_courses=n_courses))
        _, plan_1d, plan_2d = strategies(env)
        rows.append(
            {
                "courses": n_courses,
                "C(1d) join": f"{plan_1d.cost:.1f}",
                "C(2d) chase": f"{plan_2d.cost:.1f}",
                "gap": f"{plan_2d.cost - plan_1d.cost:.1f}",
            }
        )
    record(
        "EX-7.1-sweep",
        "pointer-join advantage grows with |CoursePage|",
        table(rows, ["courses", "C(1d) join", "C(2d) chase", "gap"]),
        data=rows,
        queries={"ex71": SQL},
    )
    return rows


class TestShape:
    def test_pointer_join_estimated_cheaper(self, measurements):
        plan_1d, plan_2d, *_ = measurements
        assert plan_1d.cost <= plan_2d.cost

    def test_pointer_join_measured_cheaper(self, measurements):
        _, _, result_1d, result_2d, _ = measurements
        assert result_1d.pages < result_2d.pages

    def test_optimizer_chooses_pointer_join(self, measurements):
        *_, planned = measurements
        assert "ToCourse=ToCourse" in planned.best.render()

    def test_gap_grows_with_course_count(self, sweep):
        gaps = [float(row["gap"]) for row in sweep]
        assert gaps == sorted(gaps)
        assert gaps[-1] > gaps[0]


def test_bench_pointer_join_execution(benchmark, uni_env, measurements):
    plan_1d, *_ = measurements
    benchmark(lambda: uni_env.execute(plan_1d.expr))


def test_bench_planning_example_7_1(benchmark, uni_env):
    query = parse_query(SQL, uni_env.view)
    result = benchmark(lambda: uni_env.planner.plan_query(query))
    assert len(result.candidates) >= 4
