"""Shared infrastructure for the benchmark harness.

Each benchmark module reproduces one experiment from the paper (see
DESIGN.md's experiment index): it computes the experiment's table, prints
it, writes it to ``benchmarks/results/<id>.txt``, asserts the paper's
qualitative claims (who wins, by roughly what factor), and times the
interesting computational kernel with pytest-benchmark.

Run:  pytest benchmarks/ --benchmark-only
The tables land in benchmarks/results/ either way.
"""

from __future__ import annotations

import pytest

from repro.sitegen import BibliographyConfig, UniversityConfig
from repro.sites import bibliography, university

@pytest.fixture(scope="session")
def uni_env():
    """The paper's cardinalities: 3 departments, 20 professors, 50 courses."""
    return university(UniversityConfig())


@pytest.fixture(scope="session")
def bib_env():
    """A DBLP-like site with a sizeable author list (the real site had
    16,000+ authors; 800 keeps the run fast while preserving the
    orders-of-magnitude gap)."""
    return bibliography(BibliographyConfig(n_authors=800))
