"""ALG-1 — Algorithm 1 across a query workload.

The paper's Section 6.3 algorithm enumerates candidate plans by staged
rewriting and picks the minimum-cost one.  This benchmark regenerates an
overview table for a representative workload: plans generated, valid plans,
chosen cost vs worst cost (the price of *not* optimizing), and the measured
page downloads of the chosen plan.
"""

import pytest

from repro.views.sql import parse_query

from _bench_utils import record, table

WORKLOAD = [
    ("Q1 dept names", "SELECT DName FROM Dept"),
    ("Q2 full professors",
     "SELECT PName, email FROM Professor WHERE Rank = 'Full'"),
    ("Q3 course catalog",
     "SELECT CName, Session, Type FROM Course"),
    ("Q4 instructors",
     "SELECT CName, PName FROM CourseInstructor"),
    ("Q5 CS members",
     "SELECT Professor.PName FROM Professor, ProfDept "
     "WHERE Professor.PName = ProfDept.PName "
     "AND ProfDept.DName = 'Computer Science'"),
    ("Q6 example 7.1",
     "SELECT Course.CName, Description FROM Professor, CourseInstructor, "
     "Course WHERE Professor.PName = CourseInstructor.PName "
     "AND CourseInstructor.CName = Course.CName "
     "AND Rank = 'Full' AND Session = 'Fall'"),
    ("Q7 example 7.2",
     "SELECT Professor.PName, email FROM Course, CourseInstructor, "
     "Professor, ProfDept WHERE Course.CName = CourseInstructor.CName "
     "AND CourseInstructor.PName = Professor.PName "
     "AND Professor.PName = ProfDept.PName "
     "AND ProfDept.DName = 'Computer Science' AND Type = 'Graduate'"),
]


@pytest.fixture(scope="module")
def workload_results(uni_env):
    rows = []
    details = {}
    for label, sql in WORKLOAD:
        query = parse_query(sql, uni_env.view)
        planned = uni_env.planner.plan_query(query)
        measured = uni_env.execute(planned.best.expr)
        rows.append(
            {
                "query": label,
                "plans": planned.generated,
                "valid": len(planned.candidates),
                "best": f"{planned.best.cost:.1f}",
                "worst": f"{planned.candidates[-1].cost:.1f}",
                "measured": measured.pages,
                "rows": len(measured.relation),
            }
        )
        details[label] = (planned, measured)
    record(
        "ALG-1",
        "Algorithm 1 over the university workload",
        table(rows, ["query", "plans", "valid", "best", "worst",
                     "measured", "rows"]),
        data=rows,
        queries=dict(WORKLOAD),
    )
    return details


class TestShape:
    def test_every_query_produces_plans(self, workload_results):
        for label, (planned, _) in workload_results.items():
            assert planned.candidates, label

    def test_optimization_matters(self, workload_results):
        """For the multi-join queries the worst plan costs meaningfully
        more than the best — the optimizer is not a no-op."""
        for label, factor in (("Q6 example 7.1", 1.3),
                              ("Q7 example 7.2", 2.0)):
            planned, _ = workload_results[label]
            worst = planned.candidates[-1].cost
            assert worst >= factor * planned.best.cost, label

    def test_estimates_track_measurements(self, workload_results):
        for label, (planned, measured) in workload_results.items():
            assert planned.best.cost <= 2 * measured.pages + 2, label
            assert measured.pages <= 2 * planned.best.cost + 2, label


@pytest.mark.parametrize("label,sql", WORKLOAD[:5])
def test_bench_planning(benchmark, uni_env, label, sql):
    query = parse_query(sql, uni_env.view)
    result = benchmark(lambda: uni_env.planner.plan_query(query))
    assert result.candidates


def test_bench_end_to_end_query(benchmark, uni_env):
    """SQL text → parse → plan → execute, the full user path."""
    sql = WORKLOAD[4][1]
    result = benchmark(lambda: uni_env.query(sql))
    assert len(result.relation) > 0
