"""FIG-2 — the Figure 2 query plan.

Paper (Section 4): "Name and Description of all Courses held by members of
the Computer Science Department", expressed as a single navigation chain
DeptListPage ∘ DeptList → DeptPage ∘ ProfList → ProfPage ∘ CourseList →
CoursePage.  Regenerates the plan tree, verifies computability, and
measures its execution against the same query answered through the
optimizer (which pushes the department selection into the anchor list and
touches a fraction of the site).
"""

import pytest

from repro.algebra.ast import EntryPointScan
from repro.algebra.computable import is_computable
from repro.algebra.printer import render_plan_tree

from _bench_utils import record, table


def figure2_plan(selected: bool):
    """The Figure 2 chain; ``selected=True`` adds the σ DName='CS' pushdown
    the optimizer would apply."""
    expr = EntryPointScan("DeptListPage").unnest("DeptListPage.DeptList")
    if selected:
        expr = expr.select_eq("DeptListPage.DeptList.DName", "Computer Science")
    return (
        expr.follow("DeptListPage.DeptList.ToDept")
        .unnest("DeptPage.ProfList")
        .follow("DeptPage.ProfList.ToProf")
        .unnest("ProfPage.CourseList")
        .follow("ProfPage.CourseList.ToCourse")
        .project(
            ("Name", "CoursePage.CName"),
            ("Description", "CoursePage.Description"),
        )
    )


@pytest.fixture(scope="module")
def measurements(uni_env):
    full = figure2_plan(selected=False)
    pushed = figure2_plan(selected=True)
    assert is_computable(full, uni_env.scheme)
    full_result = uni_env.execute(full)
    pushed_result = uni_env.execute(pushed)
    rows = [
        {
            "plan": "Figure 2 chain, all departments",
            "estimated": f"{uni_env.cost_model.cost(full):.1f}",
            "measured": full_result.pages,
            "rows": len(full_result.relation),
        },
        {
            "plan": "with σ DName='CS' pushed to the anchor list",
            "estimated": f"{uni_env.cost_model.cost(pushed):.1f}",
            "measured": pushed_result.pages,
            "rows": len(pushed_result.relation),
        },
    ]
    lines = table(rows, ["plan", "estimated", "measured", "rows"])
    lines.append("")
    lines.append("plan tree (cf. the paper's Figure 2):")
    lines.extend(render_plan_tree(pushed, uni_env.scheme).splitlines())
    record(
        "FIG-2",
        "courses held by CS department members",
        lines,
        data=rows,
        meta={"plan_tree": render_plan_tree(pushed, uni_env.scheme)},
    )
    return full, pushed, full_result, pushed_result


class TestShape:
    def test_full_chain_visits_whole_teaching_site(self, uni_env, measurements):
        _, _, full_result, _ = measurements
        # 1 list + 3 depts + 20 profs + 50 courses
        assert full_result.pages == 74

    def test_selection_pushdown_cuts_cost_by_dept_fraction(
        self, uni_env, measurements
    ):
        _, _, full_result, pushed_result = measurements
        assert pushed_result.pages < full_result.pages / 2

    def test_answer_matches_oracle(self, uni_env, measurements):
        _, _, _, pushed_result = measurements
        expected = {
            (c.name, c.description)
            for c in uni_env.site.courses
            if c.prof.dept.name == "Computer Science"
        }
        got = {
            (r["Name"], r["Description"]) for r in pushed_result.relation
        }
        assert got == expected


def test_bench_figure2_execution(benchmark, uni_env, measurements):
    _, pushed, *_ = measurements
    benchmark(lambda: uni_env.execute(pushed))


def test_bench_plan_tree_rendering(benchmark, uni_env, measurements):
    full, *_ = measurements
    text = benchmark(lambda: render_plan_tree(full, uni_env.scheme))
    assert "entry point" in text
