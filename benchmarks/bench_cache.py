"""CACHE — the cross-query page cache on the Example 7.2 workload.

The paper's cost function charges one page per download because in 1998
every access paid a full transfer.  A cross-query cache changes the
arithmetic the same way the Section 8 materialized views do, but at the
page-fetch layer: a warm page costs a light connection (revalidation)
instead of a download, and a page revalidated earlier in the same query
costs nothing at all.

Two experiments over the crossover site (3 departments, 20 professors,
50 courses — where pointer-chase beats pointer-join cold):

* CACHE — the Example 7.2 query run cold then warm under each policy.
  ``off`` must reproduce the uncached engine bit-for-bit, ``per_query``
  must re-download everything each query, and ``cross_query`` must answer
  the warm query from revalidations alone (0 downloads).
* CACHE-PLAN — cache-aware plan selection.  Cold, Algorithm 1 picks the
  pointer-chase plan.  After the pointer-join plan's pages are warmed,
  :meth:`CacheEstimate.from_cache` re-ranks the candidates and the join
  plan wins — a different, cheaper plan chosen *because* of the cache.

Run as a script for the tables alone: ``python bench_cache.py [--quick]``
(with ``src/`` on PYTHONPATH), or through pytest for the assertions.
"""

import argparse

import pytest

from repro.sitegen import UniversityConfig
from repro.sites import university

from _bench_utils import record, table

SQL = (
    "SELECT Professor.PName, email FROM Course, CourseInstructor, "
    "Professor, ProfDept WHERE Course.CName = CourseInstructor.CName "
    "AND CourseInstructor.PName = Professor.PName "
    "AND Professor.PName = ProfDept.PName "
    "AND ProfDept.DName = 'Computer Science' AND Type = 'Graduate'"
)

#: The bench_crossover point where chase beats join cold — so the warm
#: cache has a cold winner to flip.
FULL_CONFIG = UniversityConfig(n_depts=3, n_profs=20, n_courses=50)

#: Paper cardinalities, for the --quick smoke run.
QUICK_CONFIG = UniversityConfig()

POLICIES = ["off", "per_query", "cross_query"]

COLUMNS = ["policy", "run", "pages", "light", "saved", "sim seconds", "rows"]


def run_sweep(config):
    """Cold + warm run of the Example 7.2 query under each policy.

    Returns (rows, raw) where raw is ``[(policy, run, result), ...]`` plus
    the uncached reference result under key ``("uncached", "cold", ...)``.
    """
    rows = []
    raw = []

    env = university(config)
    reference = env.query(SQL)
    raw.append(("uncached", "cold", reference))

    for policy in POLICIES:
        env = university(config)
        if policy != "off":
            env.enable_cache(capacity=4096, policy=policy)
        for run in ("cold", "warm"):
            result = env.query(SQL)
            rows.append(
                {
                    "policy": policy,
                    "run": run,
                    "pages": result.pages,
                    "light": result.log.light_connections,
                    "saved": result.pages_saved,
                    "sim seconds": f"{result.log.simulated_seconds:.2f}",
                    "rows": len(result.relation),
                }
            )
            raw.append((policy, run, result))
    return rows, raw


def find_plan(result, include, exclude=()):
    for candidate in result.candidates:
        text = candidate.render()
        if all(m in text for m in include) and not any(
            m in text for m in exclude
        ):
            return candidate
    return None


def run_plan_flip(config):
    """Warm the pointer-join plan's pages, then re-plan Example 7.2.

    Returns ``(cold_planned, warm_planned)`` from the same environment
    (cold planned before the cache is filled)."""
    env = university(config)
    env.enable_cache(capacity=4096)
    cold_planned = env.plan(SQL)
    join = find_plan(cold_planned, ["SessionListPage", "⋈"])
    env.execute(join.expr)  # downloads (and caches) the join's pointer set
    warm_planned = env.plan(SQL)
    return cold_planned, warm_planned


def plan_flip_rows(cold_planned, warm_planned):
    def describe(tag, planned):
        best = planned.best
        strategy = (
            "join" if "SessionListPage" in best.render() else "chase"
        )
        return {
            "cache": tag,
            "chosen strategy": strategy,
            "C(best)": f"{best.cost:.1f}",
            "plain C(best)": (
                f"{planned.uncached_cost:.1f}"
                if planned.uncached_cost is not None
                else f"{best.cost:.1f}"
            ),
        }

    return [
        describe("cold", cold_planned),
        describe("warm (join pages)", warm_planned),
    ]


@pytest.fixture(scope="module")
def sweep():
    rows, raw = run_sweep(FULL_CONFIG)
    record(
        "CACHE",
        "Example 7.2 query, cold vs warm, per cache policy "
        "(3 departments, 20 professors, 50 courses)",
        table(rows, COLUMNS),
        data=rows,
        queries={"ex72": SQL},
    )
    return raw


@pytest.fixture(scope="module")
def flip():
    cold_planned, warm_planned = run_plan_flip(FULL_CONFIG)
    rows = plan_flip_rows(cold_planned, warm_planned)
    record(
        "CACHE-PLAN",
        "Example 7.2 plan choice before/after warming the pointer-join "
        "plan's pages",
        table(rows, ["cache", "chosen strategy", "C(best)", "plain C(best)"]),
        data=rows,
        queries={"ex72": SQL},
    )
    return cold_planned, warm_planned


def _by_key(raw):
    return {(policy, run): result for policy, run, result in raw}


class TestPolicies:
    def test_off_matches_uncached_engine_bit_for_bit(self, sweep):
        results = _by_key(sweep)
        reference = results[("uncached", "cold")].cost
        cold = results[("off", "cold")].cost
        assert cold.pages == reference.pages
        assert cold.bytes == reference.bytes
        assert cold.light_connections == reference.light_connections
        assert cold.simulated_seconds == reference.simulated_seconds
        # the warm run's seconds are a delta from a running per-client
        # total, so they match only to float precision
        warm = results[("off", "warm")].cost
        assert warm.pages == reference.pages
        assert warm.bytes == reference.bytes
        assert warm.light_connections == reference.light_connections
        assert warm.simulated_seconds == pytest.approx(
            reference.simulated_seconds
        )

    def test_cold_runs_pay_full_price_under_every_policy(self, sweep):
        results = _by_key(sweep)
        reference = results[("uncached", "cold")]
        for policy in POLICIES:
            assert results[(policy, "cold")].pages == reference.pages

    def test_per_query_cache_does_not_survive_the_query(self, sweep):
        results = _by_key(sweep)
        assert (
            results[("per_query", "warm")].pages
            == results[("per_query", "cold")].pages
        )

    def test_cross_query_warm_run_downloads_strictly_fewer_pages(self, sweep):
        results = _by_key(sweep)
        cold = results[("cross_query", "cold")]
        warm = results[("cross_query", "warm")]
        assert warm.pages < cold.pages
        assert warm.pages == 0  # nothing changed between the two runs
        assert warm.pages_saved > 0
        assert warm.log.light_connections == warm.revalidations

    def test_every_run_returns_the_same_relation(self, sweep):
        reference = sweep[0][2].relation
        for _policy, _run, result in sweep[1:]:
            assert result.relation.same_contents(reference)


class TestPlanFlip:
    def test_cold_winner_is_the_chase_plan(self, flip):
        cold_planned, _ = flip
        assert "SessionListPage" not in cold_planned.best.render()

    def test_warm_cache_flips_to_a_different_cheaper_plan(self, flip):
        cold_planned, warm_planned = flip
        assert warm_planned.best.render() != cold_planned.best.render()
        assert warm_planned.best.cost < cold_planned.best.cost

    def test_expected_saving_is_reported(self, flip):
        _, warm_planned = flip
        assert warm_planned.uncached_cost is not None
        assert warm_planned.cost.pages_saved > 0


def test_bench_warm_query(benchmark):
    env = university(FULL_CONFIG)
    env.enable_cache(capacity=4096)
    env.query(SQL)  # warm
    result = benchmark(lambda: env.query(SQL))
    assert result.pages == 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small site (CI smoke run)",
    )
    args = parser.parse_args(argv)
    config = QUICK_CONFIG if args.quick else FULL_CONFIG

    rows, raw = run_sweep(config)
    record(
        "CACHE",
        "cold vs warm per cache policy" + (" (quick)" if args.quick else ""),
        table(rows, COLUMNS),
        data=rows,
        queries={"ex72": SQL},
    )
    results = _by_key(raw)
    reference = results[("uncached", "cold")]
    assert results[("off", "cold")].cost.pages == reference.cost.pages, (
        "policy off drifted from the uncached engine"
    )
    assert (
        results[("cross_query", "warm")].pages
        < results[("cross_query", "cold")].pages
    ), "warm cross_query run did not save any downloads"
    for _policy, _run, result in raw:
        assert result.relation.same_contents(reference.relation), (
            "a cached run changed the answer"
        )

    cold_planned, warm_planned = run_plan_flip(config)
    flip_rows = plan_flip_rows(cold_planned, warm_planned)
    record(
        "CACHE-PLAN",
        "plan choice before/after warming the pointer-join pages"
        + (" (quick)" if args.quick else ""),
        table(
            flip_rows,
            ["cache", "chosen strategy", "C(best)", "plain C(best)"],
        ),
        data=flip_rows,
        queries={"ex72": SQL},
    )
    assert warm_planned.best.cost <= cold_planned.best.cost, (
        "warm planning made the chosen plan worse"
    )
    print("smoke checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
