"""WRAP — wrapper throughput and statistics-exploration cost.

The paper assumes wrappers (Section 3.1) and a WebSQL-style exploration
pass for the cost-model parameters (Section 6.2).  This benchmark measures
what those substrates cost in our reproduction: pages wrapped per second,
full-crawl statistics estimation, and the fidelity of a bounded crawl's
estimates against the exact oracle.
"""

import pytest

from repro.stats.estimator import SiteExplorer, estimate_statistics
from repro.stats.exact import exact_statistics
from repro.web import WebClient

from _bench_utils import record, table


@pytest.fixture(scope="module")
def fidelity(uni_env):
    """Estimate quality vs crawl budget."""
    exact = uni_env.stats
    rows = []
    for budget in (10, 25, 50, None):
        client = WebClient(uni_env.site.server)
        explorer = SiteExplorer(uni_env.scheme, client, uni_env.registry)
        stats = explorer.explore(max_pages=budget)
        seen_profs = stats.scheme_cards.get("ProfPage", 0)
        seen_courses = stats.scheme_cards.get("CoursePage", 0)
        rows.append(
            {
                "crawl budget": budget if budget is not None else "full",
                "pages fetched": client.log.page_downloads,
                "|ProfPage| est": seen_profs,
                "|CoursePage| est": seen_courses,
            }
        )
    lines = table(
        rows,
        ["crawl budget", "pages fetched", "|ProfPage| est",
         "|CoursePage| est"],
    )
    lines.append("")
    lines.append(
        f"exact: |ProfPage| = {exact.card('ProfPage'):.0f}, "
        f"|CoursePage| = {exact.card('CoursePage'):.0f}"
    )
    record(
        "WRAP",
        "statistics estimation vs crawl budget",
        lines,
        data=rows,
        meta={
            "exact_prof_pages": exact.card("ProfPage"),
            "exact_course_pages": exact.card("CoursePage"),
        },
    )
    return rows


class TestShape:
    def test_full_crawl_is_exact(self, uni_env, fidelity):
        full = fidelity[-1]
        assert full["|ProfPage| est"] == 20
        assert full["|CoursePage| est"] == 50

    def test_bounded_crawls_underestimate_monotonically(self, fidelity):
        courses = [row["|CoursePage| est"] for row in fidelity]
        assert courses == sorted(courses)


def test_bench_wrap_single_page(benchmark, uni_env):
    prof = uni_env.site.profs[0]
    html = uni_env.site.server.resource(prof.url).html
    row = benchmark(
        lambda: uni_env.registry.wrap("ProfPage", prof.url, html)
    )
    assert row["PName"] == prof.name


def test_bench_wrap_whole_site(benchmark, uni_env):
    server = uni_env.site.server
    pages = [
        (server.resource(url).page_scheme, url, server.resource(url).html)
        for url in server.urls()
    ]

    def wrap_all():
        return [
            uni_env.registry.wrap(scheme, url, html)
            for scheme, url, html in pages
        ]

    rows = benchmark(wrap_all)
    assert len(rows) == len(server)


def test_bench_exact_statistics(benchmark, uni_env):
    stats = benchmark(
        lambda: exact_statistics(
            uni_env.scheme, uni_env.site.server, uni_env.registry
        )
    )
    assert stats.card("CoursePage") == 50


def test_bench_crawl_statistics(benchmark, uni_env):
    stats = benchmark(
        lambda: estimate_statistics(
            uni_env.scheme, uni_env.site.server, uni_env.registry
        )
    )
    assert stats.card("CoursePage") == 50
