"""CI gate: benchmark results must exist, be sound, and not regress.

Each ``bench_*.py`` experiment records a ``BENCH_<id>.json`` under
``benchmarks/results/`` via :func:`_bench_utils.record`.  Dashboards and
regression tooling consume those files, so a benchmark silently losing its
emission (a refactor dropping ``data=``, an experiment renamed without
updating the registry) must fail the build — run this after the benchmark
suite::

    python -m pytest benchmarks -q --benchmark-disable
    python benchmarks/check_bench_json.py

Beyond structure, the gate diffs every *figure* the paper's cost model
cares about against the committed ``benchmarks/results/baseline.json``:

* **page figures** (any row key mentioning pages/downloads — the paper's
  cost measure C(E)) must match the baseline *exactly*: simulated page
  counts are deterministic, so any drift is a behaviour change, not noise;
* **makespan figures** (simulated seconds) may improve freely but fail
  the gate when more than 10% above baseline;
* **CPU figures** (any key mentioning ``cpu`` — per-experiment
  ``cpu_seconds`` plus any explicit CPU columns) are real wall-clock
  process time and vary across machines, so the gate is deliberately
  loose: fail only beyond 2x baseline plus a one-second absolute slack.

After an intentional change (new column, new site shape, a genuine cost
improvement), regenerate and commit the baseline::

    python benchmarks/check_bench_json.py --write-baseline
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Optional

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
BASELINE_PATH = RESULTS_DIR / "baseline.json"

#: benchmark module -> the experiment ids it must have emitted
EXPECTED = {
    "bench_ablation": ["ABLATION", "ABLATION-stats"],
    "bench_adaptive": ["ADAPTIVE"],
    "bench_advisor": ["ADVISOR", "ADVISOR-SHARD"],
    "bench_cache": ["CACHE", "CACHE-PLAN"],
    "bench_concurrency": ["CONCURRENCY"],
    "bench_crossover": ["X-OVER"],
    "bench_example_7_1": ["EX-7.1", "EX-7.1-sweep"],
    "bench_example_7_2": ["EX-7.2"],
    "bench_fig2_plan": ["FIG-2"],
    "bench_intro_paths": ["EX-INTRO"],
    "bench_materialized": ["SEC-8"],
    "bench_optimizer": ["ALG-1"],
    "bench_scale": ["SCALE"],
    "bench_server": ["SERVER"],
    "bench_wrapper": ["WRAP"],
}

REQUIRED_KEYS = ("bench", "title", "schema", "rows", "metrics")

#: Row keys carrying page-count figures (the paper's C(E)): exact match.
PAGE_MARKERS = ("page", "download")
#: Row keys carrying simulated-makespan figures: bounded regression.
SECONDS_MARKERS = ("seconds", "sim time")
#: Row keys carrying real process-CPU figures: loose regression.
CPU_MARKERS = ("cpu",)
#: A makespan may grow this much over baseline before the gate fails.
MAKESPAN_TOLERANCE = 1.10
#: CPU time is machine-dependent: fail only beyond this multiple of
#: baseline plus :data:`CPU_ABSOLUTE_SLACK` seconds.
CPU_TOLERANCE = 2.0
CPU_ABSOLUTE_SLACK = 1.0


def _figure_kind(key: str) -> Optional[str]:
    """Classify a row key as a gated figure, or None to ignore it."""
    lowered = key.lower()
    # CPU first: "cpu_seconds" contains a seconds marker and CPU table
    # columns end in " s", but both must get the loose CPU gate
    if any(marker in lowered for marker in CPU_MARKERS):
        return "cpu"
    if any(marker in lowered for marker in PAGE_MARKERS):
        return "pages"
    # page-cost columns by convention: C(...) estimates and the
    # estimated/measured C(E) pairs of the example reproductions
    if lowered in ("measured", "estimated") or "c(" in lowered:
        return "pages"
    if any(marker in lowered for marker in SECONDS_MARKERS):
        return "seconds"
    if lowered.endswith(" s"):
        return "seconds"
    return None


def _numeric(value) -> Optional[float]:
    """Benchmark rows format figures as strings ("4.98", "27"); parse
    leniently, returning None for non-numeric cells."""
    if isinstance(value, bool):
        return None
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        try:
            return float(value.strip())
        except ValueError:
            return None
    return None


def extract_figures(document: dict) -> list[dict]:
    """The gated (page/makespan/CPU) figures of one BENCH document, row
    by row, in row order — plus one trailing pseudo-row carrying the
    experiment-level ``cpu_seconds``, so the CPU trajectory rides the
    same baseline diff as every per-row figure."""
    figures: list[dict] = []
    for row in document.get("rows", []):
        extracted: dict[str, float] = {}
        for key, value in row.items():
            if _figure_kind(key) is None:
                continue
            number = _numeric(value)
            if number is not None:
                extracted[key] = number
        figures.append(extracted)
    cpu_seconds = _numeric(document.get("cpu_seconds"))
    if cpu_seconds is not None:
        figures.append({"cpu_seconds": cpu_seconds})
    return figures


def _load_documents() -> dict[str, dict]:
    """Every parseable registered BENCH document, by experiment id."""
    documents: dict[str, dict] = {}
    for experiment_ids in EXPECTED.values():
        for experiment_id in experiment_ids:
            path = RESULTS_DIR / f"BENCH_{experiment_id}.json"
            if not path.exists():
                continue
            try:
                documents[experiment_id] = json.loads(path.read_text())
            except json.JSONDecodeError:
                continue  # reported by check()
    return documents


def write_baseline(path: pathlib.Path = BASELINE_PATH) -> dict:
    """Snapshot the current BENCH figures as the committed baseline."""
    baseline = {
        "makespan_tolerance": MAKESPAN_TOLERANCE,
        "benches": {
            experiment_id: extract_figures(document)
            for experiment_id, document in sorted(_load_documents().items())
        },
    }
    path.write_text(
        json.dumps(baseline, indent=2, sort_keys=True) + "\n"
    )
    return baseline


def compare_baseline(
    baseline: dict, documents: dict[str, dict]
) -> list[str]:
    """Diff current figures against ``baseline``; returns the problems."""
    problems: list[str] = []
    tolerance = float(
        baseline.get("makespan_tolerance", MAKESPAN_TOLERANCE)
    )
    benches = baseline.get("benches", {})
    for experiment_id, document in sorted(documents.items()):
        expected_rows = benches.get(experiment_id)
        if expected_rows is None:
            problems.append(
                f"{experiment_id}: not in baseline.json "
                f"(run --write-baseline and commit the result)"
            )
            continue
        current_rows = extract_figures(document)
        if len(current_rows) != len(expected_rows):
            problems.append(
                f"{experiment_id}: {len(current_rows)} rows vs "
                f"{len(expected_rows)} in baseline"
            )
            continue
        for index, (current, expected) in enumerate(
            zip(current_rows, expected_rows)
        ):
            for key, base_value in expected.items():
                if key not in current:
                    problems.append(
                        f"{experiment_id} row {index}: figure {key!r} "
                        f"disappeared (baseline {base_value:g})"
                    )
                    continue
                value = current[key]
                kind = _figure_kind(key)
                if kind == "pages":
                    if value != base_value:
                        problems.append(
                            f"{experiment_id} row {index}: page figure "
                            f"{key!r} changed {base_value:g} -> {value:g} "
                            f"(page counts must match the baseline exactly)"
                        )
                elif kind == "cpu":
                    bound = base_value * CPU_TOLERANCE + CPU_ABSOLUTE_SLACK
                    if value > bound:
                        problems.append(
                            f"{experiment_id} row {index}: CPU figure "
                            f"{key!r} regressed {base_value:g}s -> "
                            f"{value:g}s (> {CPU_TOLERANCE:.1f}x baseline "
                            f"+ {CPU_ABSOLUTE_SLACK:.0f}s)"
                        )
                elif value > base_value * tolerance + 1e-9:
                    problems.append(
                        f"{experiment_id} row {index}: makespan {key!r} "
                        f"regressed {base_value:g} -> {value:g} "
                        f"(> {tolerance:.2f}x baseline)"
                    )
            for key in current:
                if key not in expected:
                    problems.append(
                        f"{experiment_id} row {index}: new figure {key!r} "
                        f"not in baseline (run --write-baseline and commit "
                        f"the result)"
                    )
    return problems


def check() -> list[str]:
    problems: list[str] = []
    for module, experiment_ids in sorted(EXPECTED.items()):
        for experiment_id in experiment_ids:
            path = RESULTS_DIR / f"BENCH_{experiment_id}.json"
            if not path.exists():
                problems.append(f"{module}: missing {path.name}")
                continue
            try:
                document = json.loads(path.read_text())
            except json.JSONDecodeError as exc:
                problems.append(f"{module}: {path.name} is not JSON ({exc})")
                continue
            for key in REQUIRED_KEYS:
                if key not in document:
                    problems.append(
                        f"{module}: {path.name} lacks the {key!r} key"
                    )
            if document.get("bench") != experiment_id:
                problems.append(
                    f"{module}: {path.name} claims bench="
                    f"{document.get('bench')!r}, expected {experiment_id!r}"
                )
            if not document.get("rows"):
                problems.append(f"{module}: {path.name} has no data rows")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="snapshot current BENCH figures as the committed baseline "
        "(refuses while structure checks fail)",
    )
    parser.add_argument(
        "--baseline", default=str(BASELINE_PATH), metavar="PATH",
        help="baseline file (default: benchmarks/results/baseline.json)",
    )
    parser.add_argument(
        "--skip-baseline", action="store_true",
        help="structure checks only, no regression diff",
    )
    args = parser.parse_args(argv)

    problems = check()
    emitted = sorted(p.name for p in RESULTS_DIR.glob("BENCH_*.json"))
    expected_names = {
        f"BENCH_{experiment_id}.json"
        for ids in EXPECTED.values()
        for experiment_id in ids
    }
    for name in emitted:
        if name not in expected_names:
            print(f"note: {name} emitted but not in the registry "
                  f"(add it to EXPECTED)")

    baseline_path = pathlib.Path(args.baseline)
    if args.write_baseline:
        if problems:
            for problem in problems:
                print(f"FAIL {problem}")
            print("refusing to write a baseline from a broken result set")
            return 1
        baseline = write_baseline(baseline_path)
        figures = sum(
            len(figure)
            for rows in baseline["benches"].values()
            for figure in rows
        )
        print(
            f"baseline written: {baseline_path} "
            f"({len(baseline['benches'])} benches, {figures} figures)"
        )
        return 0
    if not args.skip_baseline:
        if baseline_path.exists():
            problems += compare_baseline(
                json.loads(baseline_path.read_text()), _load_documents()
            )
        else:
            problems.append(
                f"baseline missing: {baseline_path} "
                f"(run --write-baseline and commit it)"
            )

    if problems:
        for problem in problems:
            print(f"FAIL {problem}")
        return 1
    print(f"ok: {len(expected_names)} BENCH_*.json files present and sound"
          + ("" if args.skip_baseline else "; figures match baseline"))
    return 0


if __name__ == "__main__":
    sys.exit(main())
