"""CI gate: every benchmark must emit its machine-readable results.

Each ``bench_*.py`` experiment records a ``BENCH_<id>.json`` under
``benchmarks/results/`` via :func:`_bench_utils.record`.  Dashboards and
regression tooling consume those files, so a benchmark silently losing its
emission (a refactor dropping ``data=``, an experiment renamed without
updating the registry) must fail the build — run this after the benchmark
suite::

    python -m pytest benchmarks -q --benchmark-disable
    python benchmarks/check_bench_json.py
"""

from __future__ import annotations

import json
import pathlib
import sys

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: benchmark module -> the experiment ids it must have emitted
EXPECTED = {
    "bench_ablation": ["ABLATION", "ABLATION-stats"],
    "bench_cache": ["CACHE", "CACHE-PLAN"],
    "bench_concurrency": ["CONCURRENCY"],
    "bench_crossover": ["X-OVER"],
    "bench_example_7_1": ["EX-7.1", "EX-7.1-sweep"],
    "bench_example_7_2": ["EX-7.2"],
    "bench_fig2_plan": ["FIG-2"],
    "bench_intro_paths": ["EX-INTRO"],
    "bench_materialized": ["SEC-8"],
    "bench_optimizer": ["ALG-1"],
    "bench_scale": ["SCALE"],
    "bench_wrapper": ["WRAP"],
}

REQUIRED_KEYS = ("bench", "title", "schema", "rows", "metrics")


def check() -> list[str]:
    problems: list[str] = []
    for module, experiment_ids in sorted(EXPECTED.items()):
        for experiment_id in experiment_ids:
            path = RESULTS_DIR / f"BENCH_{experiment_id}.json"
            if not path.exists():
                problems.append(f"{module}: missing {path.name}")
                continue
            try:
                document = json.loads(path.read_text())
            except json.JSONDecodeError as exc:
                problems.append(f"{module}: {path.name} is not JSON ({exc})")
                continue
            for key in REQUIRED_KEYS:
                if key not in document:
                    problems.append(
                        f"{module}: {path.name} lacks the {key!r} key"
                    )
            if document.get("bench") != experiment_id:
                problems.append(
                    f"{module}: {path.name} claims bench="
                    f"{document.get('bench')!r}, expected {experiment_id!r}"
                )
            if not document.get("rows"):
                problems.append(f"{module}: {path.name} has no data rows")
    return problems


def main() -> int:
    problems = check()
    emitted = sorted(p.name for p in RESULTS_DIR.glob("BENCH_*.json"))
    expected_names = {
        f"BENCH_{experiment_id}.json"
        for ids in EXPECTED.values()
        for experiment_id in ids
    }
    for name in emitted:
        if name not in expected_names:
            print(f"note: {name} emitted but not in the registry "
                  f"(add it to EXPECTED)")
    if problems:
        for problem in problems:
            print(f"FAIL {problem}")
        return 1
    print(f"ok: {len(expected_names)} BENCH_*.json files present and sound")
    return 0


if __name__ == "__main__":
    sys.exit(main())
