"""CONCURRENCY — simulated wall time vs fetch pool size.

The paper's cost function counts page downloads because each 1998 fetch
paid a full round trip; a modern engine amortizes that latency over
parallel connections.  This benchmark sweeps the fetch pool size on the
scale site (the Example 7.2 query) and shows the separation the batched
fetch engine is built around:

* ``page_downloads`` — the paper's cost measure — is *identical* at every
  pool size (the per-query session dedups, the batch only overlaps);
* simulated wall time shrinks monotonically as connections are added;
* a pool of one reproduces the serial 1998 model bit-for-bit;
* pipelined execution (chunked operators + non-speculative link prefetch,
  see ``docs/PIPELINE.md``) never exceeds the staged makespan and is
  strictly faster on this pointer-chase plan at k ∈ {2, 4, 8} — with the
  same pages, attempts, and answers.

Run as a script for the table alone:  ``python bench_concurrency.py
[--quick]`` (with ``src/`` on PYTHONPATH), or through pytest for the
assertions as well.
"""

import argparse

import pytest

from repro.options import QueryOptions
from repro.sitegen import UniversityConfig
from repro.sites import university
from repro.web.client import FetchConfig

from _bench_utils import record, table

SQL = (
    "SELECT Professor.PName, email FROM Course, CourseInstructor, "
    "Professor, ProfDept WHERE Course.CName = CourseInstructor.CName "
    "AND CourseInstructor.PName = Professor.PName "
    "AND Professor.PName = ProfDept.PName "
    "AND ProfDept.DName = 'Computer Science' AND Type = 'Graduate'"
)

#: The bench_scale large configuration: batches are big enough that every
#: doubling of the pool up to 8 connections still shortens the makespan.
FULL_CONFIG = UniversityConfig(n_depts=8, n_profs=80, n_courses=200)

#: Paper cardinalities, for the --quick smoke run.
QUICK_CONFIG = UniversityConfig()

POOL_SIZES = [1, 2, 4, 8, 16]
QUICK_POOL_SIZES = [1, 2, 4]

#: Slack for makespan inequalities: staged and pipelined accumulate the
#: same durations in different addition orders, so mathematically equal
#: makespans may differ by an ulp or two in float.
SECONDS_EPS = 1e-9

COLUMNS = [
    "pool", "pages", "attempts", "staged seconds", "pipelined seconds",
    "speedup", "rows",
]


def serial_reference_seconds(env, result) -> float:
    """Re-derive the pre-batching serial model: one accumulation per
    downloaded page, in download order — what the engine reported before
    parallel connections existed."""
    seconds = 0.0
    for url in result.log.downloaded_urls:
        size = len(env.site.server.resource(url).html)
        seconds += env.client.network.get_seconds(size)
    return seconds


def run_sweep(config, pool_sizes):
    rows = []
    raw = []
    baseline = None
    for pool in pool_sizes:
        # one fresh (deterministic) site per mode: a query's log is a delta
        # of the client's cumulative counters, so sharing an env would add
        # float-subtraction noise to the seconds comparison
        env = university(config)
        fetch = FetchConfig(max_workers=pool)
        result = env.query(
            SQL, options=QueryOptions(fetch=fetch, execution="staged")
        )
        pipelined = university(config).query(
            SQL, options=QueryOptions(fetch=fetch, execution="pipelined")
        )
        seconds = result.log.simulated_seconds
        pipe_seconds = pipelined.log.simulated_seconds
        if baseline is None:
            baseline = seconds
        rows.append(
            {
                "pool": pool,
                "pages": result.pages,
                "attempts": result.log.attempts,
                "staged seconds": f"{seconds:.2f}",
                "pipelined seconds": f"{pipe_seconds:.2f}",
                "speedup": f"{baseline / pipe_seconds:.2f}x",
                "rows": len(result.relation),
            }
        )
        raw.append((pool, result, pipelined, env))
    return rows, raw


@pytest.fixture(scope="module")
def sweep():
    rows, raw = run_sweep(FULL_CONFIG, POOL_SIZES)
    record(
        "CONCURRENCY",
        "Example 7.2 query on the scale site: pool size vs simulated wall "
        "time (page counts stay paper-faithful)",
        table(rows, COLUMNS),
        data=rows,
        queries={"ex72": SQL},
    )
    return raw


class TestShape:
    def test_page_downloads_identical_at_every_pool_size(self, sweep):
        """Parallelism must never change the paper's cost measure."""
        pages = {result.pages for _, result, _, _ in sweep}
        assert len(pages) == 1

    def test_answers_identical_at_every_pool_size(self, sweep):
        first = sweep[0][1].relation
        for _, result, _, _ in sweep[1:]:
            assert result.relation.same_contents(first)

    def test_wall_time_monotonically_decreasing_1_to_8(self, sweep):
        seconds = [
            result.log.simulated_seconds
            for pool, result, _, _ in sweep
            if pool <= 8
        ]
        assert all(a > b for a, b in zip(seconds, seconds[1:]))

    def test_pool_of_one_matches_serial_model_bit_for_bit(self, sweep):
        pool, result, _, env = sweep[0]
        assert pool == 1
        assert result.log.simulated_seconds == serial_reference_seconds(
            env, result
        )

    def test_records_carry_concurrency_level(self, sweep):
        for pool, result, _, _ in sweep:
            batched = [r for r in result.log.records if r.concurrency > 1]
            if pool == 1:
                assert not batched
            else:
                assert batched and all(
                    r.concurrency <= pool for r in result.log.records
                )

    def test_pipelined_same_pages_attempts_and_answers(self, sweep):
        """Non-speculation: pipelining changes no access, only timing.

        URLs compare as sets: pipelining interleaves batch *submission*
        across stages (that is the overlap), so download order may differ
        while the downloaded set never can."""
        for _, result, pipelined, _ in sweep:
            assert pipelined.pages == result.pages
            assert pipelined.log.attempts == result.log.attempts
            assert sorted(pipelined.log.downloaded_urls) == sorted(
                result.log.downloaded_urls
            )
            assert pipelined.relation.same_contents(result.relation)

    def test_pipelined_never_slower_than_staged(self, sweep):
        for _, result, pipelined, _ in sweep:
            assert (
                pipelined.log.simulated_seconds
                <= result.log.simulated_seconds + SECONDS_EPS
            )

    def test_pipelined_strictly_faster_on_chase_at_2_4_8(self, sweep):
        """Ex 7.2 is a pointer chase: real overlap must show at k>1."""
        for pool, result, pipelined, _ in sweep:
            if pool in (2, 4, 8):
                assert (
                    pipelined.log.simulated_seconds
                    < result.log.simulated_seconds
                )

    def test_pipelined_pool_of_one_is_bit_for_bit_staged(self, sweep):
        pool, result, pipelined, _ = sweep[0]
        assert pool == 1
        assert (
            pipelined.log.simulated_seconds == result.log.simulated_seconds
        )


def test_bench_batched_execution(benchmark):
    env = university(FULL_CONFIG)
    plan = env.plan(SQL).best.expr
    config = FetchConfig(max_workers=8)
    result = benchmark(
        lambda: env.execute(plan, options=QueryOptions(fetch=config))
    )
    assert len(result.relation) > 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small site, short sweep (CI smoke run)",
    )
    args = parser.parse_args(argv)
    config = QUICK_CONFIG if args.quick else FULL_CONFIG
    pool_sizes = QUICK_POOL_SIZES if args.quick else POOL_SIZES
    rows, raw = run_sweep(config, pool_sizes)
    record(
        "CONCURRENCY",
        "pool size vs simulated wall time"
        + (" (quick)" if args.quick else ""),
        table(rows, COLUMNS),
        data=rows,
        queries={"ex72": SQL},
    )
    pages = {result.pages for _, result, _, _ in raw}
    assert len(pages) == 1, "page counts drifted across pool sizes"
    seconds = [result.log.simulated_seconds for _, result, _, _ in raw]
    assert all(a > b for a, b in zip(seconds, seconds[1:])), (
        "wall time did not decrease with pool size"
    )
    pool, result, _, env = raw[0]
    assert result.log.simulated_seconds == serial_reference_seconds(
        env, result
    ), "pool size 1 no longer matches the serial model"
    for _, result, pipelined, _ in raw:
        assert pipelined.pages == result.pages, (
            "pipelining changed the page count"
        )
        assert (
            pipelined.log.simulated_seconds
            <= result.log.simulated_seconds + SECONDS_EPS
        ), "pipelined execution was slower than staged"
    print("smoke checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
